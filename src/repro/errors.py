"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidEdgeError(ReproError):
    """An edge is malformed: a self-loop, or endpoints of the wrong type."""


class DuplicateEdgeError(ReproError):
    """A stream that must be simple saw the same edge twice."""


class EmptyStreamError(ReproError):
    """An operation that needs at least one observed edge saw none."""


class EdgeNotFoundError(ReproError, KeyError):
    """A lookup for a specific edge found no such edge.

    Subclasses :class:`KeyError` too, so ``except KeyError`` works for
    callers treating the stream as a mapping from edges to positions.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return Exception.__str__(self)


class WorkerCrashedError(ReproError):
    """A parallel worker process died without reporting a result.

    Raised for abnormal deaths (OOM kill, segfault) that bypass the
    worker's own Python-level error reporting.
    """


class RetryExhaustedError(ReproError):
    """A supervised worker kept failing past its restart budget.

    Raised by the supervision layer once a worker has crashed (or
    missed its deadline) more than ``max_restarts`` times. The last
    worker traceback rides along both as an ``add_note`` and as the
    :attr:`last_traceback` attribute, so operators and tests can see
    *why* the final incarnation died, not just that it did.
    """

    def __init__(self, message: str, *, last_traceback: str | None = None) -> None:
        super().__init__(message)
        self.last_traceback = last_traceback
        if last_traceback:
            self.add_note(f"last worker traceback:\n{last_traceback}")


class InjectedFaultError(ReproError):
    """An exception deliberately raised by the fault-injection plan.

    Only ever raised when a :class:`~repro.streaming.faults.FaultPlan`
    is installed (tests, chaos drills, recovery benchmarks) -- never
    during normal operation.
    """


class ReproWarning(UserWarning):
    """Base class for all warnings emitted by the repro package."""


class WorkerRestartedWarning(ReproWarning):
    """A supervised worker died and was respawned from its snapshot.

    The run is continuing -- bit-identically, via state restore plus
    batch replay -- but the operator should know a worker is cycling.
    """


class SourceRetryWarning(ReproWarning):
    """A follow-mode source read failed transiently and will be retried."""


class SourceRotatedWarning(ReproWarning):
    """A followed file was rotated or truncated; re-reading from offset 0."""


class CheckpointWriteWarning(ReproWarning):
    """A periodic checkpoint write failed; the run continues.

    The previous checkpoint generation is intact (writes are two-phase),
    so resumability degrades to the last successful snapshot rather
    than aborting a long stream pass over a transient disk error.
    """


class JournalWriteWarning(ReproWarning):
    """A journal append failed (e.g. disk full); the run continues.

    The writer degrades to a no-op for the rest of the run: edges keep
    flowing to the estimators but stop being journaled, so a later
    resume can replay only what was appended before the failure. Same
    warn-and-continue contract as :class:`CheckpointWriteWarning`.
    """


class JournalCorruptError(ReproError):
    """A journal record or segment failed validation on read.

    Raised for a CRC mismatch on a complete record, a short record in
    a non-final segment, or a missing/garbled segment inside a replay
    range. Never raised for a torn *tail* -- an append cut short by a
    crash -- which is expected damage and is truncated on open.
    """


class SourceExhaustedError(ReproError):
    """A one-shot edge source was asked to replay its stream.

    Sources backed by a generator or other single-use iterable can be
    consumed exactly once; build a :class:`~repro.streaming.FileSource`
    or :class:`~repro.streaming.MemorySource` for replayable streams.
    """


class InvalidParameterError(ReproError):
    """A numeric parameter is outside its documented domain."""


class InsufficientSampleError(ReproError):
    """A sampling routine could not produce the requested sample.

    Raised, e.g., when ``unif_triangles(k)`` finds fewer than ``k``
    successful samplers (Theorem 3.8 guarantees success only when the
    number of samplers ``r`` is large enough relative to ``m * delta / tau``).
    """
