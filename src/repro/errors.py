"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidEdgeError(ReproError):
    """An edge is malformed: a self-loop, or endpoints of the wrong type."""


class DuplicateEdgeError(ReproError):
    """A stream that must be simple saw the same edge twice."""


class EmptyStreamError(ReproError):
    """An operation that needs at least one observed edge saw none."""


class EdgeNotFoundError(ReproError, KeyError):
    """A lookup for a specific edge found no such edge.

    Subclasses :class:`KeyError` too, so ``except KeyError`` works for
    callers treating the stream as a mapping from edges to positions.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return Exception.__str__(self)


class WorkerCrashedError(ReproError):
    """A parallel worker process died without reporting a result.

    Raised for abnormal deaths (OOM kill, segfault) that bypass the
    worker's own Python-level error reporting.
    """


class SourceExhaustedError(ReproError):
    """A one-shot edge source was asked to replay its stream.

    Sources backed by a generator or other single-use iterable can be
    consumed exactly once; build a :class:`~repro.streaming.FileSource`
    or :class:`~repro.streaming.MemorySource` for replayable streams.
    """


class InvalidParameterError(ReproError):
    """A numeric parameter is outside its documented domain."""


class InsufficientSampleError(ReproError):
    """A sampling routine could not produce the requested sample.

    Raised, e.g., when ``unif_triangles(k)`` finds fewer than ``k``
    successful samplers (Theorem 3.8 guarantees success only when the
    number of samplers ``r`` is large enough relative to ``m * delta / tau``).
    """
