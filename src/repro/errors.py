"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidEdgeError(ReproError):
    """An edge is malformed: a self-loop, or endpoints of the wrong type."""


class DuplicateEdgeError(ReproError):
    """A stream that must be simple saw the same edge twice."""


class EmptyStreamError(ReproError):
    """An operation that needs at least one observed edge saw none."""


class InvalidParameterError(ReproError):
    """A numeric parameter is outside its documented domain."""


class InsufficientSampleError(ReproError):
    """A sampling routine could not produce the requested sample.

    Raised, e.g., when ``unif_triangles(k)`` finds fewer than ``k``
    successful samplers (Theorem 3.8 guarantees success only when the
    number of samplers ``r`` is large enough relative to ``m * delta / tau``).
    """
