"""Random primitives used throughout the streaming algorithms.

The paper (Section 2) assumes two constant-time procedures:

- ``coin(p)`` -- returns heads with probability ``p``;
- ``randInt(a, b)`` -- returns an integer uniform on ``{a, ..., b}``.

:class:`RandomSource` wraps :class:`random.Random` with exactly those two
operations plus the geometric-skip helper used by the paper's optimized
level-1 maintenance (Section 4: "generating a few geometric random
variables representing the gaps between the 1's in the vector").

Every algorithm in this package takes an optional ``seed`` (or an already
constructed :class:`RandomSource`) so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from .errors import InvalidParameterError

__all__ = ["RandomSource", "spawn_sources"]


class RandomSource:
    """Seedable source of the paper's ``coin`` and ``randInt`` primitives.

    Parameters
    ----------
    seed:
        Any value acceptable to :class:`random.Random`. ``None`` draws
        entropy from the OS.
    """

    __slots__ = ("_rng",)

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)

    def coin(self, p: float) -> bool:
        """Return ``True`` ("heads") with probability ``p``.

        ``p`` outside ``[0, 1]`` is clamped at the ends: ``coin(0)`` is
        always tails and ``coin(1)`` always heads, matching the paper's
        usage where ``coin(1/i)`` is called with ``i = 1``.
        """
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p

    def rand_int(self, a: int, b: int) -> int:
        """Return an integer uniform on ``{a, a+1, ..., b}`` (inclusive)."""
        if a > b:
            raise InvalidParameterError(f"rand_int requires a <= b, got ({a}, {b})")
        return self._rng.randint(a, b)

    def random(self) -> float:
        """Return a float uniform on ``[0, 1)``."""
        return self._rng.random()

    def geometric_skip(self, p: float) -> int:
        """Return the number of failures before the first success.

        Samples ``X ~ Geometric(p)`` with support ``{0, 1, 2, ...}``.
        Used to jump directly between the (rare) estimators whose level-1
        edge gets replaced, instead of flipping one coin per estimator.
        """
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"geometric_skip requires 0 < p <= 1, got {p}")
        if p == 1.0:
            return 0
        u = self._rng.random()
        # Inverse-CDF sampling: smallest k with 1 - (1-p)^(k+1) >= u.
        return int(math.log1p(-u) / math.log1p(-p))

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def sample_indices(self, n: int, k: int) -> list[int]:
        """Return ``k`` distinct indices drawn uniformly from ``range(n)``."""
        if k > n:
            raise InvalidParameterError(f"cannot sample {k} distinct values from {n}")
        return self._rng.sample(range(n), k)

    def spawn(self) -> "RandomSource":
        """Return a new source seeded from this one's stream.

        Useful for handing independent substreams to parallel estimators
        while keeping the whole experiment reproducible from one seed.
        """
        return RandomSource(self._rng.getrandbits(64))

    def getstate(self) -> list:
        """The generator state as a JSON-serializable value.

        The checkpoint surface: restoring it with :meth:`setstate`
        resumes the random stream bit-exactly, which is what makes a
        resumed estimator replay identical to an uninterrupted run.
        """
        version, internal, gauss_next = self._rng.getstate()
        return [version, list(internal), gauss_next]

    def setstate(self, state: Sequence) -> None:
        """Restore a state captured by :meth:`getstate`.

        Accepts the JSON round-tripped form (lists where the underlying
        :mod:`random` API uses tuples).
        """
        try:
            version, internal, gauss_next = state
            self._rng.setstate((version, tuple(internal), gauss_next))
        except (TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"not a RandomSource state: {exc}"
            ) from None


def spawn_sources(seed: int | None, count: int) -> list[RandomSource]:
    """Return ``count`` independent :class:`RandomSource` objects.

    All are derived deterministically from ``seed``, so the list is
    reproducible but the sources are pairwise independent streams.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    root = RandomSource(seed)
    return [root.spawn() for _ in range(count)]
