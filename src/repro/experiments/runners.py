"""One runner per paper table/figure (and per ablation).

Each ``run_*`` function reproduces one experiment at laptop-Python scale
and returns a structured result dict; it also renders the corresponding
table/figure as text. The ``benchmarks/`` suite calls these runners with
small configurations and asserts the qualitative shapes; running this
module directly executes any experiment standalone:

    python -m repro.experiments.runners --list
    python -m repro.experiments.runners table1
"""

from __future__ import annotations

import argparse
import statistics
import time
from typing import Sequence

import numpy as np

from ..baselines.buriol import BuriolTriangleCounter
from ..baselines.jowhari_ghodsi import JowhariGhodsiCounter
from ..core.accuracy import error_bound, estimators_needed, estimators_needed_tangle
from ..core.bulk import BulkTriangleCounter
from ..core.triangle_count import (
    TriangleCounter,
    aggregate_mean,
    aggregate_median_of_means,
)
from ..core.vectorized import VectorizedTriangleCounter
from ..exact.tangle import tangle_coefficient
from ..streaming import ENGINES, Pipeline, ShardedPipeline
from .datasets import FIGURE3_DATASETS, load_dataset
from .figures import ascii_histogram, ascii_plot
from .harness import TrialStats, run_trials, stream_through
from .tables import render_table

__all__ = [
    "run_figure3",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_buriol_study",
    "run_ablation_tangle",
    "run_ablation_aggregation",
    "run_ablation_engines",
    "run_pipeline_fanout",
    "run_sharded_fanout",
    "run_live_snapshots",
    "run_pipeline_throughput",
]


def _dataset_edges(name: str, seed: int, limit_edges: int | None = None):
    """A trial's stream: the dataset re-shuffled under the trial seed.

    Returned as a columnar ``(m, 2)`` int64 array (the same edges in the
    same order as the historical tuple list):
    :func:`~repro.streaming.source.as_source` wraps it in a
    :class:`~repro.streaming.source.MemorySource` that slices zero-copy
    :class:`~repro.streaming.batch.EdgeBatch` views, so the timed region
    of every benchmark measures estimator work, not tuple conversion.
    """
    dataset = load_dataset(name)
    edges = list(dataset.stream(order="random", seed=seed))
    if limit_edges is not None:
        edges = edges[:limit_edges]
    return np.asarray(edges, dtype=np.int64).reshape(-1, 2)


def _limited_truth(name: str, limit_edges: int | None):
    """Ground truth for a (possibly truncated) dataset."""
    from ..exact.triangles import count_triangles

    dataset = load_dataset(name)
    if limit_edges is None or limit_edges >= len(dataset.edges):
        return dataset, dataset.truth.triangles
    prefix = list(dataset.stream(order="random", seed=10_000))[:limit_edges]
    return dataset, count_triangles(prefix)


# ---------------------------------------------------------------------------
# Figure 3: dataset summary table + degree distributions
# ---------------------------------------------------------------------------

def run_figure3(*, verbose: bool = True) -> dict:
    """Regenerate Figure 3: per-dataset n, m, Delta, tau, m*Delta/tau."""
    rows = []
    histograms = {}
    for name in FIGURE3_DATASETS:
        dataset = load_dataset(name)
        truth = dataset.truth
        paper = dataset.spec.paper_stats
        rows.append(
            [
                name,
                truth.num_vertices,
                truth.num_edges,
                truth.max_degree,
                truth.triangles,
                round(truth.m_delta_over_tau, 1),
                paper.get("m_delta_over_tau", "-"),
            ]
        )
        graph = dataset.stream().to_graph()
        histograms[name] = graph.degree_histogram()
    table = render_table(
        ["dataset", "n", "m", "Delta", "tau", "m*Delta/tau", "paper m*D/t"],
        rows,
        title="Figure 3: dataset summary (synthetic stand-ins; paper column for reference)",
    )
    if verbose:
        print(table)
        for name, hist in histograms.items():
            print()
            print(ascii_histogram(hist, title=f"degree distribution: {name}"))
    return {"rows": rows, "table": table, "histograms": histograms}


# ---------------------------------------------------------------------------
# Tables 1 and 2: Jowhari-Ghodsi vs ours
# ---------------------------------------------------------------------------

def _jg_vs_ours(
    dataset_name: str,
    r_values: Sequence[int],
    *,
    trials: int,
    limit_edges: int | None,
    verbose: bool,
    title: str,
) -> dict:
    dataset, true_tau = _limited_truth(dataset_name, limit_edges)
    rows = []
    results: dict[int, dict[str, TrialStats]] = {}
    for r in r_values:
        jg = run_trials(
            lambda seed, r=r: JowhariGhodsiCounter(r, seed=seed),
            lambda seed: _dataset_edges(dataset_name, seed, limit_edges),
            true_value=true_tau,
            trials=trials,
            batch_size=65536,
        )
        ours = run_trials(
            lambda seed, r=r: BulkTriangleCounter(r, seed=seed),
            lambda seed: _dataset_edges(dataset_name, seed, limit_edges),
            true_value=true_tau,
            trials=trials,
            batch_size=max(1024, 8 * r),
        )
        results[r] = {"jg": jg, "ours": ours}
        rows.append(
            [
                r,
                round(jg.mean_deviation, 2),
                round(jg.median_time, 3),
                round(ours.mean_deviation, 2),
                round(ours.median_time, 3),
                round(jg.median_time / max(ours.median_time, 1e-9), 1),
            ]
        )
    table = render_table(
        ["r", "JG MD%", "JG time(s)", "Ours MD%", "Ours time(s)", "speedup"],
        rows,
        title=title,
    )
    if verbose:
        print(table)
    return {"rows": rows, "table": table, "results": results, "true_tau": true_tau}


def run_table1(
    r_values: Sequence[int] = (1_000, 10_000, 100_000),
    *,
    trials: int = 5,
    verbose: bool = True,
) -> dict:
    """Table 1: JG vs ours on the exactly-reproduced Syn-3-reg graph."""
    return _jg_vs_ours(
        "syn_3reg",
        r_values,
        trials=trials,
        limit_edges=None,
        verbose=verbose,
        title="Table 1: Syn 3-regular (n=2000, m=3000, tau=1000)",
    )


def run_table2(
    r_values: Sequence[int] = (1_000, 10_000, 100_000),
    *,
    trials: int = 5,
    limit_edges: int | None = None,
    verbose: bool = True,
) -> dict:
    """Table 2: JG vs ours on the Hep-Th-like collaboration graph."""
    return _jg_vs_ours(
        "hepth_like",
        r_values,
        trials=trials,
        limit_edges=limit_edges,
        verbose=verbose,
        title="Table 2: Hep-Th-like collaboration network",
    )


# ---------------------------------------------------------------------------
# Table 3 (+ memory table) and Figure 4
# ---------------------------------------------------------------------------

def run_table3(
    r_values: Sequence[int] = (1_024, 16_384, 131_072),
    *,
    datasets: Sequence[str] = tuple(FIGURE3_DATASETS),
    trials: int = 5,
    verbose: bool = True,
) -> dict:
    """Table 3: accuracy and runtime of the bulk algorithm per dataset."""
    rows = []
    results: dict[tuple[str, int], TrialStats] = {}
    for name in datasets:
        dataset = load_dataset(name)
        true_tau = dataset.truth.triangles
        m = dataset.truth.num_edges
        row: list = [name]
        for r in r_values:
            stats = run_trials(
                lambda seed, r=r: VectorizedTriangleCounter(r, seed=seed),
                lambda seed: _dataset_edges(name, seed),
                true_value=true_tau,
                trials=trials,
                batch_size=max(4096, 8 * r),
            )
            results[(name, r)] = stats
            row.append(
                f"{stats.min_deviation:.2f}/{stats.mean_deviation:.2f}/"
                f"{stats.max_deviation:.2f}"
            )
            row.append(round(stats.median_time, 3))
        rows.append(row)
        del m
    headers = ["dataset"]
    for r in r_values:
        headers += [f"dev@r={r} (min/mean/max %)", f"time@r={r} (s)"]
    table = render_table(headers, rows, title="Table 3: accuracy and median runtime (5 trials)")

    # Memory table of Section 4.3: bytes of estimator state per r.
    memory_rows = []
    for r in r_values:
        engine = VectorizedTriangleCounter(r, seed=0)
        memory_rows.append([r, engine.state_nbytes()])
    memory_table = render_table(
        ["r", "state bytes"], memory_rows, title="Estimator-state memory (Section 4.3)"
    )
    if verbose:
        print(table)
        print()
        print(memory_table)
    return {
        "rows": rows,
        "table": table,
        "results": results,
        "memory_rows": memory_rows,
        "memory_table": memory_table,
    }


def run_figure4(
    r_values: Sequence[int] = (1_024, 16_384, 131_072),
    *,
    datasets: Sequence[str] = tuple(FIGURE3_DATASETS[:5]),
    trials: int = 3,
    verbose: bool = True,
) -> dict:
    """Figure 4: average throughput (edges/second) per dataset and r."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name)
        m = dataset.truth.num_edges
        row: list = [name, m]
        for r in r_values:
            stats = run_trials(
                lambda seed, r=r: VectorizedTriangleCounter(r, seed=seed),
                lambda seed: _dataset_edges(name, seed),
                true_value=max(dataset.truth.triangles, 1),
                trials=trials,
                batch_size=max(4096, 8 * r),
            )
            row.append(round(stats.throughput(m) / 1e6, 3))
        rows.append(row)
    headers = ["dataset", "m"] + [f"Medges/s @r={r}" for r in r_values]
    table = render_table(headers, rows, title="Figure 4: average throughput")
    if verbose:
        print(table)
    return {"rows": rows, "table": table}


# ---------------------------------------------------------------------------
# Figure 5: runtime / throughput / error vs the number of estimators
# ---------------------------------------------------------------------------

def run_figure5(
    r_values: Sequence[int] = (1_024, 4_096, 16_384, 65_536, 131_072),
    *,
    datasets: Sequence[str] = ("youtube_like", "livejournal_like"),
    trials: int = 3,
    delta: float = 0.2,
    verbose: bool = True,
) -> dict:
    """Figure 5: time, throughput and relative error as r grows."""
    series: dict[str, dict[str, list[float]]] = {}
    for name in datasets:
        dataset = load_dataset(name)
        truth = dataset.truth
        times, devs, bounds = [], [], []
        for r in r_values:
            stats = run_trials(
                lambda seed, r=r: VectorizedTriangleCounter(r, seed=seed),
                lambda seed: _dataset_edges(name, seed),
                true_value=truth.triangles,
                trials=trials,
                batch_size=max(4096, 8 * r),
            )
            times.append(stats.median_time)
            devs.append(stats.mean_deviation)
            bounds.append(
                100.0
                * error_bound(
                    r,
                    delta,
                    m=truth.num_edges,
                    max_degree=truth.max_degree,
                    triangles=truth.triangles,
                )
            )
        series[name] = {"times": times, "devs": devs, "bounds": bounds}
    if verbose:
        rs = list(r_values)
        print(
            ascii_plot(
                {name: (rs, data["times"]) for name, data in series.items()},
                log_x=True,
                x_label="r",
                y_label="seconds",
                title="Figure 5 (left): total running time vs r",
            )
        )
        print()
        error_series = {}
        for name, data in series.items():
            error_series[name] = (rs, data["devs"])
            error_series[f"{name} (bound)"] = (rs, data["bounds"])
        print(
            ascii_plot(
                error_series,
                log_x=True,
                log_y=True,
                x_label="r",
                y_label="% error",
                title="Figure 5 (right): relative error vs r, with Thm 3.3 bound",
            )
        )
    return {"r_values": list(r_values), "series": series}


# ---------------------------------------------------------------------------
# Figure 6: throughput vs batch size
# ---------------------------------------------------------------------------

def run_figure6(
    batch_factors: Sequence[float] = (0.25, 0.5, 1, 2, 4, 8, 16),
    *,
    dataset: str = "livejournal_like",
    num_estimators: int = 16_384,
    trials: int = 3,
    verbose: bool = True,
) -> dict:
    """Figure 6: throughput of the bulk algorithm vs batch size."""
    data = load_dataset(dataset)
    m = data.truth.num_edges
    xs, ys = [], []
    for factor in batch_factors:
        batch_size = max(256, int(num_estimators * factor))
        stats = run_trials(
            lambda seed: VectorizedTriangleCounter(num_estimators, seed=seed),
            lambda seed: _dataset_edges(dataset, seed),
            true_value=max(data.truth.triangles, 1),
            trials=trials,
            batch_size=batch_size,
        )
        xs.append(batch_size)
        ys.append(stats.throughput(m) / 1e6)
    table = render_table(
        ["batch size w", "Medges/s"],
        [[x, round(y, 3)] for x, y in zip(xs, ys)],
        title=f"Figure 6: throughput vs batch size ({dataset}, r={num_estimators})",
    )
    if verbose:
        print(table)
        print()
        print(
            ascii_plot(
                {dataset: (xs, ys)},
                log_x=True,
                x_label="batch size",
                y_label="Medges/s",
            )
        )
    return {"batch_sizes": xs, "throughputs": ys, "table": table}


# ---------------------------------------------------------------------------
# Section 4.2: why the Buriol et al. baseline fails to find triangles
# ---------------------------------------------------------------------------

def run_buriol_study(
    *,
    dataset: str = "amazon_like",
    num_estimators: int = 20_000,
    seed: int = 0,
    verbose: bool = True,
) -> dict:
    """Reproduce the observation that Buriol et al.'s estimators almost
    never complete a triangle, while neighborhood sampling's often do."""
    data = load_dataset(dataset)
    edges = _dataset_edges(dataset, seed)
    vertices = np.unique(edges).tolist()

    buriol = BuriolTriangleCounter(num_estimators, vertices, seed=seed)
    stream_through(buriol, edges, 65536)

    ours = TriangleCounter(num_estimators, engine="vectorized", seed=seed)
    stream_through(ours, edges, max(4096, 8 * num_estimators))

    true_tau = data.truth.triangles
    rows = [
        [
            "buriol",
            buriol.fraction_holding_triangle(),
            round(buriol.estimate(), 1),
            round(abs(buriol.estimate() - true_tau) / true_tau * 100, 2),
        ],
        [
            "neighborhood sampling",
            ours.fraction_holding_triangle(),
            round(ours.estimate(), 1),
            round(abs(ours.estimate() - true_tau) / true_tau * 100, 2),
        ],
    ]
    table = render_table(
        ["algorithm", "fraction holding triangle", "estimate", "error %"],
        rows,
        title=f"Section 4.2 baseline study on {dataset} (true tau = {true_tau})",
    )
    if verbose:
        print(table)
    return {
        "rows": rows,
        "table": table,
        "buriol_fraction": buriol.fraction_holding_triangle(),
        "ours_fraction": ours.fraction_holding_triangle(),
    }


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def run_ablation_tangle(
    *,
    datasets: Sequence[str] = tuple(FIGURE3_DATASETS),
    eps: float = 0.1,
    delta: float = 0.1,
    seed: int = 0,
    verbose: bool = True,
) -> dict:
    """Ablation A1: tangle coefficient gamma vs 2*Delta, and the
    estimator budgets of Theorem 3.4 vs Theorem 3.3."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name)
        truth = dataset.truth
        stream = dataset.stream(order="random", seed=seed)
        gamma = tangle_coefficient(stream)
        r_degree = estimators_needed(
            eps,
            delta,
            m=truth.num_edges,
            max_degree=truth.max_degree,
            triangles=truth.triangles,
        )
        r_gamma = estimators_needed_tangle(
            eps, delta, m=truth.num_edges, tangle=gamma, triangles=truth.triangles
        )
        rows.append(
            [
                name,
                round(gamma, 1),
                2 * truth.max_degree,
                round(gamma / (2 * truth.max_degree), 4),
                r_degree,
                r_gamma,
            ]
        )
    table = render_table(
        ["dataset", "gamma", "2*Delta", "gamma/(2*Delta)", "r (Thm 3.3)", "r (Thm 3.4)"],
        rows,
        title="Ablation A1: tangle coefficient vs worst-case degree bound",
    )
    if verbose:
        print(table)
    return {"rows": rows, "table": table}


def run_ablation_aggregation(
    *,
    dataset: str = "dblp_like",
    num_estimators: int = 8_192,
    groups: int = 16,
    trials: int = 10,
    verbose: bool = True,
) -> dict:
    """Ablation A2: mean vs median-of-means over identical states."""
    data = load_dataset(dataset)
    true_tau = data.truth.triangles
    mean_errors, mom_errors = [], []
    for trial in range(trials):
        engine = VectorizedTriangleCounter(num_estimators, seed=trial)
        stream_through(
            engine, _dataset_edges(dataset, trial), max(4096, 8 * num_estimators)
        )
        estimates = engine.estimates()
        mean_err = abs(aggregate_mean(estimates) - true_tau) / true_tau * 100
        mom_err = (
            abs(aggregate_median_of_means(estimates, groups) - true_tau)
            / true_tau
            * 100
        )
        mean_errors.append(mean_err)
        mom_errors.append(mom_err)
    rows = [
        ["mean (Thm 3.3)", round(statistics.fmean(mean_errors), 3),
         round(max(mean_errors), 3)],
        [f"median-of-means, {groups} groups (Thm 3.4)",
         round(statistics.fmean(mom_errors), 3), round(max(mom_errors), 3)],
    ]
    table = render_table(
        ["aggregator", "mean error %", "max error %"],
        rows,
        title=f"Ablation A2: aggregation on {dataset} (r={num_estimators}, {trials} trials)",
    )
    if verbose:
        print(table)
    return {
        "rows": rows,
        "table": table,
        "mean_errors": mean_errors,
        "mom_errors": mom_errors,
    }


def run_ablation_engines(
    *,
    dataset: str = "syn_3reg",
    num_estimators: int = 2_048,
    trials: int = 3,
    verbose: bool = True,
) -> dict:
    """Ablation A3: the three engines agree in distribution; compare speed."""
    data = load_dataset(dataset)
    true_tau = data.truth.triangles
    # Every registered engine competes; out-of-tree registrations show
    # up here automatically.
    engines = {
        name: lambda seed, name=name: TriangleCounter(
            num_estimators, engine=name, seed=seed
        )
        for name in ENGINES.names()
    }
    rows = []
    results = {}
    for name, factory in engines.items():
        stats = run_trials(
            factory,
            lambda seed: _dataset_edges(dataset, seed),
            true_value=true_tau,
            trials=trials,
            batch_size=max(1024, 4 * num_estimators),
        )
        results[name] = stats
        rows.append(
            [name, round(stats.mean_deviation, 2), round(stats.median_time, 4)]
        )
    table = render_table(
        ["engine", "mean deviation %", "median time (s)"],
        rows,
        title=f"Ablation A3: engine comparison on {dataset} (r={num_estimators})",
    )
    if verbose:
        print(table)
    return {"rows": rows, "table": table, "results": results}


# ---------------------------------------------------------------------------
# Single-pass fan-out: one stream read, many estimators
# ---------------------------------------------------------------------------

def run_pipeline_fanout(
    *,
    dataset: str = "amazon_like",
    estimator_names: Sequence[str] = ("count", "transitivity", "sample", "exact"),
    num_estimators: int = 20_000,
    seed: int = 0,
    batch_size: int = 65_536,
    verbose: bool = True,
) -> dict:
    """Drive every named estimator over ONE pass of the dataset stream.

    Demonstrates the streaming pipeline's fan-out: the stream is read
    once and each estimator sees identical batches, with per-estimator
    wall-clock time reported. The same registry names back the CLI's
    ``pipeline`` subcommand.
    """
    data = load_dataset(dataset)
    pipeline = Pipeline.from_registry(
        estimator_names, num_estimators=num_estimators, seed=seed
    )
    report = pipeline.run(
        _dataset_edges(dataset, seed), batch_size=batch_size
    )
    rows = [
        [r.name, round(r.seconds, 3)]
        + [f"{k}={v}" for k, v in list(r.results.items())[:2]]
        for r in report.estimators
    ]
    table = render_table(
        ["estimator", "time (s)", "result", ""],
        rows,
        title=f"Single-pass fan-out on {dataset} "
        f"(m={report.edges}, true tau={data.truth.triangles})",
    )
    if verbose:
        print(table)
    return {"rows": rows, "table": table, "report": report.to_dict()}


# ---------------------------------------------------------------------------
# Pipeline-driver throughput: the no-snapshot path of the shared driver
# ---------------------------------------------------------------------------

def run_pipeline_throughput(
    *,
    dataset: str = "amazon_like",
    estimator_names: Sequence[str] = ("count",),
    num_estimators: int = 1_024,
    trials: int = 3,
    seed: int = 0,
    batch_size: int = 8_192,
    verbose: bool = True,
) -> dict:
    """Median Medges/s of a full :meth:`Pipeline.run` stream pass.

    :meth:`Pipeline.run` and :meth:`Pipeline.snapshots` share one
    driver; this measures the *no-snapshot* mode of that driver (the
    regression gate in ``benchmarks/check_throughput_regression.py``
    compares it against the committed baseline, so a refactor of the
    shared driver cannot silently slow the plain run path down).
    """
    edges = _dataset_edges(dataset, seed)
    m = int(edges.shape[0])
    times = []
    for trial in range(trials):
        pipeline = Pipeline.from_registry(
            estimator_names, num_estimators=num_estimators, seed=seed + trial
        )
        report = pipeline.run(edges, batch_size=batch_size)
        times.append(report.seconds)
    median = statistics.median(times)
    result = {
        "dataset": dataset,
        "estimators": list(estimator_names),
        "num_estimators": num_estimators,
        "batch_size": batch_size,
        "edges": m,
        "median_seconds": median,
        "medges_per_s": round(m / max(median, 1e-9) / 1e6, 3),
    }
    if verbose:
        print(
            f"pipeline driver on {dataset}: {result['medges_per_s']} Medges/s "
            f"({m} edges, median of {trials})"
        )
    return result


# ---------------------------------------------------------------------------
# Live snapshots: the estimate trajectory while the stream flows
# ---------------------------------------------------------------------------

def run_live_snapshots(
    *,
    dataset: str = "amazon_like",
    estimator_names: Sequence[str] = ("count", "exact"),
    num_estimators: int = 20_000,
    every: int = 2,
    seed: int = 0,
    batch_size: int = 512,
    verbose: bool = True,
) -> dict:
    """Drive :meth:`Pipeline.snapshots` over a dataset and plot the
    estimate's convergence toward the exact trajectory.

    The paper's estimators are query-at-any-time; this runner makes
    that visible: one stream pass, a snapshot every ``every`` batches,
    and the approximate count tracking the exact streaming count as
    edges accumulate -- the workload ``repro watch`` serves over live
    files.
    """
    data = load_dataset(dataset)
    pipeline = Pipeline.from_registry(
        estimator_names, num_estimators=num_estimators, seed=seed
    )
    xs: list[float] = []
    series: dict[str, list[float]] = {name: [] for name in estimator_names}
    trajectory = []
    for snapshot in pipeline.snapshots(
        _dataset_edges(dataset, seed), batch_size=batch_size, every=every
    ):
        xs.append(float(snapshot.edges))
        for name in estimator_names:
            results = snapshot[name].results
            value = results.get("triangles", results.get("estimate"))
            series[name].append(float(value) if value is not None else 0.0)
        trajectory.append(snapshot.to_dict())
    if verbose:
        print(
            ascii_plot(
                {name: (xs, ys) for name, ys in series.items()},
                x_label="edges seen",
                y_label="triangles",
                title=f"live snapshots on {dataset} (every {every} batches, "
                f"true tau={data.truth.triangles})",
            )
        )
    return {"edges": xs, "series": series, "trajectory": trajectory}


# ---------------------------------------------------------------------------
# Sharded execution: the same fan-out split across worker processes
# ---------------------------------------------------------------------------

def run_sharded_fanout(
    *,
    dataset: str = "amazon_like",
    estimator_names: Sequence[str] = ("count", "transitivity", "exact"),
    num_estimators: int = 20_000,
    workers: int = 2,
    seed: int = 0,
    batch_size: int = 65_536,
    verbose: bool = True,
) -> dict:
    """Single-process fan-out vs the same pools sharded across workers.

    The conclusion of the paper notes neighborhood sampling is amenable
    to parallelization; :class:`~repro.streaming.ShardedPipeline` makes
    that concrete for *every* registered estimator: each pool is split
    across worker processes over one stream read and the shard states
    are merged through the checkpoint protocol. The estimates agree in
    distribution (the shards use independent derived seeds, so they are
    not bit-identical to the single-process run).
    """
    data = load_dataset(dataset)
    edges = _dataset_edges(dataset, seed)

    single = Pipeline.from_registry(
        estimator_names, num_estimators=num_estimators, seed=seed
    )
    single_report = single.run(edges, batch_size=batch_size)
    sharded = ShardedPipeline(
        list(estimator_names),
        workers=workers,
        num_estimators=num_estimators,
        seed=seed,
    )
    sharded_report = sharded.run(edges, batch_size=batch_size)

    rows = []
    for name in estimator_names:
        first = list(single_report[name].results.items())[0]
        second = list(sharded_report[name].results.items())[0]
        rows.append(
            [
                name,
                f"{first[0]}={first[1]}",
                f"{second[0]}={second[1]}",
                round(single_report[name].seconds, 3),
                round(sharded_report[name].seconds, 3),
            ]
        )
    table = render_table(
        ["estimator", "single-process", f"sharded x{workers}",
         "single time (s)", "sharded time (s)"],
        rows,
        title=f"Sharded fan-out on {dataset} "
        f"(m={single_report.edges}, true tau={data.truth.triangles})",
    )
    if verbose:
        print(table)
    return {
        "rows": rows,
        "table": table,
        "single": single_report.to_dict(),
        "sharded": sharded_report.to_dict(),
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

_RUNNERS = {
    "figure3": run_figure3,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "buriol": run_buriol_study,
    "ablation-tangle": run_ablation_tangle,
    "ablation-aggregation": run_ablation_aggregation,
    "ablation-engines": run_ablation_engines,
    "pipeline-fanout": run_pipeline_fanout,
    "sharded-fanout": run_sharded_fanout,
    "live-snapshots": run_live_snapshots,
    "pipeline-throughput": run_pipeline_throughput,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", nargs="?", help="experiment name")
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)
    if args.list or not args.experiment:
        for name in _RUNNERS:
            print(name)
        return 0
    runner = _RUNNERS.get(args.experiment)
    if runner is None:
        print(f"unknown experiment {args.experiment!r}; use --list")
        return 1
    start = time.perf_counter()
    runner()
    print(f"\n[{args.experiment} finished in {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
