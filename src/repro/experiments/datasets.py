"""Convenience re-exports of the dataset registry for experiment code.

The full registry lives in :mod:`repro.generators.datasets`; experiments
import it through this module so the harness layer has a single import
point. ``FIGURE3_DATASETS`` is the six-graph suite of Figure 3 /
Table 3, in the paper's row order.
"""

from __future__ import annotations

from ..generators.datasets import (
    Dataset,
    DatasetSpec,
    GroundTruth,
    available_datasets,
    dataset_spec,
    load_dataset,
)

FIGURE3_DATASETS = [
    "amazon_like",
    "dblp_like",
    "youtube_like",
    "livejournal_like",
    "orkut_like",
    "syn_d_regular",
]

__all__ = [
    "Dataset",
    "DatasetSpec",
    "FIGURE3_DATASETS",
    "GroundTruth",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
]
