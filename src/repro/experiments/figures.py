"""Plain-text "figures": ASCII plots and CSV series.

The paper's figures are line/bar charts; offline we emit (a) an ASCII
rendering good enough to read the trend and (b) a CSV file holding the
exact series so real plots can be regenerated elsewhere.
"""

from __future__ import annotations

import csv
import math
import os
from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot", "ascii_histogram", "write_csv"]

_MARKERS = "*o+x#@%&"


def write_csv(
    path: str | os.PathLike, headers: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Write one experiment's series to a CSV file."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return list(values)
    return [math.log10(v) if v > 0 else float("-inf") for v in values]


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 70,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Scatter-plot named (xs, ys) series onto a character grid."""
    all_x: list[float] = []
    all_y: list[float] = []
    for xs, ys in series.values():
        all_x.extend(_transform(xs, log_x))
        all_y.extend(_transform(ys, log_y))
    finite_x = [v for v in all_x if math.isfinite(v)]
    finite_y = [v for v in all_y if math.isfinite(v)]
    if not finite_x or not finite_y:
        return "(empty plot)"
    x_lo, x_hi = min(finite_x), max(finite_x)
    y_lo, y_hi = min(finite_y), max(finite_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        for x, y in zip(_transform(xs, log_x), _transform(ys, log_y)):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.3g}" + (" (log10)" if log_y else "")
    y_lo_label = f"{y_lo:.3g}"
    lines.append(f"{y_label} ^  max={y_hi_label}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> {x_label}")
    x_note = " (log10)" if log_x else ""
    lines.append(f"   x in [{x_lo:.3g}, {x_hi:.3g}]{x_note}, y min={y_lo_label}")
    legend = "   legend: " + "  ".join(
        f"{_MARKERS[k % len(_MARKERS)]}={name}" for k, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_histogram(
    counts: Mapping[int, int],
    *,
    width: int = 50,
    max_rows: int = 20,
    log_bins: bool = True,
    title: str | None = None,
) -> str:
    """Render a degree histogram like Figure 3's right panel.

    With ``log_bins`` the keys are grouped into powers-of-two buckets,
    which is how heavy-tailed distributions stay readable.
    """
    if not counts:
        return "(empty histogram)"
    if log_bins:
        bucketed: dict[str, int] = {}
        order: list[str] = []
        for degree in sorted(counts):
            if degree <= 0:
                continue
            lo = 1 << (degree.bit_length() - 1)
            label = f"[{lo},{2 * lo})"
            if label not in bucketed:
                bucketed[label] = 0
                order.append(label)
            bucketed[label] += counts[degree]
        items = [(label, bucketed[label]) for label in order][:max_rows]
    else:
        items = [(str(k), v) for k, v in sorted(counts.items())][:max_rows]
    peak = max(v for _, v in items)
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, int(value / peak * width))
        lines.append(f"{label.rjust(label_width)} | {bar} {value}")
    return "\n".join(lines)
