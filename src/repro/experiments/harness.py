"""Multi-trial experiment runner with the paper's reporting conventions.

Section 4.1: "we perform five trials with different random seeds and
report (1) the mean deviation (relative error) values from the true
answer across the trials, (2) the median wall-clock overall runtime, and
(3) the median I/O time." :func:`run_trials` implements exactly that
protocol for any counter with the ``update_batch`` / ``estimate`` API.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge
from ..streaming.source import EdgeSource, as_source

__all__ = ["TrialStats", "run_trials", "stream_through", "time_file_read"]


class _Counter(Protocol):  # pragma: no cover - typing helper
    def update_batch(self, batch: Sequence[Edge]) -> None: ...
    def estimate(self) -> float: ...


def stream_through(
    counter: _Counter,
    edges: Sequence[Edge] | EdgeSource | str,
    batch_size: int,
) -> float:
    """Feed an edge source to ``counter`` in batches; return elapsed seconds.

    ``edges`` is anything :func:`~repro.streaming.source.as_source`
    accepts: an in-memory sequence (the historical calling convention),
    a file path, a generator, or an :class:`EdgeSource`.
    """
    source = as_source(edges)
    start = time.perf_counter()
    for batch in source.batches(batch_size):
        counter.update_batch(batch)
    return time.perf_counter() - start


def time_file_read(path: str | os.PathLike) -> float:
    """Seconds to read and parse an edge-list file (Table 3's I/O column)."""
    from ..graph.io import read_edge_list

    start = time.perf_counter()
    read_edge_list(path, deduplicate=False)
    return time.perf_counter() - start


@dataclass
class TrialStats:
    """Aggregated results of repeated randomized trials."""

    true_value: float
    estimates: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    @property
    def deviations(self) -> list[float]:
        """Relative errors in percent, one per trial."""
        if self.true_value == 0:
            raise InvalidParameterError("true value is zero; deviation undefined")
        return [
            abs(est - self.true_value) / self.true_value * 100.0
            for est in self.estimates
        ]

    @property
    def mean_deviation(self) -> float:
        """The paper's headline accuracy metric (MD, in percent)."""
        return statistics.fmean(self.deviations)

    @property
    def min_deviation(self) -> float:
        return min(self.deviations)

    @property
    def max_deviation(self) -> float:
        return max(self.deviations)

    @property
    def median_time(self) -> float:
        """Median wall-clock seconds across trials."""
        return statistics.median(self.times)

    def throughput(self, num_edges: int) -> float:
        """Edges per second at the median time."""
        if not self.times or self.median_time == 0:
            return float("inf")
        return num_edges / self.median_time

    def summary(self) -> str:
        return (
            f"dev min/mean/max = {self.min_deviation:.2f}/"
            f"{self.mean_deviation:.2f}/{self.max_deviation:.2f} %  "
            f"median time = {self.median_time:.3f}s"
        )


def run_trials(
    counter_factory: Callable[[int], _Counter],
    stream_factory: Callable[[int], Sequence[Edge]],
    *,
    true_value: float,
    trials: int = 5,
    batch_size: int = 8192,
    base_seed: int = 0,
) -> TrialStats:
    """Run ``trials`` randomized trials and aggregate per Section 4.1.

    Parameters
    ----------
    counter_factory:
        ``seed -> counter``; a fresh counter per trial.
    stream_factory:
        ``seed -> edge source`` (a sequence, file path, generator, or
        :class:`~repro.streaming.source.EdgeSource`); the paper
        randomizes the stream order between trials, so the factory
        receives the trial seed too.
    true_value:
        The exact quantity being estimated.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    stats = TrialStats(true_value=float(true_value))
    for trial in range(trials):
        seed = base_seed + trial
        counter = counter_factory(seed)
        edges = stream_factory(seed)
        elapsed = stream_through(counter, edges, batch_size)
        stats.estimates.append(float(counter.estimate()))
        stats.times.append(elapsed)
    return stats
