"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_number"]


def format_number(value) -> str:
    """Human-friendly numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value:,.3e}"
        if abs(value) >= 100:
            return f"{value:,.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.3e}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+------
    1 | 2.500
    """
    cells = [[format_number(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
