"""Experiment harness reproducing the paper's Section 4 evaluation.

- :mod:`repro.experiments.harness` -- multi-trial runner with the
  paper's reporting conventions (mean deviation over five trials,
  median wall-clock time, separately-measured I/O time, throughput);
- :mod:`repro.experiments.tables` -- ASCII table rendering;
- :mod:`repro.experiments.figures` -- ASCII plots and CSV series;
- :mod:`repro.experiments.runners` -- one entry point per table/figure
  (``python -m repro.experiments.runners --list``).
"""

from .harness import TrialStats, run_trials, stream_through, time_file_read
from .tables import render_table
from .figures import ascii_plot, write_csv

__all__ = [
    "TrialStats",
    "ascii_plot",
    "render_table",
    "run_trials",
    "stream_through",
    "time_file_read",
    "write_csv",
]
