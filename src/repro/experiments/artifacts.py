"""Persist every experiment's tables and series to an artifacts directory.

``python -m repro.experiments.artifacts [--out DIR]`` runs all the
runners at their default (scaled) configurations and writes:

- ``<name>.txt`` -- the rendered table / ASCII figure,
- ``<name>.csv`` -- the raw series where the experiment produces one,

so the full evaluation can be archived or re-plotted elsewhere in one
command.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import time
from pathlib import Path
from typing import Sequence

from .figures import write_csv
from .runners import _RUNNERS

__all__ = ["write_all_artifacts", "main"]


def _series_rows(name: str, result: dict) -> tuple[list[str], list[list]] | None:
    """Extract a CSV-able series from a runner result, if any."""
    if name == "figure5":
        rows = []
        for dataset, data in result["series"].items():
            for r, t, dev, bound in zip(
                result["r_values"], data["times"], data["devs"], data["bounds"]
            ):
                rows.append([dataset, r, t, dev, bound])
        return ["dataset", "r", "seconds", "mean_dev_pct", "bound_pct"], rows
    if name == "figure6":
        rows = [
            [w, y] for w, y in zip(result["batch_sizes"], result["throughputs"])
        ]
        return ["batch_size", "medges_per_s"], rows
    if "rows" in result:
        header = [f"col{i}" for i in range(len(result["rows"][0]))]
        return header, [list(r) for r in result["rows"]]
    return None


def write_all_artifacts(
    out_dir: str | Path, *, only: Sequence[str] | None = None
) -> list[Path]:
    """Run every experiment and persist its outputs; return the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    names = list(only) if only else list(_RUNNERS)
    for name in names:
        runner = _RUNNERS[name]
        stream = io.StringIO()
        start = time.perf_counter()
        with contextlib.redirect_stdout(stream):
            result = runner()
        elapsed = time.perf_counter() - start
        text_path = out / f"{name}.txt"
        text_path.write_text(
            stream.getvalue() + f"\n[{name} finished in {elapsed:.1f}s]\n"
        )
        written.append(text_path)
        series = _series_rows(name, result if isinstance(result, dict) else {})
        if series is not None:
            csv_path = out / f"{name}.csv"
            write_csv(csv_path, series[0], series[1])
            written.append(csv_path)
    return written


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="artifacts", help="output directory")
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment names"
    )
    args = parser.parse_args(argv)
    paths = write_all_artifacts(args.out, only=args.only)
    for path in paths:
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
