"""Run rules over a shared parse, apply suppressions, render results.

The runner is the only piece that knows about suppressions and output
formats; rules just emit :class:`~repro.analysis.model.Finding` lists
over the shared :class:`~repro.analysis.model.Project`. A finding is
suppressed when its file carries ``# repro: allow[R00x]`` on the same
line for the same rule. Suppressions that match nothing are themselves
reported (as ``W000``) so stale allowances cannot silently disable a
rule -- but only when every rule ran, since on a ``--rule``-filtered
run an allowance for an unselected rule is legitimately idle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .model import ERROR_RULE, UNUSED_SUPPRESSION_RULE, Finding, Project
from .rules import RULES

__all__ = ["CheckResult", "render_human", "render_json", "run_check"]

#: Bumped when the JSON schema changes shape.
REPORT_VERSION = 1


@dataclass
class CheckResult:
    """Everything one ``repro check`` invocation produced."""

    rule_ids: tuple[str, ...]
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[Finding] = field(default_factory=list)
    errors: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing blocks: no findings, no file errors."""
        return not self.findings and not self.errors


def run_check(paths: list[str], rules: list[str] | None = None) -> CheckResult:
    """Parse ``paths`` once and run the selected rules over the result.

    Parameters
    ----------
    paths:
        Files and/or directories to analyze.
    rules:
        Rule ids to run; ``None`` means all registered rules. Unknown
        ids raise ``ValueError`` (the CLI turns that into usage text).
    """
    if rules is None:
        selected = tuple(sorted(RULES))
        full_run = True
    else:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            known = ", ".join(sorted(RULES))
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} (known: {known})"
            )
        selected = tuple(sorted(set(rules)))
        full_run = False

    project = Project.load(paths)
    result = CheckResult(rule_ids=selected, files_checked=len(project.modules))
    result.errors.extend(project.errors)

    raw: list[Finding] = []
    for rule_id in selected:
        raw.extend(RULES[rule_id].check(project))

    suppressions_by_path = {
        module.path: module.suppressions for module in project.modules
    }
    for finding in sorted(raw):
        matched = False
        for suppression in suppressions_by_path.get(finding.path, []):
            if suppression.line == finding.line and suppression.rule == finding.rule:
                suppression.used = True
                matched = True
        (result.suppressed if matched else result.findings).append(finding)

    if full_run:
        for module in project.modules:
            for suppression in module.suppressions:
                if not suppression.used:
                    result.findings.append(
                        Finding(
                            path=suppression.path,
                            line=suppression.line,
                            col=1,
                            rule=UNUSED_SUPPRESSION_RULE,
                            message=(
                                f"suppression allow[{suppression.rule}] matches "
                                "no finding; remove it so it cannot mask a "
                                "future regression"
                            ),
                        )
                    )
        result.unused_suppressions = [
            finding
            for finding in result.findings
            if finding.rule == UNUSED_SUPPRESSION_RULE
        ]
        result.findings.sort()
    return result


def render_human(result: CheckResult) -> str:
    """The terminal report: one ``path:line:col rule message`` per hit."""
    lines: list[str] = []
    for finding in result.errors:
        lines.append(f"{finding.location()} {ERROR_RULE} {finding.message}")
    for finding in result.findings:
        lines.append(f"{finding.location()} {finding.rule} {finding.message}")
    total = len(result.findings) + len(result.errors)
    if total:
        lines.append("")
    suffix = f", {len(result.suppressed)} suppressed" if result.suppressed else ""
    lines.append(
        f"repro check: {total} finding(s) in {result.files_checked} file(s) "
        f"[{', '.join(result.rule_ids)}]{suffix}"
    )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report (stable schema, see ``REPORT_VERSION``)."""
    payload = {
        "version": REPORT_VERSION,
        "rules": list(result.rule_ids),
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "errors": [f.to_dict() for f in result.errors],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "unused_suppressions": [f.to_dict() for f in result.unused_suppressions],
        "summary": {
            "findings": len(result.findings),
            "errors": len(result.errors),
            "suppressed": len(result.suppressed),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
