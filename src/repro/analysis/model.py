"""Shared parse layer: one AST + comment pass per file, reused by every rule.

The analyzer's cost model is "parse each module once, let every rule
walk the cached tree": :class:`Project` owns the cache and the path
collection; :class:`ParsedModule` owns one file's AST, its per-line
``# repro: allow[...]`` suppressions, and its ``# repro: derived``
markers (both extracted with :mod:`tokenize`, so string literals that
merely *contain* the marker text cannot register one).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Finding", "ParsedModule", "Project", "collect_files"]

#: Rule id of file-level problems (unreadable/unparseable source).
ERROR_RULE = "E000"

#: Rule id of unused-suppression warnings.
UNUSED_SUPPRESSION_RULE = "W000"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_DERIVED_RE = re.compile(r"#\s*repro:\s*derived\b")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a ``file:line`` location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# repro: allow[R00x]`` comment occurrence."""

    path: str
    line: int
    rule: str
    used: bool = False


class ParsedModule:
    """One source file: AST plus the comment-derived markers.

    Parameters
    ----------
    path:
        Display path (as the finding should print it).
    source:
        The file's text.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.suppressions: list[Suppression] = []
        self.derived_lines: set[int] = set()
        self._scan_comments()

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # ast.parse succeeded, so this is unreachable in practice;
            # fall back to treating every line as a potential comment.
            comments = list(enumerate(self.source.splitlines(), start=1))
        for line, text in comments:
            if _DERIVED_RE.search(text):
                self.derived_lines.add(line)
            match = _ALLOW_RE.search(text)
            if match:
                for rule in match.group(1).split(","):
                    rule = rule.strip()
                    if rule:
                        self.suppressions.append(Suppression(self.path, line, rule))

    def is_derived_line(self, line: int) -> bool:
        """Whether ``line`` carries a ``# repro: derived`` marker."""
        return line in self.derived_lines

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def collect_files(paths: list[str]) -> tuple[list[str], list[Finding]]:
    """Expand ``paths`` (files or directories) into sorted ``.py`` files.

    Unknown paths become :data:`ERROR_RULE` findings instead of raising,
    so one bad CLI argument reports alongside real results.
    """
    files: list[str] = []
    errors: list[Finding] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            errors.append(Finding(path, 1, 1, ERROR_RULE, "no such file or directory"))
    # De-duplicate while preserving the caller's path spelling.
    seen: set[str] = set()
    unique: list[str] = []
    for path in files:
        key = os.path.abspath(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique, errors


@dataclass
class Project:
    """The analyzed module set, parsed once and shared by all rules."""

    modules: list[ParsedModule] = field(default_factory=list)
    errors: list[Finding] = field(default_factory=list)

    @classmethod
    def load(cls, paths: list[str]) -> "Project":
        files, errors = collect_files(paths)
        project = cls(errors=errors)
        for path in files:
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                project.errors.append(
                    Finding(path, 1, 1, ERROR_RULE, f"unreadable: {exc}")
                )
                continue
            try:
                project.modules.append(ParsedModule(path, source))
            except SyntaxError as exc:
                project.errors.append(
                    Finding(path, exc.lineno or 1, 1, ERROR_RULE, f"syntax error: {exc.msg}")
                )
        return project

    def find_modules(self, predicate) -> list[ParsedModule]:
        """Modules for which ``predicate(module)`` is true."""
        return [module for module in self.modules if predicate(module)]

    def classes(self):
        """Every ``(module, ClassDef)`` pair in the project (any nesting)."""
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield module, node
