"""Static invariant analysis for the repo's determinism contracts.

Eight PRs of growth rest on conventions that nothing enforced at lint
time: every checkpointable estimator must round-trip its full mutable
state, all randomness must flow through seeded generators, every kernel
behind :data:`repro.core.backend.KERNEL_NAMES` must exist in both
backends with the same signature, shared-memory blocks must pair
``close()``/``unlink()``, and live reporters must not draw from an
estimator's generator. Violating any of them produces bugs that only
surface in kill/resume chaos runs or cross-backend fingerprint diffs --
long after the offending line shipped.

This package is an AST-based analyzer that checks those contracts
statically. One shared parse (:class:`~repro.analysis.model.Project`)
feeds a set of rule plugins (:mod:`repro.analysis.rules`); findings
carry ``file:line`` locations and can be suppressed per line with

    some_violation()  # repro: allow[R002]

(a suppression that never fires is itself reported, so stale allows
cannot accumulate). Run it as ``python -m repro check [paths...]`` or
through :func:`run_check`; the ``static-analysis`` CI job gates the
tree on a clean report.

Rules shipped (see ``python -m repro check --list-rules``):

====  ==================================================================
R001  checkpoint-state completeness: ``self.*`` assigned in ``__init__``
      must appear in ``state_dict``/``load_state_dict``/``STATE_FIELDS``
      or be declared derived via ``# repro: derived``
R002  RNG discipline: no stdlib ``random``, no legacy ``np.random.*``
      global calls, no time-seeded generators
R003  backend kernel parity: every ``KERNEL_NAMES`` kernel defined in
      both backends with identical positional signatures; no direct
      kernel imports outside the dispatch seam
R004  resource lifecycle: ``SharedMemory``/file handles must reach
      ``close``/``unlink`` through ``with``/``finally``/``__exit__``
R005  nondeterministic iteration: no draining bare ``set``\\ s into
      order-sensitive sinks (sequences, RNG draws, wire formats)
R006  registry/protocol conformance: registered estimators satisfy the
      ``StreamingEstimator`` surface, ``supports_deletions`` is a bool
      class attribute, live reporters never consume randomness
====  ==================================================================
"""

from __future__ import annotations

from .model import Finding, Project
from .rules import RULES
from .runner import CheckResult, render_human, render_json, run_check

__all__ = [
    "CheckResult",
    "Finding",
    "Project",
    "RULES",
    "render_human",
    "render_json",
    "run_check",
]
