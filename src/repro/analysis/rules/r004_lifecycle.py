"""R004: resource lifecycle.

Shared-memory segments and file handles leak silently: a
``SharedMemory`` block that misses ``unlink()`` survives the process in
``/dev/shm``, and a handle closed only on the happy path leaks exactly
when an exception already has the run in trouble. The transport suite
asserts zero leaked segments *dynamically*; this rule catches the same
class of bug at lint time.

For every acquisition (``SharedMemory(...)``, ``open(...)``,
``os.open``/``os.fdopen``/``io.open``/``gzip.open``) the rule requires
one of:

- a ``with`` statement (including ``contextlib.closing``/``ExitStack``
  items);
- a local binding whose ``close()`` (and ``unlink()`` for *created*
  shared memory) runs under ``finally`` or an ``except`` handler;
- ownership transfer: the handle is returned, yielded, aliased/stored
  elsewhere, or passed as an argument to another owner
  (``os.close(fd)``, ``stack.enter_context(h)``,
  ``self._segments.append(seg)``);
- for handles stored on ``self``: the class defines ``close``,
  ``__exit__`` or ``__del__`` that closes (and, for created shared
  memory, somewhere unlinks) its resources.

Heuristic by design -- an exotic ownership scheme can suppress with
``# repro: allow[R004]`` and a justification -- but every true leak the
repo has shipped so far falls in one of the shapes above.
"""

from __future__ import annotations

import ast

from ..model import Finding, ParsedModule, Project
from . import rule
from .common import body_walk, class_methods, dotted_name, is_self_attr, iter_functions

RULE_ID = "R004"

#: Call names that acquire an OS resource.
_FILE_ACQUIRERS = frozenset({"open", "os.open", "os.fdopen", "io.open", "gzip.open"})
_SHM_SUFFIX = "SharedMemory"

#: Class methods accepted as releasers for self-held resources.
_RELEASER_METHODS = ("close", "__exit__", "__del__")


def _acquisition_kind(call: ast.Call) -> tuple[str, bool] | None:
    """``(kind, created)`` when ``call`` acquires a resource, else None."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    if dotted.rsplit(".", 1)[-1] == _SHM_SUFFIX:
        created = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
        return "shared memory", created
    if dotted in _FILE_ACQUIRERS:
        return "file handle", False
    return None


def _protected_ids(func: ast.FunctionDef) -> set[int]:
    """ids of nodes under any ``finally``/``except`` block in ``func``."""
    protected: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            blocks = list(node.finalbody)
            for handler in node.handlers:
                blocks.extend(handler.body)
            for stmt in blocks:
                for child in ast.walk(stmt):
                    protected.add(id(child))
    return protected


def _with_managed_ids(func: ast.FunctionDef) -> set[int]:
    """ids of nodes appearing inside ``with`` items."""
    managed: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for child in ast.walk(item.context_expr):
                    managed.add(id(child))
    return managed


def _method_calls_on(func: ast.AST, name: str) -> dict[str, list[ast.Call]]:
    """Method calls ``<name>.<method>(...)`` anywhere under ``func``."""
    calls: dict[str, list[ast.Call]] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            calls.setdefault(node.func.attr, []).append(node)
    return calls


def _is_transferred(func: ast.FunctionDef, name: str) -> bool:
    """Whether the handle bound to ``name`` leaves this function's care."""

    def _mentions(node: ast.AST | None) -> bool:
        if node is None:
            return False
        return any(
            isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
        )

    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if _mentions(getattr(node, "value", None)):
                return True
        elif isinstance(node, ast.Call):
            # Passed to another owner (os.close(fd), stack.enter_context(h),
            # self._segments.append(seg), TextIOWrapper(h), ...). Method
            # calls *on* the handle do not count as arguments.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        elif isinstance(node, ast.Assign):
            # Aliased or stored: x = h, self.h = h, container[k] = h.
            if isinstance(node.value, ast.Name) and node.value.id == name:
                for target in node.targets:
                    if not (isinstance(target, ast.Name) and target.id == name):
                        return True
    return False


def _class_releases(cls: ast.ClassDef, *, needs_unlink: bool) -> bool:
    """Whether ``cls`` has a releaser method that closes (and unlinks)."""
    methods = class_methods(cls)
    closes = False
    for method_name in _RELEASER_METHODS:
        method = methods.get(method_name)
        if method is None:
            continue
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
            ):
                closes = True
    if not closes:
        return False
    if not needs_unlink:
        return True
    # unlink may live in any method the releaser delegates to.
    for method in methods.values():
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
            ):
                return True
    return False


def _acquisitions_in(node: ast.AST, managed: set[int]) -> list[ast.Call]:
    return [
        child
        for child in ast.walk(node)
        if isinstance(child, ast.Call)
        and id(child) not in managed
        and _acquisition_kind(child) is not None
    ]


def _check_function(
    module: ParsedModule, func: ast.FunctionDef, cls: ast.ClassDef | None
) -> list[Finding]:
    findings: list[Finding] = []
    managed = _with_managed_ids(func)
    protected = _protected_ids(func)

    # Shallow scan: nested defs are visited by their own pass.
    for stmt in body_walk(func.body, into_functions=False):
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            receiver = value
            while isinstance(receiver, ast.Call) and isinstance(
                receiver.func, ast.Attribute
            ):
                receiver = receiver.func.value
            for candidate in (value, receiver):
                if (
                    isinstance(candidate, ast.Call)
                    and id(candidate) not in managed
                    and _acquisition_kind(candidate) is not None
                ):
                    kind, _ = _acquisition_kind(candidate)  # type: ignore[misc]
                    findings.append(
                        module.finding(
                            candidate,
                            RULE_ID,
                            f"{kind} acquired and discarded without a binding "
                            "that could release it",
                        )
                    )
                    break
            continue
        if not isinstance(stmt, ast.Assign):
            continue
        acquisitions = _acquisitions_in(stmt.value, managed)
        if not acquisitions:
            continue
        call = acquisitions[0]
        kind, created = _acquisition_kind(call)  # type: ignore[misc]

        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        if isinstance(target, ast.Name):
            name = target.id
            if _is_transferred(func, name):
                continue
            calls = _method_calls_on(func, name)
            close_calls = calls.get("close", [])
            unlink_calls = calls.get("unlink", [])
            if not close_calls:
                findings.append(
                    module.finding(
                        call,
                        RULE_ID,
                        f"{kind} bound to {name!r} is never closed in this "
                        "function and never handed to another owner; use a "
                        "with block or close it in a finally",
                    )
                )
            elif created and not unlink_calls:
                findings.append(
                    module.finding(
                        call,
                        RULE_ID,
                        f"created {kind} bound to {name!r} is closed but "
                        "never unlinked; the segment would outlive the "
                        "process in /dev/shm",
                    )
                )
            elif not any(
                id(node) in protected for node in close_calls + unlink_calls
            ):
                findings.append(
                    module.finding(
                        call,
                        RULE_ID,
                        f"{kind} bound to {name!r} is released only on the "
                        "happy path; an exception between acquire and close "
                        "leaks it -- move the release into a finally",
                    )
                )
            continue

        stored_on_self = target is not None and (
            is_self_attr(target) is not None
            or (
                isinstance(target, ast.Subscript)
                and is_self_attr(target.value) is not None
            )
        )
        if stored_on_self and (
            cls is None or not _class_releases(cls, needs_unlink=created)
        ):
            owner = cls.name if cls is not None else "<module>"
            findings.append(
                module.finding(
                    call,
                    RULE_ID,
                    f"{kind} stored on self in {owner} but the class defines "
                    "no close/__exit__/__del__ that releases it"
                    + (
                        " (created shared memory also needs unlink)"
                        if created
                        else ""
                    ),
                )
            )
    return findings


def _check_self_appends(
    module: ParsedModule, func: ast.FunctionDef, cls: ast.ClassDef | None
) -> list[Finding]:
    """Acquisitions passed straight into a ``self.<attr>.append(...)``."""
    findings: list[Finding] = []
    for node in body_walk(func.body, into_functions=False):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        receiver = node.func.value
        if not (isinstance(receiver, ast.Attribute) and is_self_attr(receiver)):
            continue
        for arg in node.args:
            if not isinstance(arg, ast.Call):
                continue
            info = _acquisition_kind(arg)
            if info is None:
                continue
            kind, created = info
            if cls is None or not _class_releases(cls, needs_unlink=created):
                owner = cls.name if cls is not None else "<module>"
                findings.append(
                    module.finding(
                        arg,
                        RULE_ID,
                        f"{kind} stored on self in {owner} but the class "
                        "defines no close/__exit__/__del__ that releases it"
                        + (
                            " (created shared memory also needs unlink)"
                            if created
                            else ""
                        ),
                    )
                )
    return findings


@rule(RULE_ID, "resource lifecycle (SharedMemory/handles reach close/unlink)")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        for func, cls in iter_functions(module.tree):
            findings.extend(_check_function(module, func, cls))
            findings.extend(_check_self_appends(module, func, cls))
    return findings
