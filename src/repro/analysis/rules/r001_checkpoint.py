"""R001: checkpoint-state completeness.

Every class that implements ``state_dict`` promises a *complete*
snapshot: restoring it must reproduce the estimator bit for bit (the
contract :class:`repro.streaming.protocol.CheckpointableEstimator`
documents and the kill/resume suites assert dynamically). The classic
way to break it is silent: a new ``self.foo`` lands in ``__init__``,
``state_dict`` is not updated, and every checkpoint from then on drops
``foo`` -- which no test notices until a resume diverges.

The rule checks, for each class defining both ``__init__`` and
``state_dict``, that every attribute assigned on ``self`` in
``__init__`` is accounted for by at least one of:

- a ``self.<attr>`` read anywhere in ``state_dict`` (it is serialized);
- the attribute's name -- with or without a leading-underscore prefix
  -- appearing as a string constant in ``state_dict`` (dict keys like
  ``"rng": self._rng.getstate()``);
- a ``self.<attr>`` assignment in ``load_state_dict`` (state that is
  *rebuilt* from the snapshot, e.g. inverted indexes);
- membership in a ``STATE_FIELDS`` tuple the class's snapshot methods
  reference (the single-source-of-truth pattern);
- an explicit ``# repro: derived`` marker on the assignment line (the
  PR-5 "indexes are derived state" pattern, machine-checked).
"""

from __future__ import annotations

import ast

from ..model import Finding, ParsedModule, Project
from . import rule
from .common import class_methods, is_self_attr, self_attr_reads, string_constants

RULE_ID = "R001"

#: Names of snapshot-field tuples treated as coverage when referenced.
_FIELD_TUPLE_NAMES = ("STATE_FIELDS",)


def _field_tuples(module: ParsedModule, cls: ast.ClassDef) -> dict[str, set[str]]:
    """``STATE_FIELDS``-style string tuples visible to ``cls``.

    Collects module-level and class-level assignments whose target name
    is in :data:`_FIELD_TUPLE_NAMES` and whose value is a tuple/list of
    string constants.
    """
    found: dict[str, set[str]] = {}
    for scope in (module.tree.body, cls.body):
        for stmt in scope:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in _FIELD_TUPLE_NAMES
                    and isinstance(stmt.value, (ast.Tuple, ast.List))
                ):
                    values = {
                        elt.value
                        for elt in stmt.value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    }
                    found.setdefault(target.id, set()).update(values)
    return found


def _init_assignments(init: ast.FunctionDef) -> dict[str, ast.AST]:
    """First assignment node per ``self.<attr>`` in ``__init__``."""
    assigns: dict[str, ast.AST] = {}
    for node in ast.walk(init):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                elements = list(target.elts)
            else:
                elements = [target]
            for element in elements:
                name = is_self_attr(element)
                if name is not None and name not in assigns:
                    assigns[name] = node
    return assigns


def _references_any(node: ast.AST, names: tuple[str, ...]) -> set[str]:
    """Which of ``names`` are referenced (as bare names) under ``node``."""
    hits: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in names:
            hits.add(child.id)
    return hits


@rule(RULE_ID, "checkpoint-state completeness (state_dict covers __init__ state)")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module, cls in project.classes():
        methods = class_methods(cls)
        init = methods.get("__init__")
        state_dict = methods.get("state_dict")
        if init is None or state_dict is None:
            continue
        load = methods.get("load_state_dict")

        covered: set[str] = set()
        covered |= self_attr_reads(state_dict)
        if load is not None:
            for node in ast.walk(load):
                name = is_self_attr(node)
                if name is not None and isinstance(node.ctx, ast.Store):
                    covered.add(name)
        key_strings = string_constants(state_dict)
        if load is not None:
            key_strings |= string_constants(load)

        tuples = _field_tuples(module, cls)
        referenced = _references_any(state_dict, tuple(tuples))
        if load is not None:
            referenced |= _references_any(load, tuple(tuples))
        field_names: set[str] = set()
        for tuple_name in referenced:
            field_names |= tuples[tuple_name]

        for attr, node in sorted(_init_assignments(init).items()):
            stripped = attr.lstrip("_")
            if (
                attr in covered
                or attr in key_strings
                or stripped in key_strings
                or attr in field_names
                or stripped in field_names
            ):
                continue
            if module.is_derived_line(getattr(node, "lineno", -1)):
                continue
            findings.append(
                module.finding(
                    node,
                    RULE_ID,
                    f"{cls.name}.{attr} is assigned in __init__ but never "
                    "appears in state_dict/load_state_dict/STATE_FIELDS; "
                    "checkpoints would silently drop it (serialize it, or "
                    "mark the assignment '# repro: derived' if it is "
                    "rebuilt from other state)",
                )
            )
    return findings
