"""R003: backend kernel parity.

The kernel dispatch seam (:mod:`repro.core.backend`) promises that the
``numpy`` reference and the compiled ``numba`` backend are
interchangeable bit for bit. Statically that decomposes into:

- every name in ``KERNEL_NAMES`` has a reference implementation
  ``_np_<name>`` and an entry in the numpy builder's kernel dict;
- every name has a ``numba`` implementation (a function of the same
  name nested in ``build_kernels``) and an entry in its returned dict;
- the two implementations take identical positional parameters (same
  names, same order) -- a silently reordered argument is exactly the
  kind of bug that survives until a fingerprint diff;
- no module outside the seam imports a kernel directly (``_np_*`` or
  ``_backend_numba``): call sites must route through ``active()`` so
  the CLI/env backend selection actually governs every call.

The backend module is recognized structurally (it assigns
``KERNEL_NAMES``), the numba module by defining ``build_kernels`` --
so the rule works on fixture trees as well as the real package.
"""

from __future__ import annotations

import ast

from ..model import Finding, ParsedModule, Project
from . import rule
from .common import dotted_name

RULE_ID = "R003"


def _kernel_names(module: ParsedModule) -> tuple[ast.Assign, tuple[str, ...]] | None:
    """The module-level ``KERNEL_NAMES = (...)`` assignment, if any."""
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "KERNEL_NAMES":
                if isinstance(stmt.value, (ast.Tuple, ast.List)):
                    names = tuple(
                        elt.value
                        for elt in stmt.value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    )
                    return stmt, names
    return None


def _top_level_functions(tree: ast.AST) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _nested_functions(func: ast.FunctionDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in ast.walk(func)
        if isinstance(node, ast.FunctionDef) and node is not func
    }


def _dict_keys(node: ast.AST) -> set[str]:
    """String keys of every dict literal under ``node``."""
    keys: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def _positional_params(func: ast.FunctionDef) -> tuple[str, ...]:
    args = func.args
    return tuple(arg.arg for arg in (*args.posonlyargs, *args.args))


@rule(RULE_ID, "backend kernel parity (KERNEL_NAMES in both backends, via active())")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []

    backend_modules = [
        (module, located)
        for module in project.modules
        if (located := _kernel_names(module)) is not None
    ]
    numba_modules = [
        module
        for module in project.modules
        if "build_kernels" in _top_level_functions(module.tree)
    ]

    for module, (anchor, names) in backend_modules:
        top = _top_level_functions(module.tree)
        builder_keys: set[str] = set()
        for func in top.values():
            if func.name.startswith("_build") and func.name.endswith("backend"):
                builder_keys |= _dict_keys(func)
        for name in names:
            ref = top.get(f"_np_{name}")
            if ref is None:
                findings.append(
                    module.finding(
                        anchor,
                        RULE_ID,
                        f"kernel {name!r} is in KERNEL_NAMES but has no numpy "
                        f"reference implementation _np_{name}",
                    )
                )
            if builder_keys and name not in builder_keys:
                findings.append(
                    module.finding(
                        anchor,
                        RULE_ID,
                        f"kernel {name!r} is missing from the numpy backend "
                        "builder's kernel dict",
                    )
                )

        for numba_module in numba_modules:
            build = _top_level_functions(numba_module.tree)["build_kernels"]
            nested = _nested_functions(build)
            numba_keys = _dict_keys(build)
            for name in names:
                impl = nested.get(name)
                if impl is None:
                    findings.append(
                        numba_module.finding(
                            build,
                            RULE_ID,
                            f"kernel {name!r} is in KERNEL_NAMES but "
                            "build_kernels defines no implementation for it",
                        )
                    )
                    continue
                if name not in numba_keys:
                    findings.append(
                        numba_module.finding(
                            impl,
                            RULE_ID,
                            f"kernel {name!r} is defined but missing from "
                            "build_kernels' returned dict",
                        )
                    )
                ref = _top_level_functions(module.tree).get(f"_np_{name}")
                if ref is not None:
                    ref_params = _positional_params(ref)
                    impl_params = _positional_params(impl)
                    if ref_params != impl_params:
                        findings.append(
                            numba_module.finding(
                                impl,
                                RULE_ID,
                                f"kernel {name!r} signature diverges from the "
                                f"numpy reference: {impl_params} vs "
                                f"{ref_params} -- backends must share one "
                                "positional signature",
                            )
                        )

    # Call-site discipline: nobody outside the seam imports kernels.
    seam_basenames = {module.basename for module, _ in backend_modules}
    seam_basenames |= {module.basename for module in numba_modules}
    for module in project.modules:
        if module.basename in seam_basenames:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if target.endswith("_backend_numba"):
                    findings.append(
                        module.finding(
                            node,
                            RULE_ID,
                            "importing the numba kernel module directly "
                            "bypasses backend selection; call "
                            "core.backend.active().<kernel> instead",
                        )
                    )
                for alias in node.names:
                    if alias.name.startswith("_np_"):
                        findings.append(
                            module.finding(
                                node,
                                RULE_ID,
                                f"importing kernel {alias.name} directly pins "
                                "the numpy implementation; call "
                                "core.backend.active().<kernel> instead",
                            )
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("_backend_numba"):
                        findings.append(
                            module.finding(
                                node,
                                RULE_ID,
                                "importing the numba kernel module directly "
                                "bypasses backend selection; call "
                                "core.backend.active().<kernel> instead",
                            )
                        )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func) or ""
                if dotted.rsplit(".", 1)[-1].startswith("_np_"):
                    findings.append(
                        module.finding(
                            node,
                            RULE_ID,
                            f"calling {dotted} pins the numpy kernel; route "
                            "through core.backend.active() so --backend/"
                            "REPRO_BACKEND govern every call site",
                        )
                    )
    return findings
