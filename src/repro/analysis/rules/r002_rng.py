"""R002: RNG discipline.

Bit-exact reproducibility (fixed-seed golden fingerprints, bit-identical
checkpoint resume, shard-vs-sequential parity) requires that *every*
random draw in the package flows through a seeded, checkpointable
generator: :class:`repro.rng.RandomSource` or a ``numpy`` Generator
derived via ``np.random.default_rng``/``SeedSequence``. Three patterns
break that silently:

- stdlib ``random`` -- process-global state, invisible to checkpoints
  (the sanctioned wrapper lives in ``rng.py``, which is exempt: it
  *owns* the stdlib generator and exposes its state);
- legacy ``np.random.*`` module-level calls (``np.random.seed``,
  ``np.random.rand``, ...) -- the shared global ``RandomState``, which
  any import can perturb;
- time-seeded construction (``default_rng(time.time())``) -- different
  entropy every run, unreproducible by definition. ``seed=None``
  (explicit fresh OS entropy) stays legal; clock-derived seeds do not.
"""

from __future__ import annotations

import ast

from ..model import Finding, ParsedModule, Project
from . import rule
from .common import dotted_name

RULE_ID = "R002"

#: The module that wraps stdlib random; exempt by design.
_EXEMPT_BASENAMES = ("rng.py",)

#: np.random attributes that construct *seeded, local* generators --
#: everything else on the module is the legacy global-state surface.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Callables whose argument is a seed; feeding them the clock is banned.
_SEED_SINKS = frozenset({"default_rng", "SeedSequence", "RandomSource", "Random"})

#: Clock reads that make a seed unreproducible.
_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


def _legacy_random_attr(dotted: str | None) -> str | None:
    """The attribute accessed on ``np.random``/``numpy.random``, if any."""
    if dotted is None:
        return None
    for prefix in ("np.random.", "numpy.random."):
        if dotted.startswith(prefix):
            rest = dotted[len(prefix):]
            return rest.split(".", 1)[0]
    return None


def _check_module(module: ParsedModule) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(
                        module.finding(
                            node,
                            RULE_ID,
                            "stdlib random carries process-global state that "
                            "checkpoints cannot capture; use "
                            "repro.rng.RandomSource or np.random.default_rng",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                findings.append(
                    module.finding(
                        node,
                        RULE_ID,
                        "stdlib random carries process-global state that "
                        "checkpoints cannot capture; use "
                        "repro.rng.RandomSource or np.random.default_rng",
                    )
                )
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _ALLOWED_NP_RANDOM:
                        findings.append(
                            module.finding(
                                node,
                                RULE_ID,
                                f"numpy.random.{alias.name} uses the legacy "
                                "global RandomState; derive a local Generator "
                                "via np.random.default_rng/SeedSequence",
                            )
                        )
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            attr = _legacy_random_attr(dotted)
            if attr is not None and attr not in _ALLOWED_NP_RANDOM:
                findings.append(
                    module.finding(
                        node,
                        RULE_ID,
                        f"np.random.{attr}() draws from the legacy global "
                        "RandomState (unseeded, shared across the process); "
                        "use a Generator from np.random.default_rng",
                    )
                )
            name = (dotted or "").rsplit(".", 1)[-1]
            if name in _SEED_SINKS:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Call):
                            sub_dotted = dotted_name(sub.func)
                            if sub_dotted in _TIME_CALLS:
                                findings.append(
                                    module.finding(
                                        node,
                                        RULE_ID,
                                        f"{name}(...) seeded from the clock "
                                        f"({sub_dotted}) is unreproducible; "
                                        "thread an explicit seed (or None "
                                        "for documented fresh entropy)",
                                    )
                                )
    return findings


@rule(RULE_ID, "RNG discipline (no global/stdlib/time-seeded randomness)")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if module.basename in _EXEMPT_BASENAMES:
            continue
        findings.extend(_check_module(module))
    return findings
