"""R005: nondeterministic iteration.

``set`` iteration order depends on insertion history and hash
randomization; draining a set into anything *order-sensitive* -- a
sequence that feeds RNG draws, a state array, a wire format -- makes
two identically seeded runs diverge. (Commutative aggregations over
integer elements -- ``sum``/``len``/``any``/``all``/``min``/``max``,
membership tests, genexp reductions -- are order-free and stay legal;
``sorted(s)`` is the canonical fix and is recognized as such.)

Flagged shapes, using a local, per-scope type inference (a name counts
as a set when every assignment binding it in the scope is a set
literal, ``set()``/``frozenset()`` call, or set comprehension):

- sequence conversion: ``list(s)``, ``tuple(s)``, ``np.array(s)``,
  ``np.fromiter(s, ...)``, ``enumerate(s)`` of a set expression;
- a list comprehension iterating a set expression (it *is* a sequence
  conversion);
- a ``for`` loop over a set expression whose body does order-sensitive
  work: draws randomness, appends/extends a sequence, writes output,
  or yields.
"""

from __future__ import annotations

import ast

from ..model import Finding, ParsedModule, Project
from . import rule
from .common import DRAW_METHODS, body_walk, dotted_name, iter_functions


def _scope_walk(scope: ast.AST):
    """Walk one scope shallowly: nested defs are their own scopes."""
    return body_walk(list(getattr(scope, "body", [])), into_functions=False)

RULE_ID = "R005"

_CONVERTERS = frozenset(
    {"list", "tuple", "enumerate", "np.array", "numpy.array", "np.fromiter", "numpy.fromiter"}
)

#: Method calls inside a set-iterating loop body that make order matter.
_ORDER_SENSITIVE_METHODS = frozenset({"append", "extend", "write", "send", "put"}) | DRAW_METHODS


def _set_bound_names(scope: ast.AST) -> set[str]:
    """Names bound exclusively to set-typed values within ``scope``."""
    set_names: set[str] = set()
    poisoned: set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            if not targets:
                continue
            is_set = _is_set_expr(node.value, set_names=set())
            for target in targets:
                if is_set:
                    set_names.add(target.id)
                else:
                    poisoned.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None and _is_set_expr(node.value, set_names=set()):
                set_names.add(node.target.id)
            else:
                poisoned.add(node.target.id)
    return set_names - poisoned


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    """Whether ``node`` is statically known to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


def _order_sensitive_body(body: list[ast.stmt]) -> ast.AST | None:
    """The first order-sensitive operation in a loop body, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SENSITIVE_METHODS
            ):
                return node
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
    return None


def _check_scope(module: ParsedModule, scope: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    set_names = _set_bound_names(scope)

    for node in _scope_walk(scope):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in _CONVERTERS and node.args:
                if _is_set_expr(node.args[0], set_names):
                    findings.append(
                        module.finding(
                            node,
                            RULE_ID,
                            f"{dotted}() over a set materializes an "
                            "arbitrary element order; sort first "
                            "(sorted(...)) so downstream state/RNG/wire "
                            "bytes are deterministic",
                        )
                    )
        elif isinstance(node, ast.ListComp):
            first = node.generators[0]
            if _is_set_expr(first.iter, set_names):
                findings.append(
                    module.finding(
                        node,
                        RULE_ID,
                        "list comprehension over a set materializes an "
                        "arbitrary element order; iterate sorted(...) "
                        "instead",
                    )
                )
        elif isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_names):
                sink = _order_sensitive_body(node.body)
                if sink is not None:
                    findings.append(
                        module.finding(
                            node,
                            RULE_ID,
                            "iterating a bare set feeds an order-sensitive "
                            "sink (append/write/RNG draw/yield) in "
                            "arbitrary order; iterate sorted(...) instead",
                        )
                    )
    return findings


@rule(RULE_ID, "nondeterministic iteration (sets drained into ordered sinks)")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        findings.extend(_check_scope(module, module.tree))
        for func, _cls in iter_functions(module.tree):
            findings.extend(_check_scope(module, func))
    return findings
