"""AST helpers shared by the rule plugins."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "DRAW_METHODS",
    "body_walk",
    "class_methods",
    "dotted_name",
    "is_self_attr",
    "iter_functions",
    "self_attr_reads",
    "self_attr_writes",
    "string_constants",
]

#: Method names that consume randomness when called on a generator (or
#: on an estimator that forwards to one). Shared by R005 (draws inside
#: set iteration) and R006 (draws inside live reporters).
DRAW_METHODS = frozenset(
    {
        "coin",
        "rand_int",
        "randint",
        "random",
        "integers",
        "choice",
        "shuffle",
        "sample",
        "sample_one",
        "sample_indices",
        "geometric_skip",
        "normal",
        "uniform",
        "standard_normal",
        "getrandbits",
        "spawn",
    }
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST) -> str | None:
    """The attribute name when ``node`` is ``self.<name>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def body_walk(body: list[ast.stmt], *, into_functions: bool = True) -> Iterator[ast.AST]:
    """Walk statements; optionally stop at nested function/class scopes."""
    for stmt in body:
        if into_functions:
            yield from ast.walk(stmt)
        else:
            yield from _shallow_walk(stmt)


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class bodies."""
    yield node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    for child in ast.iter_child_nodes(node):
        yield from _shallow_walk(child)


def iter_functions(tree: ast.AST) -> Iterator[tuple[ast.FunctionDef, ast.ClassDef | None]]:
    """Every function definition paired with its enclosing class (or None)."""

    def _visit(node: ast.AST, cls: ast.ClassDef | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from _visit(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from _visit(child, child)
            else:
                yield from _visit(child, cls)

    yield from _visit(tree, None)


def class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """The class's directly defined methods by name."""
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def string_constants(node: ast.AST) -> set[str]:
    """Every string literal appearing anywhere under ``node``."""
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def self_attr_reads(node: ast.AST) -> set[str]:
    """Names of ``self.<attr>`` reads under ``node``."""
    reads: set[str] = set()
    for child in ast.walk(node):
        name = is_self_attr(child)
        if name is not None and isinstance(child.ctx, ast.Load):
            reads.add(name)
    return reads


def self_attr_writes(node: ast.AST) -> set[str]:
    """Names of ``self.<attr>`` assignment targets under ``node``."""
    writes: set[str] = set()
    for child in ast.walk(node):
        name = is_self_attr(child)
        if name is not None and isinstance(child.ctx, (ast.Store, ast.Del)):
            writes.add(name)
    return writes
