"""Rule-plugin registry: each rule is a function over the shared parse.

A rule module defines one check function and registers it:

    @rule("R00x", "one-line title")
    def check(project: Project) -> list[Finding]:
        ...

Adding a rule is: create ``r0xx_name.py`` beside the existing ones,
register with the next free id, import it below, and give it fixture
coverage in ``tests/test_analysis.py`` (at least two seeded violations
plus a clean counterpart). The runner handles selection, suppression,
and output; rules only emit findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..model import Finding, Project

__all__ = ["RULES", "Rule", "rule"]


@dataclass(frozen=True)
class Rule:
    """One registered check: an id, a human title, and the callable."""

    id: str
    title: str
    check: Callable[[Project], List[Finding]]


RULES: dict[str, Rule] = {}


def rule(rule_id: str, title: str) -> Callable:
    """Register the decorated ``check(project)`` under ``rule_id``."""

    def _register(check: Callable[[Project], List[Finding]]) -> Callable:
        if rule_id in RULES and RULES[rule_id].check is not check:
            raise ValueError(f"rule {rule_id} is already registered")
        RULES[rule_id] = Rule(rule_id, title, check)
        return check

    return _register


# Importing the rule modules populates RULES (same self-registration
# idiom as the engine/estimator registries in repro.streaming.registry).
from . import (  # noqa: E402  (imports must follow the decorator definition)
    r001_checkpoint,
    r002_rng,
    r003_backend,
    r004_lifecycle,
    r005_iteration,
    r006_registry,
)

del (
    r001_checkpoint,
    r002_rng,
    r003_backend,
    r004_lifecycle,
    r005_iteration,
    r006_registry,
)
