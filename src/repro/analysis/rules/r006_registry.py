"""R006: registry/protocol conformance.

``@register_estimator`` factories are the package's plugin surface:
whatever a factory returns is driven blind by the pipeline, the CLI,
the checkpoint machinery, and the live snapshot loop. Three contracts
are statically checkable:

- the returned class satisfies the
  :class:`~repro.streaming.protocol.StreamingEstimator` surface --
  ``update_batch`` and ``estimate`` exist (directly or inherited from a
  class visible to the analyzer);
- ``supports_deletions``, where present, is a ``True``/``False`` class
  attribute -- the capability gate reads it with ``getattr`` *before*
  streaming, so an instance attribute (or a truthy non-bool) would make
  deletion-gating depend on construction order;
- the spec's *live* reporter (``live=`` of ``@reports``, else the final
  reporter that then serves both roles) never consumes randomness:
  :meth:`Pipeline.snapshots` calls it mid-stream, and a draw would make
  an observed stream diverge from an unobserved one.
"""

from __future__ import annotations

import ast

from ..model import Finding, ParsedModule, Project
from . import rule
from .common import DRAW_METHODS, class_methods, dotted_name, is_self_attr

RULE_ID = "R006"

_REQUIRED_METHODS = ("update_batch", "estimate")


def _decorator_call(node: ast.AST, name: str) -> ast.Call | None:
    if (
        isinstance(node, ast.Call)
        and (dotted_name(node.func) or "").rsplit(".", 1)[-1] == name
    ):
        return node
    return None


def _class_index(project: Project) -> dict[str, tuple[ParsedModule, ast.ClassDef]]:
    index: dict[str, tuple[ParsedModule, ast.ClassDef]] = {}
    for module, cls in project.classes():
        index.setdefault(cls.name, (module, cls))
    return index


def _all_methods(
    cls: ast.ClassDef,
    index: dict[str, tuple[ParsedModule, ast.ClassDef]],
    seen: set[str] | None = None,
) -> set[str]:
    """Method names of ``cls`` including analyzer-visible base classes."""
    seen = seen or set()
    if cls.name in seen:
        return set()
    seen.add(cls.name)
    names = set(class_methods(cls))
    for base in cls.bases:
        base_name = (dotted_name(base) or "").rsplit(".", 1)[-1]
        entry = index.get(base_name)
        if entry is not None:
            names |= _all_methods(entry[1], index, seen)
        elif base_name in ("Protocol", "object", "Generic", "ABC"):
            continue
        else:
            # Unknown base (external/stdlib): assume it may provide
            # anything -- conformance cannot be decided statically.
            names.add("*")
    return names


def _returned_classes(factory: ast.FunctionDef) -> list[tuple[str, ast.AST]]:
    """Class names the factory's return expressions instantiate."""
    returned: list[tuple[str, ast.AST]] = []
    for node in ast.walk(factory):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            name = (dotted_name(node.value.func) or "").rsplit(".", 1)[-1]
            if name and name[0].isupper():
                returned.append((name, node))
    return returned


def _reports_functions(factory: ast.FunctionDef) -> tuple[str | None, str | None]:
    """``(final_reporter, live_reporter)`` names from ``@reports``."""
    for decorator in factory.decorator_list:
        call = _decorator_call(decorator, "reports")
        if call is None:
            continue
        final = None
        live = None
        if call.args and isinstance(call.args[0], ast.Name):
            final = call.args[0].id
        for kw in call.keywords:
            if kw.arg == "live" and isinstance(kw.value, ast.Name):
                live = kw.value.id
        return final, live
    return None, None


def _module_functions(module: ParsedModule) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in module.tree.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _draw_call(func: ast.FunctionDef) -> ast.Call | None:
    """The first randomness-consuming method call in ``func``, if any."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DRAW_METHODS
        ):
            return node
    return None


@rule(RULE_ID, "registry/protocol conformance (estimator surface, capabilities)")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    index = _class_index(project)

    # supports_deletions: bool class attribute wherever it appears.
    for module, cls in project.classes():
        for stmt in cls.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                value = stmt.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == "supports_deletions"):
                continue
            if not (
                isinstance(value, ast.Constant) and isinstance(value.value, bool)
            ):
                findings.append(
                    module.finding(
                        stmt,
                        RULE_ID,
                        f"{cls.name}.supports_deletions must be a literal "
                        "True/False class attribute; the capability gate "
                        "reads it before any instance state exists",
                    )
                )
        for method in class_methods(cls).values():
            for node in ast.walk(method):
                if (
                    is_self_attr(node) == "supports_deletions"
                    and isinstance(node.ctx, ast.Store)
                ):
                    findings.append(
                        module.finding(
                            node,
                            RULE_ID,
                            f"{cls.name} sets supports_deletions on the "
                            "instance; declare it as a class attribute so "
                            "capability gating cannot depend on "
                            "construction order",
                        )
                    )

    # Registered factories: protocol surface + live-reporter purity.
    for module in project.modules:
        functions = _module_functions(module)
        for factory in functions.values():
            registered = any(
                _decorator_call(d, "register_estimator") is not None
                for d in factory.decorator_list
            )
            if not registered:
                continue

            for class_name, anchor in _returned_classes(factory):
                entry = index.get(class_name)
                if entry is None:
                    continue  # defined outside the analyzed set
                cls_module, cls = entry
                methods = _all_methods(cls, index)
                if "*" in methods:
                    continue
                for required in _REQUIRED_METHODS:
                    if required not in methods:
                        findings.append(
                            module.finding(
                                anchor,
                                RULE_ID,
                                f"registered factory {factory.name} returns "
                                f"{class_name}, which lacks the "
                                f"StreamingEstimator method {required}() "
                                f"(declared in {cls_module.path}:"
                                f"{cls.lineno})",
                            )
                        )

            final_name, live_name = _reports_functions(factory)
            effective = live_name or final_name
            if effective is not None:
                reporter = functions.get(effective)
                if reporter is not None:
                    draw = _draw_call(reporter)
                    if draw is not None:
                        attr = draw.func.attr  # type: ignore[union-attr]
                        role = (
                            "live reporter"
                            if live_name is not None
                            else "reporter (serving live snapshots too)"
                        )
                        findings.append(
                            module.finding(
                                draw,
                                RULE_ID,
                                f"{role} {effective} calls .{attr}(), which "
                                "consumes randomness; live reports must be "
                                "pure queries (attach a separate draw-free "
                                "live= reporter)",
                            )
                        )
    return findings
