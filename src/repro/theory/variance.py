"""Exact variance of the neighborhood-sampling estimator.

Theorem 3.4's proof bounds the estimator's variance by
``m * sum_t C(t) = m * tau * gamma``. The exact second moment is

    E[tau~^2] = sum_t (m C(t))^2 * Pr[t held]
              = sum_t (m C(t))^2 / (m C(t))
              = m * sum_t C(t)  =  m * tau * gamma,

so ``Var[tau~] = m * tau * gamma - tau^2`` *exactly* (not just an upper
bound) -- the tangle coefficient is the whole story of the estimator's
spread. These helpers compute the exact values from a stream, predict
the mean-of-r estimator's standard deviation, and turn that into an
expected mean-deviation figure comparable to the experiment tables.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError
from ..exact.tangle import neighborhood_sizes, triangle_first_edge_counts
from ..graph.stream import EdgeStream

__all__ = [
    "estimator_moments",
    "estimator_variance",
    "predicted_std_of_mean",
    "predicted_mean_deviation_pct",
]


def estimator_moments(stream: EdgeStream) -> tuple[float, float]:
    """Exact (E[tau~], E[tau~^2]) of one estimator on this stream order."""
    sizes = neighborhood_sizes(stream)
    s_counts = triangle_first_edge_counts(stream)
    m = len(stream)
    mean = float(sum(s_counts.values()))  # = tau
    second = float(m) * sum(sizes[e] * s for e, s in s_counts.items())
    return mean, second


def estimator_variance(stream: EdgeStream) -> float:
    """Exact ``Var[tau~] = m * tau * gamma - tau^2`` for this stream order."""
    mean, second = estimator_moments(stream)
    return second - mean * mean


def predicted_std_of_mean(stream: EdgeStream, r: int) -> float:
    """Standard deviation of the average of ``r`` independent estimators."""
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    return math.sqrt(estimator_variance(stream) / r)


def predicted_mean_deviation_pct(stream: EdgeStream, r: int) -> float:
    """Expected mean deviation (percent) of the r-estimator average.

    For a (near-)normal average, E|X - mu| = sigma * sqrt(2/pi); divided
    by tau and scaled to percent this is directly comparable to the MD
    columns of Tables 1-3.
    """
    mean, _ = estimator_moments(stream)
    if mean == 0:
        raise InvalidParameterError("stream has no triangles; deviation undefined")
    sigma = predicted_std_of_mean(stream, r)
    return sigma * math.sqrt(2.0 / math.pi) / mean * 100.0
