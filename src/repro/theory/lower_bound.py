"""The Omega(n) lower bound via the Index problem (Theorem 3.13).

The paper separates the adjacency-stream model from the incidence-stream
model with a reduction from one-way communication complexity: Alice
holds a bit vector ``x in {0,1}^n``; Bob holds an index ``k`` and must
output ``x_k`` after receiving a single message from Alice. Any protocol
needs Omega(n) bits.

The reduction builds a graph ``G*`` on vertex groups
``{a_i}, {b_i}, {c_i}`` (``i = 0..n``):

- Alice streams a fixed triangle ``(a_0, b_0, c_0)`` plus the edge
  ``(a_i, b_i)`` for every ``i`` with ``x_i = 1``, then sends the
  *state of the streaming algorithm* as her message;
- Bob resumes the algorithm, streams ``(b_k, c_k)`` and ``(c_k, a_k)``,
  and queries the triangle count: 2 triangles means ``x_k = 1``,
  1 triangle means ``x_k = 0``. Any estimate with relative error < 1/2
  distinguishes the two.

Because ``G*`` has no vertex triple with exactly two edges
(``T_2(G*) = 0``), an algorithm using ``O(1 + T_2/tau)`` space (possible
for *incidence* streams) would solve Index with O(1) communication --
contradiction.

:func:`run_index_protocol` executes this end to end against any counter
with the ``update`` / ``estimate`` API, so the reduction is a runnable
artifact rather than prose: with the exact counter it decodes every bit
(and its state provably grows with ``n``); a sublinear approximate
counter fails the < 1/2 error requirement on these adversarial graphs,
which is exactly the theorem's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge

__all__ = [
    "IndexProtocol",
    "alice_graph_edges",
    "bob_query_edges",
    "run_index_protocol",
]


class _Counter(Protocol):  # pragma: no cover - typing helper
    def update(self, edge: tuple[int, int]) -> None: ...
    def estimate(self) -> float: ...


def _vertex_a(i: int) -> int:
    return 3 * i


def _vertex_b(i: int) -> int:
    return 3 * i + 1


def _vertex_c(i: int) -> int:
    return 3 * i + 2


def alice_graph_edges(bits: Sequence[int]) -> list[Edge]:
    """Alice's stream: the anchor triangle plus one edge per set bit.

    Bit ``i`` (1-based position ``i`` in the paper; 0-based here) maps
    to the edge ``(a_{i+1}, b_{i+1})``; group 0 hosts the fixed triangle.
    """
    edges: list[Edge] = [
        (_vertex_a(0), _vertex_b(0)),
        (_vertex_b(0), _vertex_c(0)),
        (_vertex_a(0), _vertex_c(0)),
    ]
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise InvalidParameterError(f"bits must be 0/1, got {bit!r} at {i}")
        if bit:
            edges.append((_vertex_a(i + 1), _vertex_b(i + 1)))
    return edges


def bob_query_edges(k: int) -> list[Edge]:
    """Bob's two edges for (0-based) index ``k``: they complete the
    triangle ``(a_{k+1}, b_{k+1}, c_{k+1})`` iff Alice placed
    ``(a_{k+1}, b_{k+1})``."""
    if k < 0:
        raise InvalidParameterError(f"index must be non-negative, got {k}")
    group = k + 1
    return [
        (_vertex_b(group), _vertex_c(group)),
        (_vertex_c(group), _vertex_a(group)),
    ]


@dataclass(frozen=True)
class IndexProtocol:
    """Outcome of one Alice -> Bob execution."""

    k: int
    true_bit: int
    decoded_bit: int
    estimate: float

    @property
    def correct(self) -> bool:
        return self.true_bit == self.decoded_bit


def run_index_protocol(
    bits: Sequence[int],
    k: int,
    counter_factory: Callable[[], _Counter],
) -> IndexProtocol:
    """Execute the Theorem 3.13 reduction for one queried index.

    The ``counter_factory`` builds the streaming algorithm whose state
    is "sent" from Alice to Bob (in-process, the object simply persists).
    Decoding: estimates above 1.5 triangles mean ``x_k = 1``; with
    relative error below 1/2 this threshold always separates the
    2-triangle and 1-triangle cases.
    """
    if not 0 <= k < len(bits):
        raise InvalidParameterError(f"index {k} out of range for {len(bits)} bits")
    counter = counter_factory()
    for edge in alice_graph_edges(bits):
        counter.update(edge)
    # --- the algorithm state crosses from Alice to Bob here ---
    for edge in bob_query_edges(k):
        counter.update(edge)
    estimate = counter.estimate()
    decoded = 1 if estimate > 1.5 else 0
    return IndexProtocol(
        k=k, true_bit=int(bits[k]), decoded_bit=decoded, estimate=estimate
    )
