"""Space-bound catalogue for triangle counting algorithms (Section 1.2).

Each entry evaluates the number of estimators (space units) an
algorithm's analysis requires for an (eps, delta)-approximate triangle
count on a graph with the given parameters. These are the asymptotic
expressions of the paper's related-work discussion with their leading
constants dropped (set to 1), so the table is meant for *relative*
comparison -- which algorithm's requirement explodes on which graph --
not absolute sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.accuracy import s_eps_delta
from ..errors import InvalidParameterError

__all__ = ["GraphParameters", "space_bound", "space_bound_table", "ALGORITHMS"]


@dataclass(frozen=True)
class GraphParameters:
    """The graph/stream parameters the bounds depend on."""

    n: int
    m: int
    max_degree: int
    triangles: int
    tangle: float | None = None  # gamma(G), stream-order dependent
    sigma: int | None = None  # max triangles sharing one edge (for PT)

    def validate(self) -> None:
        if min(self.n, self.m, self.max_degree, self.triangles) <= 0:
            raise InvalidParameterError(
                "n, m, max_degree, triangles must all be positive"
            )


def _ours(p: GraphParameters, s: float) -> float:
    return s * p.m * p.max_degree / p.triangles


def _ours_tangle(p: GraphParameters, s: float) -> float:
    gamma = p.tangle if p.tangle is not None else 2.0 * p.max_degree
    return s * p.m * gamma / p.triangles


def _jowhari_ghodsi(p: GraphParameters, s: float) -> float:
    return s * p.m * p.max_degree**2 / p.triangles


def _buriol(p: GraphParameters, s: float) -> float:
    return s * p.m * p.n / p.triangles


def _pagh_tsourakakis(p: GraphParameters, s: float) -> float:
    sigma = p.sigma if p.sigma is not None else p.max_degree
    return s * p.m * sigma / p.triangles


def _manjunath(p: GraphParameters, s: float) -> float:
    return s * p.m**3 / p.triangles**2


def _bar_yossef(p: GraphParameters, s: float) -> float:
    return s * (p.m * p.n / p.triangles) ** 3


def _kane_l3(p: GraphParameters, s: float) -> float:
    # Kane et al. for H = K_3: m^(3 choose 2) / tau^2 = m^3 / tau^2.
    return s * p.m**3 / p.triangles**2


ALGORITHMS = {
    "neighborhood-sampling (Thm 3.3)": _ours,
    "neighborhood-sampling, tangle (Thm 3.4)": _ours_tangle,
    "jowhari-ghodsi": _jowhari_ghodsi,
    "buriol-et-al": _buriol,
    "pagh-tsourakakis": _pagh_tsourakakis,
    "manjunath-et-al": _manjunath,
    "kane-et-al (K3)": _kane_l3,
    "bar-yossef-et-al": _bar_yossef,
}


def space_bound(
    algorithm: str, params: GraphParameters, *, eps: float = 0.1, delta: float = 0.1
) -> float:
    """Evaluate one algorithm's estimator requirement on ``params``."""
    params.validate()
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; available: {known}"
        ) from None
    return fn(params, s_eps_delta(eps, delta))


def space_bound_table(
    params: GraphParameters, *, eps: float = 0.1, delta: float = 0.1
) -> dict[str, float]:
    """All algorithms' requirements on one graph, for side-by-side display."""
    params.validate()
    s = s_eps_delta(eps, delta)
    return {name: fn(params, s) for name, fn in ALGORITHMS.items()}
