"""Theory artifacts: the lower bound of Theorem 3.13 and the space-bound
catalogue used for the prior-work comparison of Section 1.2."""

from .bounds import space_bound, space_bound_table
from .lower_bound import (
    IndexProtocol,
    alice_graph_edges,
    bob_query_edges,
    run_index_protocol,
)

__all__ = [
    "IndexProtocol",
    "alice_graph_edges",
    "bob_query_edges",
    "run_index_protocol",
    "space_bound",
    "space_bound_table",
]
