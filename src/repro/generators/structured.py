"""Deterministic structured graphs and exact experiment recipes.

Includes the exact reconstruction of the paper's "Syn 3-reg" dataset
(Section 4.2): a 3-regular graph on ``n = 2000`` nodes with ``m = 3000``
edges and exactly ``tau = 1000`` triangles. A disjoint union of
``n/8`` triangular prisms (each 3-regular with 2 triangles) and ``n/16``
copies of ``K4`` (each 3-regular with 4 triangles) has

    vertices:  6*(n/8) + 4*(n/16) = n
    triangles: 2*(n/8) + 4*(n/16) = n/2

matching the paper's figures exactly for ``n = 2000``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge
from ..rng import RandomSource

__all__ = [
    "complete_graph",
    "cycle_graph",
    "disjoint_union",
    "k33_component",
    "k4_component",
    "path_graph",
    "planted_clique",
    "relabel_shuffled",
    "star_graph",
    "three_regular_triangle_graph",
    "triangular_prism",
]


def complete_graph(n: int, *, offset: int = 0) -> list[Edge]:
    """Edges of ``K_n`` on vertices ``offset .. offset+n-1``."""
    if n < 0:
        raise InvalidParameterError(f"n must be non-negative, got {n}")
    return [
        (offset + i, offset + j) for i in range(n) for j in range(i + 1, n)
    ]


def path_graph(n: int, *, offset: int = 0) -> list[Edge]:
    """Edges of the path ``P_n``."""
    return [(offset + i, offset + i + 1) for i in range(n - 1)]


def cycle_graph(n: int, *, offset: int = 0) -> list[Edge]:
    """Edges of the cycle ``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise InvalidParameterError(f"cycle needs n >= 3, got {n}")
    edges = path_graph(n, offset=offset)
    edges.append(canonical_edge(offset, offset + n - 1))
    return edges


def star_graph(n_leaves: int, *, offset: int = 0) -> list[Edge]:
    """Edges of a star: center ``offset`` joined to ``n_leaves`` leaves."""
    return [(offset, offset + i) for i in range(1, n_leaves + 1)]


def triangular_prism(*, offset: int = 0) -> list[Edge]:
    """The triangular prism ``K3 x K2``: 6 vertices, 9 edges, 3-regular,
    exactly 2 triangles."""
    a, b, c, d, e, f = range(offset, offset + 6)
    return [
        (a, b), (b, c), (a, c),  # top triangle
        (d, e), (e, f), (d, f),  # bottom triangle
        (a, d), (b, e), (c, f),  # vertical struts
    ]


def k4_component(*, offset: int = 0) -> list[Edge]:
    """``K4``: 4 vertices, 6 edges, 3-regular, exactly 4 triangles."""
    return complete_graph(4, offset=offset)


def k33_component(*, offset: int = 0) -> list[Edge]:
    """``K_{3,3}``: 6 vertices, 9 edges, 3-regular, triangle-free."""
    left = range(offset, offset + 3)
    right = range(offset + 3, offset + 6)
    return [(u, v) for u in left for v in right]


def disjoint_union(*components: Sequence[Edge]) -> list[Edge]:
    """Concatenate edge lists of vertex-disjoint components.

    The caller is responsible for using distinct vertex ids per
    component (the ``offset`` arguments of the builders above).
    """
    edges: list[Edge] = []
    for comp in components:
        edges.extend(comp)
    return edges


def relabel_shuffled(edges: Sequence[Edge], seed: int | None = None) -> list[Edge]:
    """Apply a random permutation to the vertex ids of ``edges``.

    Destroys any correlation between vertex ids and structure, so
    stream orders derived from ids look adversarially scrambled.
    """
    verts = sorted({u for e in edges for u in e})
    shuffled = list(verts)
    RandomSource(seed).shuffle(shuffled)
    mapping = dict(zip(verts, shuffled))
    return [canonical_edge(mapping[u], mapping[v]) for u, v in edges]


def three_regular_triangle_graph(n: int = 2000, *, seed: int | None = None) -> list[Edge]:
    """The paper's Syn-3-reg graph: 3-regular, ``n/2`` triangles.

    ``n`` must be divisible by 16. For ``n = 2000`` this reproduces the
    dataset of Table 1 exactly: 2000 nodes, 3000 edges, max degree 3,
    1000 triangles. Vertex ids are shuffled under ``seed``.
    """
    if n <= 0 or n % 16 != 0:
        raise InvalidParameterError(f"n must be a positive multiple of 16, got {n}")
    num_prisms = n // 8
    num_k4 = n // 16
    components: list[list[Edge]] = []
    offset = 0
    for _ in range(num_prisms):
        components.append(triangular_prism(offset=offset))
        offset += 6
    for _ in range(num_k4):
        components.append(k4_component(offset=offset))
        offset += 4
    return relabel_shuffled(disjoint_union(*components), seed=seed)


def planted_clique(
    n: int,
    clique_size: int,
    background_edges: int,
    *,
    seed: int | None = None,
) -> list[Edge]:
    """A ``K_{clique_size}`` planted inside an Erdos-Renyi background.

    Useful for clique-counting tests: the planted clique dominates the
    ``K_l`` counts for ``l`` close to ``clique_size``.
    """
    if clique_size > n:
        raise InvalidParameterError(f"clique size {clique_size} exceeds n={n}")
    rng = RandomSource(seed)
    members = rng.sample_indices(n, clique_size)
    edges: set[Edge] = set()
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            edges.add(canonical_edge(u, v))
    attempts = 0
    max_attempts = 50 * max(background_edges, 1)
    while len(edges) < background_edges + clique_size * (clique_size - 1) // 2:
        attempts += 1
        if attempts > max_attempts:
            break
        u = rng.rand_int(0, n - 1)
        v = rng.rand_int(0, n - 1)
        if u != v:
            edges.add(canonical_edge(u, v))
    result = sorted(edges)
    rng.shuffle(result)
    return result
