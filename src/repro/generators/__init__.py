"""Synthetic graph generators.

The paper evaluates on SNAP social-network graphs plus synthetic regular
graphs. Offline, we regenerate comparable workloads:

- :mod:`repro.generators.random_graphs` -- Erdos-Renyi, power-law
  configuration model, Barabasi-Albert, Holme-Kim (power-law with
  clustering), near-regular graphs, and clique-union graphs;
- :mod:`repro.generators.structured` -- exact small structures and the
  paper's Syn-3-reg recipe (3-regular, tau = n/2);
- :mod:`repro.generators.datasets` -- the named stand-ins for every
  dataset of Figure 3 and Section 4.2, with disk caching of edges and
  ground-truth statistics.
"""

from .random_graphs import (
    barabasi_albert,
    clique_union_regular,
    collaboration_graph,
    configuration_power_law,
    erdos_renyi,
    holme_kim,
    hub_power_law,
    near_regular,
)
from .structured import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    k33_component,
    k4_component,
    path_graph,
    planted_clique,
    relabel_shuffled,
    star_graph,
    three_regular_triangle_graph,
    triangular_prism,
)

__all__ = [
    "barabasi_albert",
    "clique_union_regular",
    "collaboration_graph",
    "complete_graph",
    "configuration_power_law",
    "cycle_graph",
    "disjoint_union",
    "erdos_renyi",
    "holme_kim",
    "hub_power_law",
    "k33_component",
    "k4_component",
    "near_regular",
    "path_graph",
    "planted_clique",
    "relabel_shuffled",
    "star_graph",
    "three_regular_triangle_graph",
    "triangular_prism",
]
