"""Random graph models.

These regenerate the qualitative families of the paper's evaluation:

- :func:`configuration_power_law` -- heavy-tailed degrees with low
  clustering (Youtube/Orkut-like profiles: large ``m * Delta / tau``);
- :func:`holme_kim` -- power-law degrees *with* triangles
  (collaboration-network profiles such as DBLP and Hep-Th: small
  ``m * Delta / tau``);
- :func:`barabasi_albert` -- plain preferential attachment;
- :func:`near_regular` -- degrees confined to a narrow band, like the
  paper's "Synthetic ~d-regular" graph;
- :func:`clique_union_regular` -- near-regular *and* triangle-dense, the
  profile the paper's Syn-d-regular dataset occupies in Figure 3;
- :func:`erdos_renyi` -- the classic G(n, m) baseline.

All generators return a plain edge list (canonical tuples) in a
deterministic order under a fixed ``seed``; callers shuffle stream
orders separately via :meth:`repro.graph.EdgeStream.shuffled`.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge
from ..rng import RandomSource

__all__ = [
    "barabasi_albert",
    "clique_union_regular",
    "collaboration_graph",
    "configuration_power_law",
    "erdos_renyi",
    "holme_kim",
    "hub_power_law",
    "near_regular",
]


def erdos_renyi(n: int, num_edges: int, *, seed: int | None = None) -> list[Edge]:
    """``G(n, m)``: ``num_edges`` distinct edges uniform over all pairs.

    Rejection sampling; requires ``num_edges`` at most the number of
    possible pairs.
    """
    possible = n * (n - 1) // 2
    if num_edges > possible:
        raise InvalidParameterError(f"cannot place {num_edges} edges on {n} vertices")
    rng = RandomSource(seed)
    edges: set[Edge] = set()
    while len(edges) < num_edges:
        u = rng.rand_int(0, n - 1)
        v = rng.rand_int(0, n - 1)
        if u != v:
            edges.add(canonical_edge(u, v))
    result = sorted(edges)
    rng.shuffle(result)
    return result


def _power_law_degrees(
    n: int, alpha: float, d_min: int, d_max: int, rng: RandomSource
) -> list[int]:
    """Draw ``n`` degrees from a discrete power law via inverse transform.

    ``P(d) ~ d^-alpha`` on ``[d_min, d_max]``; the continuous inverse CDF
    is floored, giving the familiar heavy tail with a hard cap that
    controls ``Delta``.
    """
    if alpha <= 1.0:
        raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")
    if not 1 <= d_min <= d_max:
        raise InvalidParameterError(f"need 1 <= d_min <= d_max, got ({d_min}, {d_max})")
    degrees = []
    a = 1.0 - alpha
    lo = d_min**a
    hi = (d_max + 1) ** a
    for _ in range(n):
        u = rng.random()
        x = (lo + u * (hi - lo)) ** (1.0 / a)
        degrees.append(min(d_max, max(d_min, int(x))))
    return degrees


def configuration_power_law(
    n: int,
    *,
    alpha: float = 2.2,
    d_min: int = 1,
    d_max: int = 1000,
    seed: int | None = None,
) -> list[Edge]:
    """Simple graph from the configuration model with power-law degrees.

    Stubs are paired uniformly at random; self-loops and duplicate edges
    are discarded (the standard "erased" configuration model), so actual
    degrees can fall slightly below their targets at heavy-tail nodes.
    """
    rng = RandomSource(seed)
    degrees = _power_law_degrees(n, alpha, d_min, min(d_max, n - 1), rng)
    stubs: list[int] = []
    for v, d in enumerate(degrees):
        stubs.extend([v] * d)
    if len(stubs) % 2 == 1:
        stubs.pop()
    rng.shuffle(stubs)
    edges: set[Edge] = set()
    for i in range(0, len(stubs), 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.add(canonical_edge(u, v))
    result = sorted(edges)
    rng.shuffle(result)
    return result


def barabasi_albert(n: int, m_attach: int, *, seed: int | None = None) -> list[Edge]:
    """Preferential attachment: each new vertex links to ``m_attach``
    existing vertices chosen proportional to degree.

    Implemented with the repeated-nodes list, giving O(m) time.
    """
    if m_attach < 1 or m_attach >= n:
        raise InvalidParameterError(f"need 1 <= m_attach < n, got ({m_attach}, {n})")
    rng = RandomSource(seed)
    edges: list[Edge] = []
    # Target pool: vertex v appears once per incident edge (degree-proportional).
    repeated: list[int] = list(range(m_attach))
    for v in range(m_attach, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            if repeated:
                candidate = repeated[rng.rand_int(0, len(repeated) - 1)]
            else:
                candidate = rng.rand_int(0, v - 1)
            if candidate != v:
                targets.add(candidate)
        # sorted(): the set's arbitrary order would leak into `repeated`
        # and change every later degree-proportional draw.
        for t in sorted(targets):
            edges.append(canonical_edge(v, t))
            repeated.append(v)
            repeated.append(t)
    return edges


def holme_kim(
    n: int,
    m_attach: int,
    triad_prob: float,
    *,
    seed: int | None = None,
) -> list[Edge]:
    """Holme-Kim power-law cluster model: BA plus triad formation.

    After each preferential-attachment link ``v -> w``, with probability
    ``triad_prob`` the next link goes to a random neighbor of ``w``
    (closing a triangle) instead of a fresh preferential target. Yields
    power-law degrees with tunable, high clustering -- the profile of
    collaboration networks such as DBLP and Hep-Th.
    """
    if not 0.0 <= triad_prob <= 1.0:
        raise InvalidParameterError(f"triad_prob must be in [0, 1], got {triad_prob}")
    if m_attach < 1 or m_attach >= n:
        raise InvalidParameterError(f"need 1 <= m_attach < n, got ({m_attach}, {n})")
    rng = RandomSource(seed)
    adj: dict[int, list[int]] = {v: [] for v in range(n)}
    edges: list[Edge] = []
    repeated: list[int] = list(range(m_attach))

    def link(v: int, w: int) -> bool:
        if v == w or w in adj[v]:
            return False
        adj[v].append(w)
        adj[w].append(v)
        edges.append(canonical_edge(v, w))
        repeated.append(v)
        repeated.append(w)
        return True

    for v in range(m_attach, n):
        links_made = 0
        last_target: int | None = None
        guard = 0
        while links_made < m_attach and guard < 100 * m_attach:
            guard += 1
            use_triad = (
                last_target is not None
                and adj[last_target]
                and rng.coin(triad_prob)
            )
            if use_triad:
                nbrs = adj[last_target]  # type: ignore[index]
                candidate = nbrs[rng.rand_int(0, len(nbrs) - 1)]
            elif repeated:
                candidate = repeated[rng.rand_int(0, len(repeated) - 1)]
            else:
                candidate = rng.rand_int(0, max(v - 1, 0))
            if link(v, candidate):
                links_made += 1
                last_target = candidate
    return edges


def hub_power_law(
    n: int,
    *,
    alpha: float = 2.6,
    d_min: int = 1,
    d_max: int = 60,
    num_hubs: int = 3,
    hub_degree: int = 2000,
    seed: int | None = None,
) -> list[Edge]:
    """Power-law graph plus a few mega-hubs (the Youtube profile).

    Video-sharing-style graphs pair a modest power-law body with a
    handful of vertices of enormous degree whose stars are almost
    triangle-free. The result is the paper's hardest regime: huge
    ``Delta``, few triangles, so ``m * Delta / tau`` dwarfs every other
    dataset (Youtube's is 28,107 in Figure 3).
    """
    if num_hubs < 0 or hub_degree >= n:
        raise InvalidParameterError(
            f"need 0 <= num_hubs and hub_degree < n, got ({num_hubs}, {hub_degree})"
        )
    rng = RandomSource(seed)
    edges = set(
        configuration_power_law(
            n, alpha=alpha, d_min=d_min, d_max=d_max, seed=rng.rand_int(0, 2**31)
        )
    )
    for h in range(num_hubs):
        hub = n + h  # hubs get fresh ids so their stars are pristine
        attached = 0
        while attached < hub_degree:
            v = rng.rand_int(0, n - 1)
            e = canonical_edge(hub, v)
            if e not in edges:
                edges.add(e)
                attached += 1
    result = sorted(edges)
    rng.shuffle(result)
    return result


def collaboration_graph(
    n_authors: int,
    n_papers: int,
    *,
    min_authors: int = 2,
    max_authors: int = 5,
    alpha: float = 2.4,
    seed: int | None = None,
) -> list[Edge]:
    """Co-authorship network: each paper adds a clique of its authors.

    Author participation follows a power law (a few prolific authors,
    many occasional ones), the standard model behind DBLP/Hep-Th-style
    collaboration graphs: triangle-dense (every >= 3-author paper
    contributes cliques) with a moderate maximum degree -- the paper's
    *small* ``m * Delta / tau`` regime.
    """
    if not 2 <= min_authors <= max_authors:
        raise InvalidParameterError(
            f"need 2 <= min_authors <= max_authors, got ({min_authors}, {max_authors})"
        )
    if n_authors < max_authors:
        raise InvalidParameterError("need at least max_authors authors")
    rng = RandomSource(seed)
    # Power-law author popularity via cumulative-weight inversion.
    weights = [(i + 1.0) ** (-1.0 / (alpha - 1.0)) for i in range(n_authors)]
    cumulative: list[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    import bisect

    def draw_author() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    # Popularity should not correlate with vertex id: relabel at the end.
    edges: set[Edge] = set()
    for _ in range(n_papers):
        k = rng.rand_int(min_authors, max_authors)
        authors: set[int] = set()
        guard = 0
        while len(authors) < k and guard < 50 * k:
            authors.add(draw_author())
            guard += 1
        members = sorted(authors)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.add(canonical_edge(u, v))
    from .structured import relabel_shuffled

    return relabel_shuffled(sorted(edges), seed=rng.rand_int(0, 2**31))


def near_regular(
    n: int,
    d_low: int,
    d_high: int,
    *,
    seed: int | None = None,
) -> list[Edge]:
    """Configuration-model graph with degrees uniform on [d_low, d_high].

    Mirrors the paper's synthetic graph whose "nodes have degrees
    between 42 and 114": narrow degree band, small ``Delta``.
    """
    if not 1 <= d_low <= d_high < n:
        raise InvalidParameterError(f"need 1 <= d_low <= d_high < n, got ({d_low}, {d_high}, {n})")
    rng = RandomSource(seed)
    stubs: list[int] = []
    for v in range(n):
        stubs.extend([v] * rng.rand_int(d_low, d_high))
    if len(stubs) % 2 == 1:
        stubs.pop()
    rng.shuffle(stubs)
    edges: set[Edge] = set()
    for i in range(0, len(stubs), 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.add(canonical_edge(u, v))
    result = sorted(edges)
    rng.shuffle(result)
    return result


def clique_union_regular(
    n: int,
    clique_size: int,
    overlay_edges: int,
    *,
    seed: int | None = None,
) -> list[Edge]:
    """Near-regular, triangle-dense graph: clique union + random overlay.

    Partitions ``n`` vertices into ``n // clique_size`` cliques (each
    vertex gets degree ``clique_size - 1`` and ``C(clique_size-1, 2)``
    triangles), then adds ``overlay_edges`` random cross edges. The
    result has a narrow degree band and a very small ``m*Delta/tau`` --
    the regime of the paper's Syn-d-regular dataset, where the algorithm
    needs very few estimators.
    """
    if clique_size < 3 or clique_size > n:
        raise InvalidParameterError(f"need 3 <= clique_size <= n, got ({clique_size}, {n})")
    rng = RandomSource(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges: set[Edge] = set()
    for start in range(0, n - clique_size + 1, clique_size):
        group = order[start : start + clique_size]
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                edges.add(canonical_edge(u, v))
    target = len(edges) + overlay_edges
    attempts = 0
    while len(edges) < target and attempts < 50 * max(overlay_edges, 1):
        attempts += 1
        u = rng.rand_int(0, n - 1)
        v = rng.rand_int(0, n - 1)
        if u != v:
            edges.add(canonical_edge(u, v))
    result = sorted(edges)
    rng.shuffle(result)
    return result
