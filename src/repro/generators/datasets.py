"""Named benchmark datasets: synthetic stand-ins for the paper's graphs.

The paper evaluates on SNAP graphs (Amazon, DBLP, Youtube, LiveJournal,
Orkut, Hep-Th) plus two synthetic graphs. SNAP downloads are unavailable
offline, so each dataset is replaced by a generator tuned to occupy the
same *qualitative position* in the paper's Figure 3: power-law vs
regular degree profile, and -- most importantly -- the relative ordering
of ``m * Delta / tau``, which the paper identifies as the accuracy
predictor. Sizes are scaled to laptop-Python scale (the substitution is
documented in DESIGN.md section 6).

Loading a dataset computes exact ground truth (``tau``, ``zeta``,
``Delta``) once and caches both edges and statistics on disk, because
the experiment harness replays the same graphs across many benchmarks.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..exact.triangles import count_triangles
from ..exact.wedges import count_wedges
from ..graph.edge import Edge
from ..graph.io import read_edge_list, write_edge_list
from ..graph.stream import EdgeStream
from .random_graphs import (
    clique_union_regular,
    collaboration_graph,
    holme_kim,
    hub_power_law,
)
from .structured import three_regular_triangle_graph

__all__ = [
    "Dataset",
    "DatasetSpec",
    "GroundTruth",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
]

_SPEC_VERSION = 4  # bump to invalidate on-disk caches when recipes change


@dataclass(frozen=True)
class GroundTruth:
    """Exact statistics of a generated graph."""

    num_vertices: int
    num_edges: int
    max_degree: int
    triangles: int
    wedges: int

    @property
    def m_delta_over_tau(self) -> float:
        """The paper's accuracy predictor ``m * Delta / tau``."""
        if self.triangles == 0:
            return float("inf")
        return self.num_edges * self.max_degree / self.triangles

    def to_dict(self) -> dict:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "triangles": self.triangles,
            "wedges": self.wedges,
        }


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset."""

    name: str
    description: str
    generator: Callable[[int], list[Edge]]
    paper_stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: the edge list plus its exact ground truth."""

    spec: DatasetSpec
    edges: list[Edge]
    truth: GroundTruth

    def stream(self, *, order: str = "as-generated", seed: int | None = None) -> EdgeStream:
        """Return an :class:`EdgeStream` over this dataset.

        ``order="as-generated"`` keeps the stored order;
        ``order="random"`` re-shuffles under ``seed`` (each experiment
        trial uses a fresh stream order, as in the paper's five-trial
        protocol).
        """
        stream = EdgeStream(self.edges, validate=False)
        if order == "random":
            return stream.shuffled(seed)
        if order != "as-generated":
            raise ValueError(f"unknown order {order!r}")
        return stream


# ---------------------------------------------------------------------------
# The registry. paper_stats record the original SNAP-scale numbers from
# Figure 3 / Section 4.2 for side-by-side reporting in EXPERIMENTS.md.
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="amazon_like",
        description=(
            "Co-purchase-style power-law graph with moderate clustering "
            "(stand-in for SNAP Amazon, scaled ~1/100)"
        ),
        generator=lambda seed: holme_kim(3300, 3, 0.45, seed=seed),
        paper_stats={"n": 335_000, "m": 926_000, "delta": 549, "tau": 667_129,
                     "m_delta_over_tau": 761.9},
    )
)

_register(
    DatasetSpec(
        name="dblp_like",
        description=(
            "Collaboration-style power-law graph with high clustering "
            "(stand-in for SNAP DBLP, scaled ~1/100)"
        ),
        generator=lambda seed: collaboration_graph(
            3200, 3000, min_authors=2, max_authors=5, alpha=3.5, seed=seed
        ),
        paper_stats={"n": 317_000, "m": 1_000_000, "delta": 343, "tau": 2_224_385,
                     "m_delta_over_tau": 161.9},
    )
)

_register(
    DatasetSpec(
        name="youtube_like",
        description=(
            "Heavy-tailed, low-clustering graph: huge max degree, few "
            "triangles (stand-in for SNAP Youtube, scaled ~1/100)"
        ),
        generator=lambda seed: hub_power_law(
            11_000, alpha=2.6, d_min=1, d_max=60, num_hubs=3, hub_degree=2_500,
            seed=seed,
        ),
        paper_stats={"n": 1_130_000, "m": 3_000_000, "delta": 28_754, "tau": 3_056_386,
                     "m_delta_over_tau": 28_107.1},
    )
)

_register(
    DatasetSpec(
        name="livejournal_like",
        description=(
            "Large social graph, moderate clustering (stand-in for SNAP "
            "LiveJournal, scaled ~1/200)"
        ),
        generator=lambda seed: holme_kim(20_000, 8, 0.35, seed=seed),
        paper_stats={"n": 4_000_000, "m": 34_700_000, "delta": 14_815,
                     "tau": 177_820_130, "m_delta_over_tau": 2_889.4},
    )
)

_register(
    DatasetSpec(
        name="orkut_like",
        description=(
            "Dense social graph with a very heavy tail (stand-in for SNAP "
            "Orkut, scaled ~1/1000)"
        ),
        generator=lambda seed: hub_power_law(
            6_000, alpha=2.5, d_min=15, d_max=120, num_hubs=2, hub_degree=1_500,
            seed=seed,
        ),
        paper_stats={"n": 3_070_000, "m": 117_200_000, "delta": 33_313,
                     "tau": 633_319_568, "m_delta_over_tau": 6_164.0},
    )
)

_register(
    DatasetSpec(
        name="syn_d_regular",
        description=(
            "Near-regular, triangle-dense synthetic graph (stand-in for the "
            "paper's 'Synthetic ~d-regular'; smallest m*Delta/tau)"
        ),
        generator=lambda seed: clique_union_regular(6_000, 12, 45_000, seed=seed),
        paper_stats={"n": 3_070_000, "m": 121_400_000, "delta": 114,
                     "tau": 848_519_155, "m_delta_over_tau": 16.3},
    )
)

_register(
    DatasetSpec(
        name="syn_3reg",
        description=(
            "The paper's Syn-3-reg graph, reproduced exactly: 3-regular, "
            "n=2000, m=3000, tau=1000 (Table 1)"
        ),
        generator=lambda seed: three_regular_triangle_graph(2000, seed=seed),
        paper_stats={"n": 2_000, "m": 3_000, "delta": 3, "tau": 1_000,
                     "m_delta_over_tau": 9.0},
    )
)

_register(
    DatasetSpec(
        name="hepth_like",
        description=(
            "ArXiv Hep-Th-style collaboration network at full scale "
            "(n~9.9k, m~52k, dense triangles; Table 2)"
        ),
        generator=lambda seed: collaboration_graph(
            9_877, 8_000, min_authors=2, max_authors=6, alpha=6.0, seed=seed
        ),
        paper_stats={"n": 9_877, "m": 51_971, "delta": 130, "tau": 90_649,
                     "m_delta_over_tau": 74.5},
    )
)


def available_datasets() -> list[str]:
    """Names of all registered datasets, in registry order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset recipe by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown dataset {name!r}; available: {known}") from None


# ---------------------------------------------------------------------------
# Loading with on-disk caching
# ---------------------------------------------------------------------------

def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", "")
    if root:
        path = Path(root)
    else:
        # parents[3] is the repo root for an editable install
        # (src/repro/generators/datasets.py); fall back to CWD otherwise.
        repo_root = Path(__file__).resolve().parents[3]
        path = repo_root / ".bench_cache" if repo_root.exists() else Path.cwd() / ".bench_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def load_dataset(name: str, *, seed: int = 0, use_cache: bool = True) -> Dataset:
    """Generate (or load from cache) a named dataset with ground truth.

    The first load generates the graph and computes exact ``tau`` and
    ``zeta``, then persists both the edge list and the statistics under
    the cache directory (``$REPRO_CACHE_DIR`` or ``.bench_cache``).
    Subsequent loads with the same ``name``/``seed`` read from disk.
    """
    spec = dataset_spec(name)
    stem = f"{name}-seed{seed}-v{_SPEC_VERSION}"
    edges_path = _cache_dir() / f"{stem}.edges"
    stats_path = _cache_dir() / f"{stem}.json"

    if use_cache and edges_path.exists() and stats_path.exists():
        edges = read_edge_list(edges_path, deduplicate=False)
        data = json.loads(stats_path.read_text())
        truth = GroundTruth(**data)
        return Dataset(spec=spec, edges=edges, truth=truth)

    edges = spec.generator(seed)
    stream = EdgeStream(edges, validate=False)
    graph = stream.to_graph()
    truth = GroundTruth(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        triangles=count_triangles(graph),
        wedges=count_wedges(graph),
    )
    if use_cache:
        write_edge_list(edges_path, edges)
        stats_path.write_text(json.dumps(truth.to_dict()))
    return Dataset(spec=spec, edges=edges, truth=truth)
