"""Exact (non-streaming) counters used as ground truth.

Every experiment in the paper compares streaming estimates against the
true triangle count; this subpackage computes those truths:

- :mod:`repro.exact.triangles` -- triangle counting/listing and
  per-edge / per-vertex triangle counts;
- :mod:`repro.exact.wedges` -- wedge count ``zeta(G)``, transitivity and
  clustering coefficients;
- :mod:`repro.exact.cliques` -- ``K_l`` counting and listing;
- :mod:`repro.exact.tangle` -- the stream-order-dependent quantities of
  Section 3.2.1: ``c(e)``, ``C(t)``, ``s(e)`` and the tangle
  coefficient ``gamma(G)``;
- :mod:`repro.exact.sliding` -- exact triangle counts over sequence-
  based sliding windows.
"""

from .cliques import count_cliques, count_four_cliques, list_cliques
from .sliding import sliding_window_triangle_counts
from .tangle import (
    first_edge_of_triangle,
    neighborhood_sizes,
    tangle_coefficient,
    triangle_first_edge_counts,
)
from .triangles import (
    count_triangles,
    list_triangles,
    triangles_per_edge,
    triangles_per_vertex,
)
from .wedges import (
    clustering_coefficient,
    count_open_wedges,
    count_wedges,
    global_clustering_coefficient,
    transitivity_coefficient,
)

__all__ = [
    "clustering_coefficient",
    "count_cliques",
    "count_open_wedges",
    "count_four_cliques",
    "count_triangles",
    "count_wedges",
    "first_edge_of_triangle",
    "global_clustering_coefficient",
    "list_cliques",
    "list_triangles",
    "neighborhood_sizes",
    "sliding_window_triangle_counts",
    "tangle_coefficient",
    "transitivity_coefficient",
    "triangle_first_edge_counts",
    "triangles_per_edge",
    "triangles_per_vertex",
]
