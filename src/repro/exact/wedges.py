"""Wedges (connected triples), transitivity, and clustering coefficients.

The paper's Section 3.5 defines the transitivity coefficient as

    kappa(G) = 3 * tau(G) / zeta(G),

where ``zeta(G) = sum_u C(deg(u), 2)`` counts paths of length two
(wedges). The closely related (unweighted) global and local clustering
coefficients of Watts-Strogatz are provided for completeness, matching
the distinction drawn in the paper's footnote 2.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import EmptyStreamError
from ..graph.static_graph import StaticGraph
from .triangles import _as_graph, count_triangles, triangles_per_vertex

__all__ = [
    "count_open_wedges",
    "count_wedges",
    "transitivity_coefficient",
    "clustering_coefficient",
    "global_clustering_coefficient",
]


def count_wedges(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> int:
    """Return ``zeta(G) = sum_u deg(u) * (deg(u) - 1) / 2``."""
    graph = _as_graph(graph_or_edges)
    return sum(d * (d - 1) // 2 for d in graph.degrees().values())


def count_open_wedges(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> int:
    """Return ``T2(G)``: vertex triples with *exactly two* edges.

    Every wedge is either open (its triple has exactly the two wedge
    edges) or closed (part of a triangle, which accounts for three
    wedges), so ``T2 = zeta - 3 tau``. This is the parameter in the
    incidence-stream space bound ``O(1 + T2/tau)`` that Theorem 3.13
    proves unattainable in the adjacency model.
    """
    graph = _as_graph(graph_or_edges)
    return count_wedges(graph) - 3 * count_triangles(graph)


def transitivity_coefficient(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> float:
    """Return ``kappa(G) = 3 tau(G) / zeta(G)``.

    Raises
    ------
    EmptyStreamError
        If the graph has no wedges (the coefficient is undefined).
    """
    graph = _as_graph(graph_or_edges)
    zeta = count_wedges(graph)
    if zeta == 0:
        raise EmptyStreamError("transitivity coefficient undefined: graph has no wedges")
    return 3.0 * count_triangles(graph) / zeta


def clustering_coefficient(
    graph_or_edges: StaticGraph | Iterable[tuple[int, int]],
) -> dict[int, float]:
    """Local clustering coefficient of every vertex.

    ``cc(u) = tau(u) / C(deg(u), 2)``; vertices of degree < 2 get 0.0,
    following the usual convention.
    """
    graph = _as_graph(graph_or_edges)
    per_vertex = triangles_per_vertex(graph)
    result: dict[int, float] = {}
    for u in graph.vertices():
        d = graph.degree(u)
        if d < 2:
            result[u] = 0.0
        else:
            result[u] = per_vertex[u] / (d * (d - 1) / 2)
    return result


def global_clustering_coefficient(
    graph_or_edges: StaticGraph | Iterable[tuple[int, int]],
) -> float:
    """Average of the local clustering coefficients (Watts-Strogatz).

    Distinct from the transitivity coefficient, which weights vertices
    by their wedge count -- see footnote 2 of the paper and
    Schank & Wagner [17].
    """
    graph = _as_graph(graph_or_edges)
    if graph.num_vertices == 0:
        raise EmptyStreamError("clustering coefficient undefined for the empty graph")
    coeffs = clustering_coefficient(graph)
    return sum(coeffs.values()) / len(coeffs)
