"""Exact counting and listing of ``K_l`` cliques.

Ground truth for the Section 5.1 estimators (4-cliques and general
``l``-cliques). Uses recursive extension within degree-ordered
out-neighborhoods, so every clique is enumerated exactly once.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import InvalidParameterError
from ..graph.static_graph import StaticGraph
from .triangles import _as_graph, _oriented_adjacency

__all__ = ["count_cliques", "count_four_cliques", "list_cliques"]


def _iter_cliques(graph: StaticGraph, size: int) -> Iterator[tuple[int, ...]]:
    out = _oriented_adjacency(graph)
    out_sets = {u: frozenset(lst) for u, lst in out.items()}

    def extend(clique: list[int], candidates: list[int]) -> Iterator[tuple[int, ...]]:
        if len(clique) == size:
            yield tuple(sorted(clique))
            return
        need = size - len(clique)
        for i, v in enumerate(candidates):
            remaining = candidates[i + 1 :]
            if len(remaining) + 1 < need:
                break
            clique.append(v)
            # Candidates must stay adjacent to every clique member; the
            # out-set holds one orientation per edge, so check both.
            next_candidates = [w for w in remaining if w in out_sets[v] or v in out_sets[w]]
            yield from extend(clique, next_candidates)
            clique.pop()

    for u in sorted(out):
        yield from extend([u], out[u])


def count_cliques(
    graph_or_edges: StaticGraph | Iterable[tuple[int, int]], size: int
) -> int:
    """Return the exact number of ``K_size`` cliques (``tau_l(G)``).

    ``size`` must be at least 1; sizes 1 and 2 count vertices and edges.
    """
    if size < 1:
        raise InvalidParameterError(f"clique size must be >= 1, got {size}")
    graph = _as_graph(graph_or_edges)
    if size == 1:
        return graph.num_vertices
    if size == 2:
        return graph.num_edges
    return sum(1 for _ in _iter_cliques(graph, size))


def count_four_cliques(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> int:
    """Return ``tau_4(G)``, the number of 4-cliques."""
    return count_cliques(graph_or_edges, 4)


def list_cliques(
    graph_or_edges: StaticGraph | Iterable[tuple[int, int]], size: int
) -> list[tuple[int, ...]]:
    """Return every ``K_size`` clique as a sorted vertex tuple."""
    if size < 1:
        raise InvalidParameterError(f"clique size must be >= 1, got {size}")
    graph = _as_graph(graph_or_edges)
    if size == 1:
        return [(u,) for u in sorted(graph.vertices())]
    if size == 2:
        return [tuple(e) for e in sorted(graph.edges())]
    return sorted(_iter_cliques(graph, size))
