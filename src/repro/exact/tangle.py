"""Stream-order-dependent exact quantities from Section 3.2.1.

For a fixed stream order ``<e1, ..., em>`` the paper defines:

- ``N(e)`` -- the edges adjacent to ``e`` that arrive *after* ``e``, and
  ``c(e) = |N(e)|``;
- ``C(t)`` for a triangle ``t`` -- ``c(f)`` where ``f`` is ``t``'s first
  edge in the stream;
- ``s(e)`` -- the number of triangles whose first edge is ``e``;
- the **tangle coefficient**
  ``gamma(G) = (1/tau) * sum_{t in T(G)} C(t)
             = (1/tau) * sum_{e in E} c(e) * s(e)``.

These drive the sharper space bound of Theorem 3.4 and the analysis of
Lemma 3.1 (``Pr[t = t*] = 1 / (m * C(t*))``). They also give
``zeta(G) = sum_e c(e)`` (Claim 3.9), which we verify in tests against
the degree-based wedge count.
"""

from __future__ import annotations

from ..errors import EmptyStreamError
from ..graph.edge import Edge, canonical_edge
from ..graph.stream import EdgeStream
from .triangles import Triangle, list_triangles

__all__ = [
    "neighborhood_sizes",
    "first_edge_of_triangle",
    "triangle_first_edge_counts",
    "tangle_coefficient",
    "triangle_sampling_probabilities",
]


def neighborhood_sizes(stream: EdgeStream) -> dict[Edge, int]:
    """Return ``c(e)`` for every edge of the stream.

    ``c(e)`` counts the edges adjacent to ``e`` arriving strictly after
    ``e``. Computed in one backward pass using running degrees: when
    ``e = {u, v}`` arrives at position ``i``, the edges adjacent to it
    that arrive later are exactly the later edges incident on ``u`` or
    ``v``, i.e. ``(final_deg(u) - deg_i(u)) + (final_deg(v) - deg_i(v))``.
    """
    final_deg: dict[int, int] = {}
    for u, v in stream:
        final_deg[u] = final_deg.get(u, 0) + 1
        final_deg[v] = final_deg.get(v, 0) + 1
    running: dict[int, int] = {}
    sizes: dict[Edge, int] = {}
    for u, v in stream:
        running[u] = running.get(u, 0) + 1
        running[v] = running.get(v, 0) + 1
        sizes[(u, v)] = (final_deg[u] - running[u]) + (final_deg[v] - running[v])
    return sizes


def first_edge_of_triangle(stream: EdgeStream, triangle: Triangle) -> Edge:
    """Return the triangle's first edge in the stream order."""
    a, b, c = triangle
    positions: dict[Edge, int] = {}
    wanted = {canonical_edge(a, b), canonical_edge(a, c), canonical_edge(b, c)}
    for i, e in enumerate(stream):
        if e in wanted and e not in positions:
            positions[e] = i
            if len(positions) == 3:
                break
    if len(positions) < 3:
        raise EmptyStreamError(f"triangle {triangle} is not fully present in the stream")
    return min(positions, key=positions.get)  # type: ignore[arg-type]


def triangle_first_edge_counts(stream: EdgeStream) -> dict[Edge, int]:
    """Return ``s(e)``: how many triangles have ``e`` as their first edge.

    One forward pass: keep the stream position of every edge; for each
    triangle the minimum-position edge is its first edge.
    """
    position: dict[Edge, int] = {}
    for i, e in enumerate(stream):
        position.setdefault(e, i)
    counts: dict[Edge, int] = {}
    for a, b, c in list_triangles(stream.edges):
        edges = (canonical_edge(a, b), canonical_edge(a, c), canonical_edge(b, c))
        first = min(edges, key=lambda e: position[e])
        counts[first] = counts.get(first, 0) + 1
    return counts


def tangle_coefficient(stream: EdgeStream) -> float:
    """Return ``gamma(G)`` for the given stream order.

    Raises
    ------
    EmptyStreamError
        If the streamed graph has no triangles (``gamma`` is undefined).
    """
    sizes = neighborhood_sizes(stream)
    s_counts = triangle_first_edge_counts(stream)
    tau = sum(s_counts.values())
    if tau == 0:
        raise EmptyStreamError("tangle coefficient undefined: stream has no triangles")
    total = sum(sizes[e] * s for e, s in s_counts.items())
    return total / tau


def triangle_sampling_probabilities(stream: EdgeStream) -> dict[Triangle, float]:
    """Exact ``Pr[t = t*] = 1/(m * C(t*))`` for every triangle (Lemma 3.1).

    Used by tests to validate the neighborhood-sampling implementation
    against the paper's worked example of Figure 1 (``Pr[t1] = 1/20``,
    ``Pr[t2] = 1/70``).
    """
    m = len(stream)
    if m == 0:
        raise EmptyStreamError("empty stream")
    sizes = neighborhood_sizes(stream)
    probs: dict[Triangle, float] = {}
    for tri in list_triangles(stream.edges):
        first = first_edge_of_triangle(stream, tri)
        c_first = sizes[first]
        probs[tri] = 1.0 / (m * c_first) if c_first > 0 else 0.0
    return probs
