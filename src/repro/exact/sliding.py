"""Exact triangle counts over sequence-based sliding windows.

Ground truth for the Section 5.2 sliding-window estimator: at each time
``t`` the graph of interest consists of the ``w`` most recent edges
``e_{t-w+1}, ..., e_t``.

:func:`sliding_window_triangle_counts` maintains the window graph
incrementally -- when an edge enters or leaves, the triangle count
changes by the number of common neighbors of its endpoints inside the
window -- so the whole sweep costs one adjacency intersection per edge
event rather than a recount per step.
"""

from __future__ import annotations

from collections import deque

from ..errors import InvalidParameterError
from ..graph.edge import Edge
from ..graph.stream import EdgeStream

__all__ = ["sliding_window_triangle_counts", "WindowedExactCounter"]


class WindowedExactCounter:
    """Incrementally exact triangle count of the last ``w`` edges.

    Feed edges with :meth:`push`; read :attr:`triangles` at any point.
    Eviction of the oldest edge happens automatically once more than
    ``window`` edges have been pushed.
    """

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.window = window
        self.triangles = 0
        self._edges: deque[Edge] = deque()
        self._adj: dict[int, set[int]] = {}

    def _common_neighbors(self, u: int, v: int) -> int:
        a = self._adj.get(u, set())
        b = self._adj.get(v, set())
        if len(a) > len(b):
            a, b = b, a
        return sum(1 for w in a if w in b)

    def _insert(self, e: Edge) -> None:
        u, v = e
        self.triangles += self._common_neighbors(u, v)
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def _remove(self, e: Edge) -> None:
        u, v = e
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self.triangles -= self._common_neighbors(u, v)
        if not self._adj[u]:
            del self._adj[u]
        if not self._adj[v]:
            del self._adj[v]

    def push(self, e: Edge) -> int:
        """Add the next stream edge; return the current window count."""
        if len(self._edges) == self.window:
            self._remove(self._edges.popleft())
        self._edges.append(e)
        self._insert(e)
        return self.triangles


def sliding_window_triangle_counts(stream: EdgeStream, window: int) -> list[int]:
    """Exact triangle count of the window after each arrival.

    ``result[i]`` is the number of triangles among edges
    ``e_{i-w+2}, ..., e_{i+1}`` (1-based: the window ending at edge
    ``i+1``). Duplicate edges inside a window would make the window
    multigraph; the stream is assumed simple so windows are too.
    """
    counter = WindowedExactCounter(window)
    return [counter.push(e) for e in stream]
