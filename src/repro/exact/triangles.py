"""Exact triangle counting and listing.

Uses the standard degree-ordered adjacency-intersection algorithm: orient
every edge from its lower-rank endpoint to its higher-rank endpoint in a
degeneracy-friendly order (degree, then id), then intersect out-
neighborhoods. Each triangle is found exactly once, giving
``O(m^{3/2})``-style behaviour in practice. This serves as ground truth
for every streaming experiment in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..graph.edge import Edge, canonical_edge
from ..graph.static_graph import StaticGraph

Triangle = tuple[int, int, int]

__all__ = [
    "count_triangles",
    "list_triangles",
    "triangles_per_edge",
    "triangles_per_vertex",
]


def _as_graph(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> StaticGraph:
    if isinstance(graph_or_edges, StaticGraph):
        return graph_or_edges
    return StaticGraph(graph_or_edges, strict=False)


def _oriented_adjacency(graph: StaticGraph) -> dict[int, list[int]]:
    """Out-neighbor lists under the (degree, id) total order.

    Each edge {u, v} appears once, directed from the endpoint with
    smaller (degree, id) to the larger. Out-lists are sorted for fast
    set-free intersection.
    """
    rank = {u: (graph.degree(u), u) for u in graph.vertices()}
    out: dict[int, list[int]] = {u: [] for u in graph.vertices()}
    for u, v in graph.edges():
        if rank[u] < rank[v]:
            out[u].append(v)
        else:
            out[v].append(u)
    for lst in out.values():
        lst.sort()
    return out


def _iter_triangles(graph: StaticGraph) -> Iterator[Triangle]:
    out = _oriented_adjacency(graph)
    out_sets = {u: set(lst) for u, lst in out.items()}
    for u, u_out in out.items():
        for v in u_out:
            v_out = out_sets[v]
            # w must be an out-neighbor of both u and v: triangle found once.
            for w in u_out:
                if w in v_out:
                    yield tuple(sorted((u, v, w)))  # type: ignore[misc]


def count_triangles(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> int:
    """Return ``tau(G)``, the exact number of triangles."""
    graph = _as_graph(graph_or_edges)
    return sum(1 for _ in _iter_triangles(graph))


def list_triangles(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> list[Triangle]:
    """Return all triangles as sorted vertex triples, each exactly once."""
    graph = _as_graph(graph_or_edges)
    return sorted(_iter_triangles(graph))


def triangles_per_edge(graph_or_edges: StaticGraph | Iterable[tuple[int, int]]) -> dict[Edge, int]:
    """Map each edge to the number of triangles containing it.

    The maximum value over edges is the parameter ``sigma`` used in the
    paper's comparison with Pagh-Tsourakakis (Section 1.2).
    """
    graph = _as_graph(graph_or_edges)
    counts: dict[Edge, int] = {e: 0 for e in graph.edges()}
    for a, b, c in _iter_triangles(graph):
        counts[canonical_edge(a, b)] += 1
        counts[canonical_edge(a, c)] += 1
        counts[canonical_edge(b, c)] += 1
    return counts


def triangles_per_vertex(
    graph_or_edges: StaticGraph | Iterable[tuple[int, int]],
) -> dict[int, int]:
    """Map each vertex to the number of triangles containing it.

    This is the per-vertex ("local") triangle count that Becchetti et
    al.'s multi-pass algorithm reports; we provide it exactly.
    """
    graph = _as_graph(graph_or_edges)
    counts: dict[int, int] = {u: 0 for u in graph.vertices()}
    for a, b, c in _iter_triangles(graph):
        counts[a] += 1
        counts[b] += 1
        counts[c] += 1
    return counts
