"""Colorful triangle counting (Pagh-Tsourakakis [16]), stream-adapted.

Every vertex gets an independent uniform color from ``{0, ..., N-1}``;
the algorithm retains only *monochromatic* edges (endpoints share a
color) and, at query time, exactly counts the triangles of the retained
subgraph ``G~``. A triangle survives iff all three vertices share a
color (probability ``1/N^2``), so ``N^2 * tau(G~)`` is unbiased.

Expected retained size is ``m / N``, so ``N`` trades space for variance
-- the paper compares this ``m * sigma / tau`` space profile against
neighborhood sampling's ``m * Delta / tau`` (Section 1.2); the two are
incomparable in general, which the ablation benchmark demonstrates.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import InvalidParameterError
from ..exact.triangles import count_triangles
from ..graph.edge import Edge, canonical_edge
from ..rng import RandomSource

__all__ = ["ColorfulTriangleCounter"]


class ColorfulTriangleCounter:
    """Stream-adapted colorful triangle counting.

    Parameters
    ----------
    num_colors:
        The number of colors ``N``; expected retained edges ``m / N``.
    seed:
        Seed for color assignment.
    """

    def __init__(self, num_colors: int, *, seed: int | None = None) -> None:
        if num_colors < 1:
            raise InvalidParameterError(f"num_colors must be >= 1, got {num_colors}")
        self.num_colors = num_colors
        self._rng = RandomSource(seed)
        self._colors: dict[int, int] = {}
        self._kept: list[Edge] = []
        self.edges_seen = 0

    def _color(self, v: int) -> int:
        color = self._colors.get(v)
        if color is None:
            color = self._rng.rand_int(0, self.num_colors - 1)
            self._colors[v] = color
        return color

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge; keep it iff it is monochromatic."""
        u, v = canonical_edge(*edge)
        self.edges_seen += 1
        if self._color(u) == self._color(v):
            self._kept.append((u, v))

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def kept_edges(self) -> int:
        """Edges currently retained (the algorithm's main space cost)."""
        return len(self._kept)

    def estimate(self) -> float:
        """``N^2`` times the exact triangle count of the retained graph."""
        if not self._kept:
            return 0.0
        return float(self.num_colors**2) * count_triangles(self._kept)
