"""The Jowhari-Ghodsi one-pass triangle counter [9].

Each estimator reservoir-samples an edge ``r = {u, v}`` and then stores
the neighborhoods of ``u`` and ``v`` formed by *later* edges. A vertex
``w`` seen adjacent to both endpoints after ``r`` witnesses a triangle
whose first stream edge is ``r``; the count ``x_r`` of such vertices
gives the unbiased estimate ``m * x_r`` (every triangle is counted by
exactly one edge -- its first).

This is the comparison baseline of the paper's Tables 1 and 2:

- **space**: up to ``O(Delta)`` per estimator (the stored neighbor
  sets), versus O(1) for neighborhood sampling -- the reason the paper
  reports JG needing "considerably more space" at equal ``r``;
- **time**: ``O(m r)`` total -- each estimator inspects every edge --
  versus ``O(m + r)`` for the bulk algorithm, the source of the >= 10x
  runtime gap in Tables 1 and 2.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge
from ..rng import RandomSource, spawn_sources

__all__ = ["JowhariGhodsiEstimator", "JowhariGhodsiCounter"]


class JowhariGhodsiEstimator:
    """One JG estimator: sampled edge + post-arrival neighbor sets."""

    __slots__ = ("_rng", "edges_seen", "r", "nbrs_u", "nbrs_v", "found")

    def __init__(self, seed: int | None = None, *, rng: RandomSource | None = None) -> None:
        self._rng = rng if rng is not None else RandomSource(seed)
        self.edges_seen = 0
        self.r: Edge | None = None
        self.nbrs_u: set[int] = set()
        self.nbrs_v: set[int] = set()
        self.found = 0  # triangles whose first edge is r

    def update(self, edge: tuple[int, int]) -> None:
        e = canonical_edge(*edge)
        self.edges_seen += 1
        if self._rng.coin(1.0 / self.edges_seen):
            self.r = e
            self.nbrs_u.clear()
            self.nbrs_v.clear()
            self.found = 0
            return
        if self.r is None:
            return
        u, v = self.r
        a, b = e
        # A later edge through u (or v) extends that endpoint's
        # neighborhood; a vertex reaching both completes a triangle.
        if a == u or b == u:
            w = b if a == u else a
            if w != v:
                if w in self.nbrs_v:
                    self.found += 1
                self.nbrs_u.add(w)
        if a == v or b == v:
            w = b if a == v else a
            if w != u:
                if w in self.nbrs_u:
                    self.found += 1
                self.nbrs_v.add(w)

    def estimate(self) -> float:
        """Unbiased estimate ``m * x_r``."""
        return float(self.edges_seen) * self.found

    def state_size(self) -> int:
        """Stored vertices -- the O(Delta) space term."""
        return len(self.nbrs_u) + len(self.nbrs_v)


class JowhariGhodsiCounter:
    """``r`` independent JG estimators, averaged."""

    def __init__(self, num_estimators: int, *, seed: int | None = None) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._estimators = [JowhariGhodsiEstimator(rng=src) for src in sources]
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._estimators)

    def update(self, edge: tuple[int, int]) -> None:
        for est in self._estimators:
            est.update(edge)
        self.edges_seen += 1

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def estimates(self) -> list[float]:
        return [est.estimate() for est in self._estimators]

    def estimate(self) -> float:
        values = self.estimates()
        return sum(values) / len(values)

    def total_state_size(self) -> int:
        """Total stored vertices across estimators (space comparison)."""
        return sum(est.state_size() for est in self._estimators)
