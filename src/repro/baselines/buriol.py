"""The Buriol et al. adjacency-stream triangle counter [5].

Each estimator reservoir-samples an edge ``r1 = {a, b}`` and pairs it
with a vertex ``v`` drawn uniformly from ``V \\ {a, b}`` -- *not*
necessarily a neighbor -- then waits for both ``{a, v}`` and ``{b, v}``
to arrive later in the stream. A triangle whose first edge is ``r1``
and third vertex is ``v`` is caught with probability
``1 / (m (n - 2))``, so ``X = m (n - 2)`` on success is unbiased.

Because the third vertex is chosen blindly, the success probability is
a factor ``~ n / Delta`` lower than neighborhood sampling's (Section
3.1), which is why the paper's Section 4.2 finds that this algorithm
"fails to find a triangle most of the time" on large sparse graphs --
the behaviour ``benchmarks/bench_buriol_baseline.py`` reproduces.

Two costs are modeled faithfully:

- the vertex set must be known in advance (the paper highlights this
  as a practical disadvantage versus neighborhood sampling);
- the optimized implementation resamples level-1 edges via one
  binomial draw per stream edge and uses an awaited-edge subscription
  table, giving roughly O(m + r log m) total time, mirroring the
  paper's "optimized version ... achieves roughly O(m + r)".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge

__all__ = ["BuriolTriangleCounter"]


class _BuriolState:
    __slots__ = ("r1", "v", "found_av", "found_bv", "version")

    def __init__(self) -> None:
        self.r1: Edge | None = None
        self.v: int = -1
        self.found_av = False
        self.found_bv = False
        self.version = 0


class BuriolTriangleCounter:
    """``r`` Buriol-et-al. estimators over a known vertex universe.

    Parameters
    ----------
    num_estimators:
        The number of parallel estimators ``r``.
    vertices:
        The graph's vertex set, known in advance (a requirement of the
        original algorithm).
    seed:
        Seed for reproducibility.
    """

    def __init__(
        self,
        num_estimators: int,
        vertices: Sequence[int],
        *,
        seed: int | None = None,
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        if len(vertices) < 3:
            raise InvalidParameterError("need at least 3 vertices to form triangles")
        self._vertices = np.asarray(list(vertices), dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        self._states = [_BuriolState() for _ in range(num_estimators)]
        # Awaited-edge subscriptions: edge -> list of (estimator, version).
        self._subs: dict[Edge, list[tuple[int, int]]] = {}
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._states)

    @property
    def num_vertices(self) -> int:
        return int(self._vertices.shape[0])

    # ------------------------------------------------------------------
    def _draw_third_vertex(self, a: int, b: int) -> int:
        while True:
            v = int(self._vertices[self._rng.integers(0, self._vertices.shape[0])])
            if v != a and v != b:
                return v

    def _subscribe(self, idx: int, state: _BuriolState) -> None:
        a, b = state.r1  # type: ignore[misc]
        for awaited in (canonical_edge(a, state.v), canonical_edge(b, state.v)):
            self._subs.setdefault(awaited, []).append((idx, state.version))

    def update(self, edge: tuple[int, int]) -> None:
        e = canonical_edge(*edge)
        self.edges_seen += 1
        i = self.edges_seen
        # Deliver e to estimators awaiting it (skipping stale subscriptions).
        waiting = self._subs.pop(e, None)
        if waiting:
            for idx, version in waiting:
                state = self._states[idx]
                if state.version != version or state.r1 is None:
                    continue
                a, b = state.r1
                if e == canonical_edge(a, state.v):
                    state.found_av = True
                elif e == canonical_edge(b, state.v):
                    state.found_bv = True
        # Level-1 resampling: Binomial(r, 1/i) estimators take e as r1.
        k = int(self._rng.binomial(self.num_estimators, 1.0 / i))
        if k == 0:
            return
        chosen = self._rng.choice(self.num_estimators, size=k, replace=False)
        for idx in chosen:
            state = self._states[int(idx)]
            state.r1 = e
            state.v = self._draw_third_vertex(*e)
            state.found_av = False
            state.found_bv = False
            state.version += 1
            self._subscribe(int(idx), state)

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    # ------------------------------------------------------------------
    def successes(self) -> int:
        """Estimators that completed a triangle."""
        return sum(1 for s in self._states if s.found_av and s.found_bv)

    def estimates(self) -> list[float]:
        """Per-estimator unbiased estimates ``m (n - 2)`` on success."""
        scale = float(self.edges_seen) * (self.num_vertices - 2)
        return [
            scale if (s.found_av and s.found_bv) else 0.0 for s in self._states
        ]

    def estimate(self) -> float:
        values = self.estimates()
        return sum(values) / len(values)

    def fraction_holding_triangle(self) -> float:
        """Fraction of estimators that found a triangle (the paper's
        diagnostic for why this baseline struggles)."""
        return self.successes() / self.num_estimators
