"""Baseline algorithms the paper compares against (Sections 1.2, 4.2).

- :mod:`repro.baselines.jowhari_ghodsi` -- the one-pass algorithm of
  Jowhari and Ghodsi [9]: O(Delta) space per estimator, O(m r) time;
- :mod:`repro.baselines.buriol` -- Buriol et al. [5]: edge + random
  vertex sampling, optimized to ~O(m + r) time, but with a far lower
  per-estimator success probability than neighborhood sampling;
- :mod:`repro.baselines.pagh_tsourakakis` -- the colorful counting of
  Pagh and Tsourakakis [16], adapted to the adjacency stream;
- :mod:`repro.baselines.exact_stream` -- an exact streaming counter
  (hash adjacency) used as ground truth and in the lower-bound demo.
"""

from .buriol import BuriolTriangleCounter
from .exact_stream import ExactStreamingCounter
from .jowhari_ghodsi import JowhariGhodsiCounter
from .pagh_tsourakakis import ColorfulTriangleCounter

__all__ = [
    "BuriolTriangleCounter",
    "ColorfulTriangleCounter",
    "ExactStreamingCounter",
    "JowhariGhodsiCounter",
]
