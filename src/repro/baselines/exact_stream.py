"""Exact streaming triangle and wedge counting (ground truth).

Maintains full adjacency (O(m) space -- this is *not* a sublinear
algorithm; it is the reference the approximations are judged against,
and the triangle counter used by the Theorem 3.13 lower-bound protocol
demo). Each arriving edge ``{u, v}`` adds ``|N(u) cap N(v)|`` triangles
and ``deg(u) + deg(v)`` wedges.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import EmptyStreamError, InvalidParameterError
from ..graph.edge import canonical_edge

__all__ = ["ExactStreamingCounter"]


class ExactStreamingCounter:
    """Exact triangle/wedge counts with the streaming ``update`` API."""

    def __init__(self) -> None:
        self._adj: dict[int, set[int]] = {}
        self.edges_seen = 0
        self.triangles = 0
        self.wedges = 0

    def update(self, edge: tuple[int, int]) -> None:
        """Insert one stream edge and update all counts incrementally."""
        u, v = canonical_edge(*edge)
        a = self._adj.get(u)
        b = self._adj.get(v)
        if a is not None and b is not None:
            small, large = (a, b) if len(a) <= len(b) else (b, a)
            self.triangles += sum(1 for w in small if w in large)
        self.wedges += (len(a) if a else 0) + (len(b) if b else 0)
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self.edges_seen += 1

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def estimate(self) -> float:
        """The exact triangle count (named for API compatibility)."""
        return float(self.triangles)

    def transitivity(self) -> float:
        """Exact transitivity coefficient ``3 tau / zeta`` so far."""
        if self.wedges == 0:
            raise EmptyStreamError("no wedges observed yet")
        return 3.0 * self.triangles / self.wedges

    # ------------------------------------------------------------------
    # checkpoint/ship surface
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot: the adjacency as a canonical edge array plus counts."""
        edges = np.array(
            sorted(
                (u, v)
                for u, nbrs in self._adj.items()
                for v in nbrs
                if u < v
            ),
            dtype=np.int64,
        ).reshape(-1, 2)
        return {
            "edges": edges,
            "edges_seen": self.edges_seen,
            "triangles": self.triangles,
            "wedges": self.wedges,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        missing = [
            k
            for k in ("edges", "edges_seen", "triangles", "wedges")
            if k not in state
        ]
        if missing:
            raise InvalidParameterError(f"state dict missing fields: {missing}")
        adj: dict[int, set[int]] = {}
        for u, v in np.asarray(state["edges"], dtype=np.int64).tolist():
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        self._adj = adj
        self.edges_seen = int(state["edges_seen"])
        self.triangles = int(state["triangles"])
        self.wedges = int(state["wedges"])

    def merge(self, other: "ExactStreamingCounter") -> None:
        """Merging exact counters over the same stream is a no-op.

        Exact counting is deterministic, so two counters that observed
        the same stream hold identical state; a disagreement means they
        did not, which is an error.
        """
        if (
            other.edges_seen != self.edges_seen
            or other.triangles != self.triangles
            or other.wedges != self.wedges
        ):
            raise InvalidParameterError(
                "cannot merge exact counters with diverging state "
                f"(edges {other.edges_seen} vs {self.edges_seen})"
            )

    def max_degree(self) -> int:
        """Maximum degree observed so far."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def state_size_edges(self) -> int:
        """Number of adjacency entries held -- the Omega(n) state the
        lower bound (Theorem 3.13) says any accurate algorithm must pay
        on the Index-reduction graphs."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2
