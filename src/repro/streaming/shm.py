"""Zero-copy shard transport over ``multiprocessing.shared_memory``.

Both multiprocess paths (:class:`~repro.streaming.sharded.ShardedPipeline`
and :class:`~repro.core.parallel.ParallelTriangleCounter`) broadcast
every batch to every worker. Over pickled queues that costs ``workers``
serialized copies of the same ``(w, 2)`` int64 array per batch -- at
paper-scale batch sizes the dominant parent-side cost, and the reason
shard scaling flattened well below linear. This module replaces the
payload with a *descriptor*: the parent copies each batch **once** into
a ring of named shared-memory blocks and ships ``(tag, slot, rows)``
tuples (a few dozen bytes) through the queues; workers map the blocks
and hand the engine a zero-copy :class:`~repro.streaming.batch.EdgeBatch`
view.

Pieces, parent to worker:

- :class:`ShmRing` -- parent-owned ring of ``slots`` equal-size
  shared-memory blocks plus a per-``(slot, consumer)`` reference-flag
  matrix and a condition variable (both from the multiprocessing
  context, so they inherit into workers under fork *and* spawn).
  :meth:`ShmRing.send` claims a free block (all flags clear), stamps
  each receiving consumer's flag, copies the batch in, and returns the
  descriptor; :meth:`ShmRing.revoke` clears one consumer's whole flag
  column, which is how crash recovery reclaims whatever a SIGKILLed
  worker was holding (flag-clears are idempotent, so no kill instant
  can corrupt the accounting the way a shared counter could);
- :class:`ShmRingClient` -- the picklable worker handle, bound to one
  consumer index: attaches blocks lazily by name, serves numpy views,
  and clears its flag on release (waking a parent blocked on a full
  ring);
- :class:`TransportFeed` -- the worker-side queue iterator: yields
  ``EdgeBatch`` for descriptors (releasing each block as soon as the
  consumer moves on) and raw arrays alike, so worker loops are
  transport-agnostic;
- :class:`BatchSender` -- the parent-side policy object: resolves
  ``transport="auto"|"shm"|"queue"``, owns the ring, and falls back to
  the pickled payload per batch (odd sizes) or wholesale (no shm on
  the platform -- see :func:`shm_available`).

**Lifecycle contract.** A block is reused the moment its refcount
returns to 0, so consumers must not retain references into a batch
after advancing the feed past it -- the engines already honor this
(every state write is a fancy-indexed copy; the per-batch context dies
with the batch). Cleanup is parent-side and crash-safe: every segment
is unlinked in :meth:`ShmRing.close`, which runs in the run's
``finally`` *and* via ``atexit``; a worker killed mid-batch leaves only
refcounts behind, which the parent's liveness callback turns into
:class:`~repro.errors.WorkerCrashedError` instead of a hung wait, and
the unlink still proceeds. Worker attachments auto-register with the
``resource_tracker`` (bpo-38119), which is harmless here: children
share the parent's tracker process, so the register is a set re-add of
the parent's own entry, cleared once by the parent's unlink.

**Bit-identity.** The transport moves bytes, never interprets them: a
worker sees the identical canonical array whether it arrived as a view
or a pickle, so results are bit-identical across transports (asserted
by the transport-parity tests).
"""

from __future__ import annotations

import atexit
import os
import secrets

import numpy as np

from ..errors import InvalidParameterError, WorkerCrashedError
from .batch import EdgeBatch

__all__ = [
    "BatchSender",
    "ShmRing",
    "ShmRingClient",
    "TransportFeed",
    "resolve_transport",
    "shm_available",
]

#: First element of a shared-memory batch descriptor. A plain string
#: tag (not a class) keeps descriptors trivially picklable and lets a
#: queue-path worker recognize -- and reject -- a descriptor it cannot
#: serve, instead of silently treating it as a batch.
DESCRIPTOR_TAG = "__repro_shm_batch__"

#: Ring slots: twice the bounded queue depth. In-flight distinct
#: batches are bounded by the slowest worker's queue backlog plus one
#: in processing plus one the parent holds while blocked on a full
#: queue (= depth + 2), so twice the depth never deadlocks the
#: claim-then-enqueue order.
RING_SLOTS_PER_DEPTH = 2

_NAME_PREFIX = "repro"


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probe, cached).

    Import success is not enough: locked-down containers mount no
    ``/dev/shm`` (or mount it unwritable), which surfaces only when a
    segment is created. The probe creates and unlinks a minimal one.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=1)
            try:
                seg.close()
            finally:
                seg.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


_SHM_AVAILABLE: bool | None = None


def resolve_transport(transport: str) -> str:
    """Resolve a requested transport to ``"shm"`` or ``"queue"``.

    ``auto`` degrades silently on shm-less platforms; an explicit
    ``shm`` request raises there instead, mirroring the kernel
    backend's selection contract.
    """
    name = transport.strip().lower()
    if name == "auto":
        return "shm" if shm_available() else "queue"
    if name not in ("shm", "queue"):
        raise InvalidParameterError(
            f"unknown transport {name!r}; choose shm, queue, or auto"
        )
    if name == "shm" and not shm_available():
        raise InvalidParameterError(
            "transport 'shm' requested but shared memory is unavailable "
            "on this platform; use transport='queue' or 'auto'"
        )
    return name


class ShmRingClient:
    """Worker-side handle to a :class:`ShmRing` (ships via Process args).

    Holds only the segment names plus the shared reference-flag matrix
    and condition -- multiprocessing primitives that inherit through
    ``Process(args=...)`` under fork and spawn alike -- and the consumer
    index this client releases on behalf of. Blocks attach lazily on
    first use; :meth:`close` detaches without unlinking (the parent
    owns the segments).
    """

    def __init__(self, names, flags, cond, consumer, consumers) -> None:
        self._names = list(names)
        self._flags = flags
        self._cond = cond
        self._consumer = consumer
        self._consumers = consumers
        self._segments: list = [None] * len(self._names)

    def array(self, slot: int, rows: int) -> np.ndarray:
        """A zero-copy ``(rows, 2)`` int64 view of ``slot``'s block."""
        seg = self._segments[slot]
        if seg is None:
            from multiprocessing import shared_memory

            # Attaching auto-registers with the resource tracker
            # (bpo-38119). That is harmless here: multiprocessing
            # children share the parent's tracker (the fd is inherited
            # under fork and passed explicitly under spawn), so the
            # worker's register is a set re-add of the parent's own
            # entry, cleared once by the parent's unlink. Unregistering
            # from the worker would instead *remove* the shared entry
            # and break crash cleanup.
            seg = shared_memory.SharedMemory(name=self._names[slot])
            self._segments[slot] = seg
        return np.ndarray((rows, 2), dtype=np.int64, buffer=seg.buf)

    def release(self, slot: int) -> None:
        """Return this consumer's reference on ``slot``.

        Clearing a flag (rather than decrementing a shared counter) is
        idempotent, so a release that races the parent's crash-recovery
        :meth:`ShmRing.revoke` of the same consumer cannot corrupt the
        slot's accounting. Wakes a parent blocked on a full ring once
        the slot's last reference drops.
        """
        with self._cond:
            base = slot * self._consumers
            self._flags[base + self._consumer] = 0
            if not any(self._flags[base : base + self._consumers]):
                self._cond.notify_all()

    def close(self) -> None:
        """Detach every mapped block (views must be dropped first)."""
        for i, seg in enumerate(self._segments):
            if seg is None:
                continue
            self._segments[i] = None
            try:
                seg.close()
            except BufferError:  # pragma: no cover - lingering view
                pass

    def __getstate__(self):
        return (self._names, self._flags, self._cond, self._consumer, self._consumers)

    def __setstate__(self, state):
        self._names, self._flags, self._cond, self._consumer, self._consumers = state
        self._segments = [None] * len(self._names)


class ShmRing:
    """Parent-owned ring of shared-memory blocks with refcounted reuse.

    Parameters
    ----------
    ctx:
        The multiprocessing context the workers are spawned from (the
        refcount array and condition must come from the same context to
        inherit correctly).
    slots:
        Ring length.
    block_bytes:
        Capacity of each block; batches that do not fit are the
        caller's problem (:meth:`send` declines them).
    consumers:
        How many workers can receive descriptors -- the width of the
        per-slot reference-flag matrix.

    References are tracked as a per-``(slot, consumer)`` flag matrix
    rather than a per-slot counter: release and :meth:`revoke` are then
    *idempotent* flag-clears, so the parent can reclaim everything a
    SIGKILLed worker held -- whatever instant the kill landed --
    without the negative-count/leaked-count races a shared counter
    cannot avoid.
    """

    def __init__(self, ctx, *, slots: int, block_bytes: int, consumers: int) -> None:
        from multiprocessing import shared_memory

        if slots < 1 or consumers < 1 or block_bytes < 16:
            raise InvalidParameterError(
                f"bad ring geometry: slots={slots}, consumers={consumers}, "
                f"block_bytes={block_bytes}"
            )
        token = secrets.token_hex(4)
        self._names = [
            f"{_NAME_PREFIX}-{os.getpid()}-{token}-{i}" for i in range(slots)
        ]
        self._segments = []
        try:
            for name in self._names:
                self._segments.append(
                    shared_memory.SharedMemory(
                        name=name, create=True, size=block_bytes
                    )
                )
        except Exception:
            self.close()
            raise
        self._block_bytes = block_bytes
        self._consumers = consumers
        self._flags = ctx.Array("q", slots * consumers, lock=False)
        self._cond = ctx.Condition()
        self._closed = False
        atexit.register(self.close)

    @property
    def slots(self) -> int:
        return len(self._names)

    def refcount(self, slot: int) -> int:
        """How many consumers still hold a reference to ``slot``."""
        base = slot * self._consumers
        return sum(
            1 for flag in self._flags[base : base + self._consumers] if flag
        )

    def client(self, consumer: int = 0) -> ShmRingClient:
        """The handle for worker ``consumer``; pass through ``Process(args=...)``."""
        if not 0 <= consumer < self._consumers:
            raise InvalidParameterError(
                f"consumer must be in [0, {self._consumers}), got {consumer}"
            )
        return ShmRingClient(
            self._names, self._flags, self._cond, consumer, self._consumers
        )

    def send(self, array: np.ndarray, alive=None, consumers=None) -> tuple | None:
        """Copy ``array`` into a free block; return its descriptor.

        ``consumers`` selects which workers the descriptor is stamped
        for (default: all) -- a supervised run excludes workers that
        were degraded to the queue payload. Returns ``None`` when the
        batch cannot ride the ring (wrong dtype/shape or larger than a
        block) -- the caller falls back to the pickled payload for that
        batch. Blocks until a slot frees up; every second of waiting
        invokes ``alive`` (if given), whose job is to raise
        :class:`~repro.errors.WorkerCrashedError` when a consumer died
        holding references, turning a would-be deadlock into the
        standard crash report.
        """
        if (
            array.dtype != np.int64
            or array.ndim != 2
            or array.shape[1] != 2
            or array.nbytes > self._block_bytes
        ):
            return None
        targets = (
            range(self._consumers) if consumers is None else list(consumers)
        )
        with self._cond:
            while True:
                for slot in range(len(self._names)):
                    base = slot * self._consumers
                    if not any(self._flags[base : base + self._consumers]):
                        break
                else:
                    if not self._cond.wait(timeout=1.0) and alive is not None:
                        alive()
                    continue
                break
            for consumer in targets:
                self._flags[slot * self._consumers + consumer] = 1
        # Copy outside the lock: a claimed block is untouched by workers
        # until its descriptor is enqueued, which happens after we return.
        rows = array.shape[0]
        view = np.ndarray((rows, 2), dtype=np.int64, buffer=self._segments[slot].buf)
        view[...] = array
        del view
        return (DESCRIPTOR_TAG, slot, rows)

    def revoke(self, consumer: int) -> None:
        """Drop every reference ``consumer`` holds, in any slot.

        The crash-recovery path: a killed worker's queue may hold
        descriptors it will never release, and the kill may have landed
        mid-release. Clearing the consumer's whole flag column is
        correct at every such instant (flags are idempotent), frees any
        slots only that worker was holding, and wakes a parent blocked
        on a full ring.
        """
        with self._cond:
            for slot in range(len(self._names)):
                self._flags[slot * self._consumers + consumer] = 0
            self._cond.notify_all()

    def close(self) -> None:
        """Unlink every block (idempotent; also runs at interpreter exit).

        Safe while workers are still attached: POSIX keeps an unlinked
        segment alive until the last map closes, so a worker finishing
        its final batch is unaffected while the names (and ``/dev/shm``
        entries) disappear immediately.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - lingering view
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []


class TransportFeed:
    """Iterate a worker's input queue until the ``None`` sentinel.

    Transport-agnostic successor of the queue-only feed: shared-memory
    descriptors come back as zero-copy :class:`EdgeBatch` views
    (released as soon as the consumer advances past them), raw arrays
    as plain batches, anything else (tuple lists) verbatim. Tracks
    sentinel consumption so the error path knows whether
    :meth:`drain` still owes the parent queue space -- and drain
    releases any descriptors it swallows, so a worker failing mid-run
    never strands ring slots.
    """

    def __init__(self, queue, client: ShmRingClient | None = None) -> None:
        self._queue = queue
        self._client = client
        self.finished = False

    def _is_descriptor(self, item) -> bool:
        return (
            type(item) is tuple
            and len(item) == 3
            and item[0] == DESCRIPTOR_TAG
        )

    def __iter__(self):
        while True:
            item = self._queue.get()
            if item is None:
                self.finished = True
                return
            if self._is_descriptor(item):
                if self._client is None:  # pragma: no cover - protocol bug
                    raise InvalidParameterError(
                        "received a shared-memory descriptor without a ring "
                        "client; parent and worker disagree on the transport"
                    )
                _, slot, rows = item
                try:
                    yield EdgeBatch(self._client.array(slot, rows))
                finally:
                    # Runs when the consumer advances (or abandons the
                    # generator): the batch is done, free the block.
                    self._client.release(slot)
            elif isinstance(item, np.ndarray):
                # (w, 2) arrays come back as plain batches, (w, 3)
                # signed wire arrays split back into edges + signs.
                yield EdgeBatch.from_wire(item)
            else:
                yield item

    def drain(self) -> None:
        """Consume to the sentinel, releasing any ring slots en route."""
        if self.finished:
            return
        while True:
            item = self._queue.get()
            if item is None:
                break
            if self._is_descriptor(item) and self._client is not None:
                self._client.release(item[1])
        self.finished = True


class BatchSender:
    """Parent-side transport policy: ring when possible, pickle otherwise.

    One instance per multiprocess run. ``payload(batch, alive)`` maps
    each stream batch to what goes on the worker queues -- a descriptor
    when the ring takes it, the raw array or tuple list when not -- so
    the calling loop is identical under every transport.
    """

    def __init__(
        self,
        ctx,
        *,
        transport: str,
        consumers: int,
        batch_size: int,
        queue_depth: int,
    ) -> None:
        self.mode = resolve_transport(transport)
        self._ring: ShmRing | None = None
        if self.mode == "shm":
            try:
                self._ring = ShmRing(
                    ctx,
                    slots=RING_SLOTS_PER_DEPTH * queue_depth,
                    block_bytes=max(16, int(batch_size) * 16),
                    consumers=consumers,
                )
            except InvalidParameterError:
                raise
            except Exception:
                if transport.strip().lower() == "shm":
                    raise
                # auto: a platform that probed fine but cannot size the
                # ring (tiny /dev/shm) degrades to the queue path.
                self.mode = "queue"

    def client(self, consumer: int = 0) -> ShmRingClient | None:
        """Worker ``consumer``'s handle (``None`` on the queue path)."""
        return self._ring.client(consumer) if self._ring is not None else None

    def payload(self, batch, alive=None, consumers=None):
        """What to enqueue for ``batch`` under the active transport."""
        if isinstance(batch, EdgeBatch):
            if self._ring is not None:
                # A signed batch's wire form is (w, 3), which the ring
                # declines by shape: turnstile batches automatically
                # ride the pickled fallback, leaving the zero-copy
                # fast path insert-only and untouched.
                descriptor = self._ring.send(batch.wire, alive, consumers)
                if descriptor is not None:
                    return descriptor
            return batch.wire
        return list(batch)

    def descriptor(self, batch, alive=None, consumers=None):
        """A ring descriptor for ``batch``, or ``None`` (no fallback).

        The supervised send loop needs the two payload kinds kept
        apart: a descriptor is enqueued only to the workers it was
        stamped for, everyone else gets :meth:`raw`.
        """
        if self._ring is None or not isinstance(batch, EdgeBatch):
            return None
        return self._ring.send(batch.wire, alive, consumers)

    @staticmethod
    def raw(batch):
        """The pickled-queue payload for ``batch`` (also the replay form)."""
        return batch.wire if isinstance(batch, EdgeBatch) else list(batch)

    def revoke(self, consumer: int) -> None:
        """Free every ring reference ``consumer`` holds (crash recovery)."""
        if self._ring is not None:
            self._ring.revoke(consumer)

    def close(self) -> None:
        if self._ring is not None:
            self._ring.close()


def check_procs_alive(procs) -> None:
    """Raise :class:`WorkerCrashedError` if any worker process died.

    The liveness callback handed to :meth:`ShmRing.send`: a dead
    consumer can never return its ring references, so a parent blocked
    on a full ring must fail the run like the queue path does.
    """
    for i, proc in enumerate(procs):
        if not proc.is_alive():
            raise WorkerCrashedError(
                f"worker {i} died (exitcode {proc.exitcode}) "
                "without reporting a result"
            ) from None
