"""Self-healing supervision for the multiprocess shard runners.

The estimator dimension is embarrassingly parallel *and* bit-exactly
checkpointable, which makes per-shard recovery natural: a worker's
whole contribution to a run is its shard state, a pure function of
(build plan, batches consumed). The supervisor exploits that to turn
:class:`~repro.streaming.sharded.ShardedPipeline` and
:class:`~repro.core.parallel.ParallelTriangleCounter` runs into
executions that survive worker crashes and hangs without losing bit
identity:

- **Snapshots.** Every ``snapshot_every`` batches the parent emits a
  ``sync`` control message down each worker queue; each worker replies
  with its shard's ``state_dict`` once the message surfaces behind the
  batches before it, so the collected snapshot is exactly the state at
  that batch boundary. The parent keeps the raw payload of every batch
  since the last completed snapshot (a bounded replay window). When the
  run is journaled (``ShardedPipeline.run(journal_dir=...)``), the
  in-memory window may additionally be capped
  (:attr:`Supervision.replay_window`): evicted batches are re-read
  from the durable journal during catch-up instead of held in RAM.
- **Detection.** A dead worker is noticed at the next queue ``put``,
  ring wait, sync barrier, or result wait (liveness polls); a *hung*
  worker -- alive but not consuming -- is caught by the optional
  ``worker_deadline`` watchdog on put progress and barrier waits.
- **Recovery.** The failed incarnation is killed and fully excised:
  its input queue is discarded wholesale (a fresh queue replaces it)
  and every shared-memory reference it held is revoked
  (:meth:`~repro.streaming.shm.ShmRing.revoke` -- idempotent flag
  clears, safe at any kill instant). A fresh incarnation is spawned
  after exponential backoff, restored from the snapshot, and fed the
  replay window -- raw arrays, never recycled ring slots -- so it
  rejoins the run in the exact state the dead worker should have had.
  Restore-plus-replay reconstructs the worker's state deterministically,
  so the final merged report is bit-identical to an uninterrupted run.
- **Attribution.** Crashes whose traceback implicates a layer degrade
  it for the respawn: shared-memory errors (or repeated crashes) move
  that worker to pickled queue payloads, numba errors pin the respawn
  to the numpy backend (bit-identical by the backend contract).
- **Bounded retries.** Each worker gets ``max_restarts`` respawns;
  past that the run fails with
  :class:`~repro.errors.RetryExhaustedError` carrying the last worker
  traceback. Every respawn emits a
  :class:`~repro.errors.WorkerRestartedWarning`.

Out-queue messages are tagged with the sender's *incarnation* so a
dead worker's stragglers (a result flushed just before the kill
landed) cannot be attributed to its replacement. Worker faults from an
armed :class:`~repro.streaming.faults.FaultPlan` fire keyed on batch
index and incarnation, which is how the chaos tests drive every one of
these paths deterministically.
"""

from __future__ import annotations

import queue as queue_module
import time
import warnings
from dataclasses import dataclass

from ..errors import (
    InvalidParameterError,
    RetryExhaustedError,
    WorkerRestartedWarning,
)
from . import faults as faults_module
from .batch import EdgeBatch
from .shm import BatchSender, TransportFeed

__all__ = [
    "CTL_TAG",
    "CounterShardProgram",
    "EstimatorShardProgram",
    "ShardSupervisor",
    "Supervision",
]

#: First element of a control tuple on a worker's input queue. Rides
#: the same queues as batches (so ordering is exact) and passes through
#: :class:`TransportFeed` verbatim, like any unknown tuple.
CTL_TAG = "__repro_ctl__"

#: Grace period for a worker that exited cleanly before its result
#: surfaces (the queue feeder may still be flushing).
_CLEAN_EXIT_GRACE = 0.5


@dataclass(frozen=True)
class Supervision:
    """The supervision policy knobs.

    ``max_restarts`` is per worker. ``worker_deadline`` (seconds) arms
    the hang watchdog: a worker making no progress for that long is
    treated as crashed (``None`` disables it -- a merely *dead* worker
    is still detected by liveness polls). ``snapshot_every`` is the
    sync-barrier cadence in batches, which bounds both the replay
    window's memory and the batches re-processed after a crash.
    ``backoff`` is the first respawn delay, doubled per consecutive
    restart of the same worker up to ``backoff_cap``.

    ``replay_window`` caps the *in-memory* replay buffer, in batches.
    It is honored only when the supervisor was handed a journal
    writer: batches past the cap are dropped from memory and recovery
    re-reads them from the journal (every batch is appended upstream
    before it is broadcast, so the journal always covers the window).
    Without a journal the cap is ignored -- dropping would lose the
    only copy. ``None`` keeps the buffer unbounded.
    """

    max_restarts: int = 2
    worker_deadline: float | None = None
    snapshot_every: int = 32
    backoff: float = 0.1
    backoff_cap: float = 5.0
    replay_window: int | None = None


class EstimatorShardProgram:
    """One worker's shard of a :class:`ShardedPipeline` estimator pool.

    A *program* is the picklable recipe a supervised worker runs:
    :meth:`build` constructs fresh state deterministically (so a
    respawn before the first snapshot needs no restore at all),
    :meth:`consume` processes one batch, :meth:`state`/:meth:`load`
    snapshot and restore, :meth:`finish` returns what the parent
    merges. ``backend`` pins the kernel backend for (re)spawns --
    recovery sets it to ``"numpy"`` when a crash is attributed to the
    compiled backend.
    """

    def __init__(self, specs, backend: str | None = None) -> None:
        self.specs = [dict(spec) for spec in specs]
        self.backend = backend

    def build(self) -> None:
        if self.backend is not None:
            from ..core.backend import set_backend

            set_backend(self.backend)
        from .sharded import _build_estimators

        self._pairs = _build_estimators(self.specs)
        self._fast = [
            getattr(est, "update_prepared", None) for _, est in self._pairs
        ]
        self._want_context = any(
            fast is not None and getattr(est, "uses_batch_context", True)
            for (_, est), fast in zip(self._pairs, self._fast)
        )
        self._insert_only = [
            name
            for name, est in self._pairs
            if not getattr(est, "supports_deletions", False)
        ]
        self._timings = {name: 0.0 for name, _ in self._pairs}

    def consume(self, batch) -> None:
        prepared = batch if isinstance(batch, EdgeBatch) else None
        if (
            self._insert_only
            and prepared is not None
            and prepared.signs is not None
        ):
            raise InvalidParameterError(
                "signed batch reached insert-only estimator(s) "
                f"{self._insert_only}; deletions would be silently "
                "counted as insertions"
            )
        if prepared is not None and self._want_context:
            prepared.context  # noqa: B018 -- build the shared index once
        for (name, est), fast in zip(self._pairs, self._fast):
            t0 = time.perf_counter()
            if fast is not None and prepared is not None:
                fast(prepared)
            else:
                est.update_batch(batch)
            self._timings[name] += time.perf_counter() - t0

    def state(self) -> dict:
        return {name: est.state_dict() for name, est in self._pairs}

    def load(self, state: dict) -> None:
        for name, est in self._pairs:
            est.load_state_dict(state[name])

    def finish(self):
        return (self.state(), dict(self._timings))


class CounterShardProgram:
    """One worker's estimator shard of a :class:`ParallelTriangleCounter`."""

    def __init__(self, num_estimators, seed_seq, backend: str | None = None) -> None:
        self.num_estimators = num_estimators
        self.seed_seq = seed_seq
        self.backend = backend

    def build(self) -> None:
        if self.backend is not None:
            from ..core.backend import set_backend

            set_backend(self.backend)
        from ..core.vectorized import VectorizedTriangleCounter

        self._counter = VectorizedTriangleCounter(
            self.num_estimators, seed=self.seed_seq
        )

    def consume(self, batch) -> None:
        if isinstance(batch, EdgeBatch):
            self._counter.update_prepared(batch)
        else:
            self._counter.update_batch(batch)

    def state(self) -> dict:
        return self._counter.state_dict()

    def load(self, state: dict) -> None:
        self._counter.load_state_dict(state)

    def finish(self):
        return self._counter.state_dict()


def _supervised_worker(
    in_queue, out_queue, index: int, incarnation: int, program, client, plan
) -> None:
    """The supervised worker loop: batches, control messages, faults.

    Control tuples ride the batch queue so they are ordered exactly
    against the stream: a ``sync`` ack therefore reports the state at
    precisely the batch boundary the parent keyed it on, and a
    ``restore`` lands before any replayed batch. Every out-queue
    message carries this incarnation, letting the parent drop
    stragglers from a predecessor it already killed.
    """
    import pickle
    import traceback

    if plan is not None:
        faults_module.install(plan)
    arm = faults_module.worker_arm(index, incarnation)
    feed = TransportFeed(in_queue, client)
    try:
        program.build()
        batch_no = 0
        for item in feed:
            if type(item) is tuple and len(item) >= 2 and item[0] == CTL_TAG:
                if item[1] == "restore":
                    program.load(item[2])
                    batch_no = item[3]
                elif item[1] == "sync":
                    out_queue.put(
                        ("ckpt", index, incarnation, item[2], program.state())
                    )
                continue
            batch_no += 1
            program.consume(item)
            arm.after_batch(batch_no)
        result = ("ok", program.finish(), None)
    except Exception as exc:
        tb = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:  # pragma: no cover - unpicklable exception
            exc = RuntimeError(tb)
        result = ("error", exc, tb)
    finally:
        if client is not None:
            client.close()
    out_queue.put(("done", index, incarnation, result))


class _WorkerDown(Exception):
    """Internal: worker ``index`` needs recovery (never escapes run())."""

    def __init__(self, index, message, *, exc=None, tb=None, hung=False):
        super().__init__(message)
        self.index = index
        self.exc = exc
        self.tb = tb
        self.hung = hung


class ShardSupervisor:
    """Parent-side supervision of one multiprocess shard run.

    Owns the workers, their queues, and the batch transport. The
    caller hands one *program* per worker and the batch iterable;
    :meth:`run` returns each program's :meth:`finish` value, in worker
    order, having survived (bounded) crashes and hangs along the way.
    """

    def __init__(
        self,
        ctx,
        programs,
        *,
        transport: str,
        batch_size: int,
        queue_depth: int = 4,
        policy: Supervision | None = None,
        fault_plan=None,
        journal=None,
    ) -> None:
        self._ctx = ctx
        self._programs = list(programs)
        self._n = len(self._programs)
        self._policy = policy or Supervision()
        self._plan = (
            fault_plan if fault_plan is not None else faults_module.active_plan()
        )
        self._queue_depth = queue_depth
        self._sender = BatchSender(
            ctx,
            transport=transport,
            consumers=self._n,
            batch_size=batch_size,
            queue_depth=queue_depth,
        )
        self._in_queues = [
            ctx.Queue(maxsize=queue_depth) for _ in range(self._n)
        ]
        self._out_queue = ctx.Queue()
        self._procs: list = [None] * self._n
        self._incarnations = [0] * self._n
        self._restarts = [0] * self._n
        self._degraded = [False] * self._n  # queue payloads only
        self._snapshot_states: list = [None] * self._n
        self._snapshot_batch = 0
        self._replay: list = []  # raw payloads since the last snapshot
        # The durable side of the replay window: when a journal writer
        # is present (batches are appended upstream, before broadcast),
        # the in-memory buffer may be capped (policy.replay_window) and
        # catch-up re-reads the dropped prefix from the journal,
        # starting after the position recorded at the last snapshot.
        self._journal = journal
        self._snapshot_journal_pos = (
            None if journal is None else journal.position()
        )
        self._replay_dropped = 0
        self._global_batch = 0
        self._sync_pending: int | None = None
        self._sentinel_sent = False
        self._acks: dict[int, tuple] = {}
        self._finals: dict[int, object] = {}
        self._last_tb: str | None = None

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self, batches) -> list:
        """Drive ``batches`` through the workers; return their finals."""
        try:
            for i in range(self._n):
                self._spawn(i)
            for batch in batches:
                self._broadcast(batch)
                if (
                    self._policy.snapshot_every
                    and self._global_batch % self._policy.snapshot_every == 0
                ):
                    self._sync()
            self._finish()
        finally:
            self._shutdown()
        return [self._finals[i] for i in range(self._n)]

    @property
    def restarts(self) -> list[int]:
        """Per-worker restart counts (for reporting and benchmarks)."""
        return list(self._restarts)

    # ------------------------------------------------------------------
    # send loop
    # ------------------------------------------------------------------
    def _broadcast(self, batch) -> None:
        self._global_batch += 1
        raw = BatchSender.raw(batch)
        self._replay.append(raw)
        cap = self._policy.replay_window
        if (
            self._journal is not None
            and not self._journal.degraded
            and cap is not None
            and len(self._replay) > cap
        ):
            # Journal-backed eviction: the dropped prefix stays
            # recoverable on disk (append-before-broadcast upstream).
            drop = len(self._replay) - cap
            del self._replay[:drop]
            self._replay_dropped += drop
        pending = set(range(self._n))
        descriptor = None
        stamped: set[int] = set()
        while pending:
            try:
                self._poll_out()
                if descriptor is None:
                    shm_now = sorted(
                        i for i in pending if not self._degraded[i]
                    )
                    if shm_now:
                        descriptor = self._sender.descriptor(
                            batch,
                            alive=self._ring_alive(),
                            consumers=shm_now,
                        )
                        stamped = set(shm_now) if descriptor is not None else set()
                for i in sorted(pending):
                    self._put(i, descriptor if i in stamped else raw)
                    pending.discard(i)
            except _WorkerDown as down:
                # Recovery replays the window, which already includes
                # this batch -- the respawned worker is fully caught up.
                self._recover(down)
                pending.discard(down.index)
                stamped.discard(down.index)

    def _ring_alive(self):
        """The liveness callback for a blocked ring wait.

        Invoked about once a second while the ring is full: surfaces
        queued worker errors, notices silent deaths, and -- with a
        deadline armed -- escalates a wait that outlives it to the
        most-backlogged worker (the one not consuming its queue).
        """
        started = time.monotonic()

        def alive():
            self._poll_out()
            self._check_alive()
            deadline = self._policy.worker_deadline
            if deadline is not None and time.monotonic() - started > deadline:
                culprit = self._stalled_worker()
                raise _WorkerDown(
                    culprit,
                    f"worker {culprit} held the ring past the "
                    f"{deadline:.1f}s deadline (hung?)",
                    hung=True,
                )

        return alive

    def _stalled_worker(self) -> int:
        """Best guess at the hung consumer: the fullest input queue."""
        candidates = [i for i in range(self._n) if i not in self._finals]
        try:
            return max(candidates, key=lambda i: self._in_queues[i].qsize())
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return candidates[0]

    def _put(self, i: int, item) -> None:
        """Bounded put with liveness polling and the deadline watchdog."""
        start = time.monotonic()
        while True:
            try:
                self._in_queues[i].put(item, timeout=0.2)
                return
            except queue_module.Full:
                self._poll_out()
                proc = self._procs[i]
                if proc is not None and not proc.is_alive():
                    self._grace_poll(i)
                    raise _WorkerDown(
                        i, f"worker {i} died (exitcode {proc.exitcode})"
                    )
                deadline = self._policy.worker_deadline
                if deadline is not None and time.monotonic() - start > deadline:
                    raise _WorkerDown(
                        i,
                        f"worker {i} consumed nothing for {deadline:.1f}s "
                        "(deadline exceeded)",
                        hung=True,
                    )

    # ------------------------------------------------------------------
    # out-queue handling
    # ------------------------------------------------------------------
    def _poll_out(self, block: bool = False, timeout: float = 0.2) -> None:
        """Drain worker messages; raise ``_WorkerDown`` on an error result.

        Messages from stale incarnations -- a straggler the kill beat
        to the queue -- are dropped on the incarnation tag.
        """
        while True:
            try:
                if block:
                    block = False
                    msg = self._out_queue.get(timeout=timeout)
                else:
                    msg = self._out_queue.get_nowait()
            except queue_module.Empty:
                return
            kind, i, incarnation = msg[0], msg[1], msg[2]
            if incarnation != self._incarnations[i]:
                continue
            if kind == "ckpt":
                self._acks[i] = (msg[3], msg[4])
            elif kind == "done":
                status, payload, tb = msg[3]
                if status == "ok":
                    self._finals[i] = payload
                else:
                    raise _WorkerDown(
                        i,
                        f"worker {i} failed: {payload!r}",
                        exc=payload,
                        tb=tb,
                    )

    def _grace_poll(self, i: int) -> None:
        """Give a cleanly-exited worker's last message time to surface.

        A worker that raised ships ``("done", ..., error)`` and exits 0;
        the message may still be in the queue feeder's pipe when the
        liveness check sees the dead process. Finding it here turns an
        anonymous "died (exitcode 0)" into the real traceback (raised
        by :meth:`_poll_out` as the better ``_WorkerDown``).
        """
        proc = self._procs[i]
        if proc is None or proc.exitcode != 0:
            return
        deadline = time.monotonic() + _CLEAN_EXIT_GRACE
        while time.monotonic() < deadline and i not in self._finals:
            self._poll_out(block=True, timeout=0.1)

    def _check_alive(self) -> None:
        """Raise ``_WorkerDown`` for any unfinished worker that died."""
        for i, proc in enumerate(self._procs):
            if proc is None or i in self._finals or proc.is_alive():
                continue
            self._grace_poll(i)
            if i in self._finals:
                continue
            raise _WorkerDown(i, f"worker {i} died (exitcode {proc.exitcode})")

    # ------------------------------------------------------------------
    # sync barrier
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Snapshot every worker at this batch boundary; clear the replay."""
        sid = self._global_batch
        self._sync_pending = sid
        pending = set(range(self._n))
        while pending:
            try:
                for i in sorted(pending):
                    self._put(i, (CTL_TAG, "sync", sid))
                    pending.discard(i)
            except _WorkerDown as down:
                # Recovery sends the pending sync ctl itself; a put the
                # failure interrupted (possibly to a *different* worker)
                # stays pending and is retried.
                self._recover(down)
                pending.discard(down.index)
        collected: dict[int, object] = {}
        progress = time.monotonic()
        while len(collected) < self._n:
            try:
                self._poll_out(block=True)
                self._check_alive()
            except _WorkerDown as down:
                self._recover(down)
                progress = time.monotonic()
                continue
            moved = False
            for i, (ack_sid, state) in list(self._acks.items()):
                if ack_sid == sid:
                    collected[i] = state
                    del self._acks[i]
                    moved = True
            if moved:
                progress = time.monotonic()
                continue
            deadline = self._policy.worker_deadline
            if deadline is not None and time.monotonic() - progress > deadline:
                missing = min(i for i in range(self._n) if i not in collected)
                self._recover(
                    _WorkerDown(
                        missing,
                        f"worker {missing} missed the sync barrier for "
                        f"{deadline:.1f}s (hung?)",
                        hung=True,
                    )
                )
                progress = time.monotonic()
        self._sync_pending = None
        self._snapshot_states = [collected[i] for i in range(self._n)]
        self._snapshot_batch = sid
        self._replay.clear()
        self._replay_dropped = 0
        if self._journal is not None:
            # Batches are appended before broadcast, so the write head
            # right now is exactly "after batch ``sid``" -- the start
            # of any journal-backed catch-up from this snapshot.
            self._snapshot_journal_pos = self._journal.position()

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------
    def _finish(self) -> None:
        """Send sentinels and gather finals, recovering to the last."""
        self._sentinel_sent = True
        pending = set(range(self._n))
        while pending:
            try:
                for i in sorted(pending):
                    self._put(i, None)
                    pending.discard(i)
            except _WorkerDown as down:
                # Recovery re-sends the sentinel to the respawn; an
                # interrupted put to another worker stays pending.
                self._recover(down)
                pending.discard(down.index)
        progress = time.monotonic()
        while len(self._finals) < self._n:
            before = len(self._finals)
            try:
                self._poll_out(block=True)
                self._check_alive()
            except _WorkerDown as down:
                self._recover(down)
                progress = time.monotonic()
                continue
            if len(self._finals) > before:
                progress = time.monotonic()
                continue
            deadline = self._policy.worker_deadline
            if deadline is not None and time.monotonic() - progress > deadline:
                missing = min(
                    i for i in range(self._n) if i not in self._finals
                )
                self._recover(
                    _WorkerDown(
                        missing,
                        f"worker {missing} missed the {deadline:.1f}s "
                        "deadline finishing its shard (hung?)",
                        hung=True,
                    )
                )
                progress = time.monotonic()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self, down: _WorkerDown) -> None:
        """Respawn worker ``down.index`` and catch it up, with retries.

        Loops when the fresh incarnation itself dies during catch-up
        (e.g. an ``:always`` fault re-fires on replay), so nested
        failures stay inside recovery instead of leaking the internal
        exception; each turn burns one restart until the budget is
        exhausted.
        """
        i = down.index
        while True:
            if down.tb:
                self._last_tb = down.tb
            self._restarts[i] += 1
            self._kill(i)
            if self._restarts[i] > self._policy.max_restarts:
                raise RetryExhaustedError(
                    f"worker {i} failed {self._restarts[i]} time(s), "
                    f"exhausting max_restarts={self._policy.max_restarts}; "
                    f"last failure: {down}",
                    last_traceback=self._last_tb,
                ) from down.exc
            self._discard_queue(i)
            self._sender.revoke(i)
            detail = self._degrade(i, down)
            if self._replay_dropped:
                detail = (
                    f", {self._replay_dropped} of them re-read from the "
                    f"journal{detail}"
                )
            warnings.warn(
                WorkerRestartedWarning(
                    f"restarting worker {i} "
                    f"(restart {self._restarts[i]}/{self._policy.max_restarts}, "
                    f"replaying {self._replay_dropped + len(self._replay)} "
                    f"batch(es) from the "
                    f"batch-{self._snapshot_batch} snapshot{detail}): {down}"
                ),
                stacklevel=2,
            )
            delay = self._policy.backoff * (2 ** (self._restarts[i] - 1))
            if delay > 0:
                time.sleep(min(delay, self._policy.backoff_cap))
            self._incarnations[i] += 1
            self._acks.pop(i, None)
            self._spawn(i)
            try:
                if self._snapshot_states[i] is not None:
                    self._catchup_put(
                        i,
                        (
                            CTL_TAG,
                            "restore",
                            self._snapshot_states[i],
                            self._snapshot_batch,
                        ),
                    )
                for raw in self._journal_replay():
                    self._catchup_put(i, raw)
                for raw in self._replay:
                    self._catchup_put(i, raw)
                if self._sync_pending is not None:
                    self._catchup_put(i, (CTL_TAG, "sync", self._sync_pending))
                if self._sentinel_sent:
                    self._catchup_put(i, None)
                return
            except _WorkerDown as nested:
                down = self._attribute_catchup_death(nested)

    def _journal_replay(self):
        """Raw payloads for the window prefix evicted to the journal.

        Re-reads exactly the ``_replay_dropped`` batches that followed
        the last snapshot's journal position -- the records between the
        disk prefix and the in-memory ``_replay`` suffix are the same
        batches, so the ``limit`` keeps the two from overlapping. The
        journal's own appends happened *before* broadcast, so every
        evicted batch is guaranteed present.
        """
        if self._replay_dropped == 0 or self._journal is None:
            return
        from .journal import journal_records

        self._journal.sync()
        for batch, _position in journal_records(
            self._journal.directory,
            start=self._snapshot_journal_pos,
            limit=self._replay_dropped,
        ):
            yield BatchSender.raw(batch)

    def _attribute_catchup_death(self, down: _WorkerDown) -> _WorkerDown:
        """Upgrade an anonymous catch-up death with its shipped error.

        :meth:`_catchup_put` never polls the out queue (recovery must
        not re-enter itself), so a worker that raised during replay
        surfaces as a clean-exit death with no cause attached -- while
        its ``done``-error sits in the out queue. Fish that message out
        so budget exhaustion reports the real exception and traceback.
        Another worker's error found on the way is re-queued for the
        next regular poll (out-queue handling is associative, so
        reordering is safe).
        """
        i = down.index
        proc = self._procs[i]
        if down.exc is not None or down.hung or proc is None or proc.exitcode != 0:
            return down
        found = None
        requeue = []
        deadline = time.monotonic() + _CLEAN_EXIT_GRACE
        while found is None and time.monotonic() < deadline:
            try:
                msg = self._out_queue.get(timeout=0.1)
            except queue_module.Empty:
                continue
            kind, worker, incarnation = msg[0], msg[1], msg[2]
            if incarnation != self._incarnations[worker]:
                continue
            if kind == "ckpt":
                self._acks[worker] = (msg[3], msg[4])
                continue
            status, payload, tb = msg[3]
            if status == "ok":
                self._finals[worker] = payload
            elif worker == i:
                found = _WorkerDown(
                    i, f"worker {i} failed: {payload!r}", exc=payload, tb=tb
                )
            else:
                requeue.append(msg)
        for msg in requeue:
            self._out_queue.put(msg)
        return found or down

    def _degrade(self, i: int, down: _WorkerDown) -> str:
        """Apply layer degradation for the respawn; describe it."""
        layer = _attribute_layer(down)
        if layer == "backend" and getattr(self._programs[i], "backend", None) != "numpy":
            self._programs[i].backend = "numpy"
            return "; numba implicated, pinning its backend to numpy"
        if (
            not self._degraded[i]
            and self._sender.mode == "shm"
            and (layer == "shm" or self._restarts[i] >= 2)
        ):
            self._degraded[i] = True
            why = (
                "shared memory implicated"
                if layer == "shm"
                else "repeated failures"
            )
            return f"; {why}, degrading it to queue payloads"
        return ""

    def _catchup_put(self, i: int, item) -> None:
        """Put to a freshly respawned worker (own liveness + deadline only).

        Unlike :meth:`_put` this never polls the out queue: recovery
        must not re-enter itself on *another* worker's error mid
        catch-up -- that error is simply picked up by the next regular
        poll once this worker is whole again.
        """
        start = time.monotonic()
        while True:
            try:
                self._in_queues[i].put(item, timeout=0.2)
                return
            except queue_module.Full:
                proc = self._procs[i]
                if proc is not None and not proc.is_alive():
                    raise _WorkerDown(
                        i,
                        f"worker {i} died again during catch-up "
                        f"(exitcode {proc.exitcode})",
                    )
                deadline = self._policy.worker_deadline
                if deadline is not None and time.monotonic() - start > deadline:
                    raise _WorkerDown(
                        i,
                        f"worker {i} hung again during catch-up "
                        f"({deadline:.1f}s deadline)",
                        hung=True,
                    )

    # ------------------------------------------------------------------
    # process plumbing
    # ------------------------------------------------------------------
    def _spawn(self, i: int) -> None:
        client = None if self._degraded[i] else self._sender.client(i)
        proc = self._ctx.Process(
            target=_supervised_worker,
            args=(
                self._in_queues[i],
                self._out_queue,
                i,
                self._incarnations[i],
                self._programs[i],
                client,
                self._plan,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[i] = proc

    def _kill(self, i: int) -> None:
        proc = self._procs[i]
        if proc is None:
            return
        self._procs[i] = None
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
        proc.join(timeout=10.0)

    def _discard_queue(self, i: int) -> None:
        """Replace the worker's queue wholesale (no drain races).

        Whatever the dead incarnation left unconsumed -- batches,
        control messages, ring descriptors -- is abandoned with the old
        queue; descriptors are reclaimed by the revoke that follows.
        """
        old = self._in_queues[i]
        self._in_queues[i] = self._ctx.Queue(maxsize=self._queue_depth)
        try:
            old.cancel_join_thread()
            old.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def _shutdown(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc is None:
                continue
            try:
                self._in_queues[i].put_nowait(None)
            except Exception:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5.0)
        self._sender.close()
        for q in self._in_queues:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


def _attribute_layer(down: _WorkerDown) -> str | None:
    """Which layer (if any) the crash evidence implicates."""
    text = " ".join(
        part
        for part in (down.tb, repr(down.exc) if down.exc else "", str(down))
        if part
    ).lower()
    if "numba" in text:
        return "backend"
    if any(
        marker in text
        for marker in ("shared_memory", "sharedmemory", "/dev/shm", "shmring")
    ):
        return "shm"
    return None
