"""Columnar edge batches: the unit that flows from sources to estimators.

The paper's throughput experiments are all about edges/second, and at
Python scale the per-edge constant factor -- tuple allocation, per-batch
``np.asarray`` calls, repeated validation -- dominates the array math.
:class:`EdgeBatch` eliminates that overhead structurally: a batch is a
canonicalized, validated ``(w, 2)`` int64 array, built **once** when the
stream is read, and every consumer shares it.

Two cached views serve the two kinds of consumers:

- vectorized engines read the ``u`` / ``v`` columns directly and share
  the :class:`BatchContext` per-batch index (built lazily, exactly once,
  no matter how many estimators a
  :class:`~repro.streaming.pipeline.Pipeline` fans out to);
- per-edge Python engines iterate the batch, which materializes the
  plain ``(u, v)`` tuple list once (:meth:`EdgeBatch.tuples`) and reuses
  it for every such consumer.

:class:`BatchContext` is the per-batch index formerly private to
:mod:`repro.core.vectorized` (``_BatchContext``), hoisted here so the
streaming layer can build it once per batch and hand it to every
fan-out estimator. All positions it reports are *local* (1-based within
the batch); engines add their own stream offset, so one context is
valid for every consumer regardless of its ``edges_seen``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["EdgeBatch", "BatchContext", "VERTEX_LIMIT", "rebatch_arrays"]

#: Vertex ids must fit in 31 bits so an edge packs into one int64 key.
VERTEX_LIMIT = np.int64(1) << 31


class EdgeBatch(Sequence):
    """A canonicalized, validated ``(w, 2)`` int64 batch of stream edges.

    Construct with :meth:`from_edges` (validates and canonicalizes any
    edge sequence or array); the plain constructor trusts its input --
    it is for sources and engines that already hold canonical arrays
    (slices of a validated stream, arrays shipped between processes).

    Behaves as a ``Sequence`` of canonical ``(u, v)`` tuples, so every
    per-edge consumer (exact counters, clique/window estimators,
    baselines) iterates it unchanged; the tuple list is materialized
    lazily, once, and shared by all of them.

    Turnstile streams attach an optional ``signs`` column: a ``(w,)``
    int8 array of ``+1`` (insert) / ``-1`` (delete) entries, canonical
    alongside the edge columns (the min/max swap never touches it).
    ``signs is None`` means insert-only, and every insert-only code
    path -- construction, slicing, context building, transport -- is
    byte-for-byte what it was before signs existed.
    """

    __slots__ = ("array", "signs", "_tuples", "_context")

    def __init__(self, array: np.ndarray, signs: np.ndarray | None = None) -> None:
        self.array = array
        self.signs = signs
        self._tuples: list[tuple[int, int]] | None = None
        self._context: BatchContext | None = None

    @classmethod
    def from_edges(cls, edges, signs=None) -> "EdgeBatch":
        """Validate and canonicalize any edge collection into a batch.

        Accepts an existing :class:`EdgeBatch` (returned as-is), an
        ``(w, 2)`` array, any sequence of ``(u, v)`` pairs, or -- for
        turnstile streams -- an ``(w, 3)`` array whose third column
        holds ``+1`` / ``-1`` signs (equivalently, pass ``signs=``
        alongside an ``(w, 2)`` input). Raises
        :class:`~repro.errors.InvalidParameterError` on self-loops, on
        vertex ids outside ``[0, 2^31)``, on a non-``(w, 2)`` shape
        (the same contract the vectorized engine always enforced), and
        on sign values other than ``+1`` / ``-1``.
        """
        if isinstance(edges, EdgeBatch):
            if signs is not None:
                raise InvalidParameterError(
                    "cannot attach signs to an existing EdgeBatch"
                )
            return edges
        arr = np.asarray(edges, dtype=np.int64)
        if signs is None and arr.ndim == 2 and arr.shape[1] == 3:
            signs, arr = arr[:, 2], arr[:, :2]
        if signs is not None:
            signs = np.asarray(signs)
            if signs.ndim != 1 or signs.shape[0] != arr.shape[0]:
                raise InvalidParameterError(
                    "signs must be a (w,) column matching the edge batch"
                )
        if arr.size == 0:
            empty = np.empty((0, 2), dtype=np.int64)
            if signs is not None:
                return cls(empty, np.empty(0, dtype=np.int8))
            return cls(empty)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise InvalidParameterError("batch must be an (w, 2) array of edges")
        if (arr < 0).any() or (arr >= VERTEX_LIMIT).any():
            raise InvalidParameterError("vertex ids must be in [0, 2^31)")
        u, v = arr[:, 0], arr[:, 1]
        if (u == v).any():
            raise InvalidParameterError("self-loops are not allowed")
        if signs is not None:
            if not np.isin(signs, (-1, 1)).all():
                raise InvalidParameterError("signs must be +1 or -1")
            signs = np.ascontiguousarray(signs, dtype=np.int8)
        if (u < v).all():
            return cls(arr, signs)  # already canonical: keep zero-copy
        out = np.empty_like(arr)
        np.minimum(u, v, out=out[:, 0])
        np.maximum(u, v, out=out[:, 1])
        return cls(out, signs)

    @classmethod
    def from_wire(cls, array: np.ndarray) -> "EdgeBatch":
        """Rebuild a batch from its transport array (see :attr:`wire`).

        The counterpart of :attr:`wire` for arrays that crossed a
        process boundary: ``(w, 2)`` arrays come back as plain
        insert-only batches, ``(w, 3)`` arrays split back into edge
        columns plus the int8 sign column. Trusts its input (the wire
        array was canonical when it was sent).
        """
        if array.ndim == 2 and array.shape[1] == 3:
            return cls(array[:, :2], array[:, 2].astype(np.int8))
        return cls(array)

    @property
    def wire(self) -> np.ndarray:
        """The batch as one transport-ready int64 array.

        Insert-only batches ship their ``(w, 2)`` array unchanged (the
        zero-copy path); signed batches widen to ``(w, 3)`` with the
        sign column attached, which the shared-memory ring deliberately
        declines -- signed batches ride the pickled fallback, keeping
        the zero-copy fast path insert-only and untouched.
        """
        if self.signs is None:
            return self.array
        out = np.empty((len(self), 3), dtype=np.int64)
        out[:, :2] = self.array
        out[:, 2] = self.signs
        return out

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------
    @property
    def u(self) -> np.ndarray:
        """The smaller endpoints (the canonical ``min`` column)."""
        return self.array[:, 0]

    @property
    def v(self) -> np.ndarray:
        """The larger endpoints (the canonical ``max`` column)."""
        return self.array[:, 1]

    @property
    def context(self) -> "BatchContext":
        """The shared per-batch index, built lazily exactly once."""
        if self._context is None:
            if self.signs is None:
                self._context = BatchContext(self.u, self.v)
            else:
                self._context = BatchContext(self.u, self.v, self.signs)
        return self._context

    # ------------------------------------------------------------------
    # sequence-of-tuples behaviour (the per-edge consumer surface)
    # ------------------------------------------------------------------
    def tuples(self) -> list[tuple[int, int]]:
        """The batch as plain ``(u, v)`` tuples (materialized once)."""
        if self._tuples is None:
            self._tuples = list(map(tuple, self.array.tolist()))
        return self._tuples

    def __len__(self) -> int:
        return self.array.shape[0]

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.tuples())

    def __getitem__(self, index):
        if isinstance(index, slice):
            if self.signs is None:
                return EdgeBatch(self.array[index])
            return EdgeBatch(self.array[index], self.signs[index])
        u, v = self.array[index]
        return (int(u), int(v))

    def __eq__(self, other) -> bool:
        if isinstance(other, EdgeBatch):
            if not np.array_equal(self.array, other.array):
                return False
            if self.signs is None and other.signs is None:
                return True
            if self.signs is None or other.signs is None:
                return False
            return np.array_equal(self.signs, other.signs)
        if isinstance(other, Sequence) and not isinstance(other, (str, bytes)):
            return self.tuples() == list(other)
        return NotImplemented

    __hash__ = None  # mutable array payload

    def __repr__(self) -> str:
        kind = " signed" if self.signs is not None else ""
        return f"EdgeBatch(<{len(self)}{kind} edges>)"

    def batches(self, batch_size: int) -> Iterator["EdgeBatch"]:
        """Yield consecutive zero-copy slices of ``batch_size`` edges."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, len(self), batch_size):
            if self.signs is None:
                yield EdgeBatch(self.array[start : start + batch_size])
            else:
                yield EdgeBatch(
                    self.array[start : start + batch_size],
                    self.signs[start : start + batch_size],
                )


def rebatch_arrays(
    arrays: Iterator[np.ndarray] | Sequence[np.ndarray], batch_size: int
) -> Iterator[np.ndarray]:
    """Regroup a stream of irregular ``(n, 2)`` arrays into exact batches.

    Chunked parsers produce arrays whose sizes depend on text-block
    boundaries; estimators need deterministic batch boundaries
    (``ceil(m / batch_size)`` batches, all but the last exactly
    ``batch_size``) so a file-fed run consumes its RNG identically to a
    memory-fed one. Only ``O(batch + chunk)`` edges are held at a time.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    buffer: list[np.ndarray] = []
    buffered = 0
    for arr in arrays:
        if not arr.shape[0]:
            continue
        buffer.append(arr)
        buffered += arr.shape[0]
        if buffered < batch_size:
            continue
        merged = np.concatenate(buffer) if len(buffer) > 1 else buffer[0]
        start = 0
        while merged.shape[0] - start >= batch_size:
            yield merged[start : start + batch_size]
            start += batch_size
        rest = merged[start:]
        buffer = [rest] if rest.shape[0] else []
        buffered = rest.shape[0]
    if buffered:
        yield np.concatenate(buffer) if len(buffer) > 1 else buffer[0]


def _kernel_backend():
    """The active kernel backend, imported lazily.

    Deferred to call time (not module import) because
    ``repro.core.__init__`` imports :mod:`repro.core.parallel`, which
    imports this module -- an import-time hop into ``repro.core`` from
    here would make that cycle order-dependent.
    """
    from ..core.backend import active

    return active()


def _lookup_sorted(
    queries: np.ndarray,
    sorted_ref: np.ndarray,
    values: np.ndarray,
    *,
    offset: int = 0,
) -> np.ndarray:
    """``values[i] + offset`` where ``sorted_ref[i] == query`` else 0.

    The shared binary-search kernel behind ``final_degree`` and
    ``position_in_batch`` (they must stay behaviorally identical for
    the engines' bit-identity contract), dispatched through the active
    backend. ``sorted_ref`` must be non-empty; duplicate reference keys
    resolve to the first (the ``searchsorted`` left side).
    """
    return _kernel_backend().lookup_sorted(queries, sorted_ref, values, offset)


class BatchContext:
    """Per-batch indexes shared by every estimator consuming the batch.

    Precomputes, from the canonical column arrays ``bu`` / ``bv``:

    - per-edge running endpoint degrees (``deg_at_edge_u/v``), i.e. the
      paper's ``deg`` table at each EVENTA;
    - the (vertex, occurrence) -> edge-index decoder for EVENTB
      subscriptions (table ``P``);
    - the sorted edge-key index for closing-edge (table ``Q``) lookups.

    The context is position-free: lookups report 1-based positions
    *within the batch* and callers add their own stream offset, so one
    context serves every fan-out estimator regardless of how many edges
    each has seen.

    Implementation notes. The stable (vertex, time) event sort is done
    as a single ``np.sort`` over packed ``(value << bits) | index`` keys
    -- considerably faster than a stable ``argsort`` -- and the same
    trick orders the edge keys whenever the ids are small enough to
    share an int64 with the index bits (stable ``argsort`` fallback
    otherwise). When the vertex-id space is compact, degree and
    group-start lookups use dense gather tables instead of per-query
    binary search.
    """

    __slots__ = (
        "bu",
        "bv",
        "signs",
        "_sign_delta",
        "_insert_mask",
        "_delete_mask",
        "deg_at_edge_u",
        "deg_at_edge_v",
        "_uniq_verts",
        "_group_starts",
        "_uniq_counts",
        "_event_order",
        "_key_order",
        "_sorted_keys",
        "_deg_table",
        "_gs_table",
        "_table_hi",
        "_uniq_keys",
        "_uniq_key_pos",
        "_remaining",
        "_decode_bases",
    )

    #: Use dense lookup tables when ``max_id`` is at most this factor of
    #: the batch size (bounds table memory to a few times the batch).
    _DENSE_FACTOR = 8
    _DENSE_MIN = 65_536

    def __init__(
        self, bu: np.ndarray, bv: np.ndarray, signs: np.ndarray | None = None
    ) -> None:
        self.bu = bu
        self.bv = bv
        self.signs = signs
        self._sign_delta = None
        self._insert_mask = None
        self._delete_mask = None
        w = bu.shape[0]
        n = 2 * w

        # Endpoint event array: events 2j (u of edge j) and 2j+1 (v of
        # edge j). Sorting packed (vertex << bits) | event keys gives the
        # stable (vertex, time) order and the inverse permutation in one
        # quicksort: the low bits *are* the original event index.
        kb = _kernel_backend()
        events = np.empty(n, dtype=np.int64)
        events[0::2] = bu
        events[1::2] = bv
        shift = np.int64(max(1, int(max(n - 1, 1)).bit_length()))
        packed = kb.pack_index_sort(events, shift)
        order = packed & ((np.int64(1) << shift) - 1)
        sorted_events = packed >> shift

        is_start = np.ones(n, dtype=bool)
        if n:
            is_start[1:] = sorted_events[1:] != sorted_events[:-1]
        group_starts = np.flatnonzero(is_start)
        counts = np.diff(np.append(group_starts, n))
        # Rank of each event within its vertex group = running degree.
        rank = np.arange(n, dtype=np.int64) - np.repeat(group_starts, counts) + 1
        occ = np.empty(n, dtype=np.int64)
        occ[order] = rank
        self.deg_at_edge_u = occ[0::2]
        self.deg_at_edge_v = occ[1::2]

        self._uniq_verts = sorted_events[is_start]
        self._group_starts = group_starts
        self._uniq_counts = counts
        self._event_order = order

        # Dense degree / group-start tables (index = vertex id + 1, with
        # zero sentinels at both ends so -1 and too-large queries read 0).
        max_id = int(self._uniq_verts[-1]) if w else -1
        if 0 <= max_id <= max(self._DENSE_MIN, self._DENSE_FACTOR * n):
            self._deg_table = np.zeros(max_id + 3, dtype=np.int64)
            self._gs_table = np.zeros(max_id + 3, dtype=np.int64)
            self._deg_table[self._uniq_verts + 1] = counts
            self._gs_table[self._uniq_verts + 1] = group_starts
            self._table_hi = max_id + 2
        else:
            self._deg_table = None
            self._gs_table = None
            self._table_hi = 0

        # Sorted edge keys for closing-edge lookups. The packed-index
        # sort applies whenever (u, v, index) fits one int64; the order
        # (and hence every lookup result) is identical to the stable
        # argsort it replaces.
        keys = (bu << np.int64(32)) | bv
        kbits = int(max(w - 1, 1)).bit_length()
        ubits = int(bu.max()).bit_length() if w else 0
        vbits = int(bv.max()).bit_length() if w else 0
        if w and ubits + vbits + kbits <= 63:
            kshift = np.int64(kbits)
            pk = kb.pack2_index_sort(bu, bv, np.int64(vbits), kshift)
            self._key_order = pk & ((np.int64(1) << kshift) - 1)
            self._sorted_keys = keys[self._key_order]
        else:
            self._key_order = np.argsort(keys, kind="stable")
            self._sorted_keys = keys[self._key_order]

        self._uniq_keys = None
        self._uniq_key_pos = None
        self._remaining = None
        self._decode_bases = None

    # ------------------------------------------------------------------
    # signed (turnstile) views shared by every deletion-aware consumer
    # ------------------------------------------------------------------
    @property
    def insert_mask(self) -> np.ndarray:
        """Boolean mask of the batch's insertions (all-true when unsigned).

        Built lazily, once, and shared by every fan-out estimator that
        partitions the batch into insert/delete halves.
        """
        if self._insert_mask is None:
            if self.signs is None:
                self._insert_mask = np.ones(self.bu.shape[0], dtype=bool)
            else:
                self._insert_mask = self.signs > 0
        return self._insert_mask

    @property
    def delete_mask(self) -> np.ndarray:
        """Boolean mask of the batch's deletions (all-false when unsigned)."""
        if self._delete_mask is None:
            if self.signs is None:
                self._delete_mask = np.zeros(self.bu.shape[0], dtype=bool)
            else:
                self._delete_mask = self.signs < 0
        return self._delete_mask

    @property
    def sign_delta(self) -> np.ndarray:
        """The signs widened to int64 (all-ones when unsigned).

        The per-edge ``+1`` / ``-1`` column in accumulator width, so
        vectorized consumers fold a signed batch with one dot product
        instead of re-widening the int8 column each.
        """
        if self._sign_delta is None:
            if self.signs is None:
                self._sign_delta = np.ones(self.bu.shape[0], dtype=np.int64)
            else:
                self._sign_delta = self.signs.astype(np.int64)
        return self._sign_delta

    # ------------------------------------------------------------------
    # intersection views shared by every watch-index consumer
    # ------------------------------------------------------------------
    @property
    def unique_vertices(self) -> np.ndarray:
        """The batch's distinct endpoints, sorted ascending.

        The query-key set the output-sensitive engine intersects against
        its vertex watch index; computed with the event sort, so it is
        free, and shared by every fan-out estimator.
        """
        return self._uniq_verts

    @property
    def unique_vertex_counts(self) -> np.ndarray:
        """``degB`` of each vertex in :attr:`unique_vertices`.

        Aligned with :attr:`unique_vertices`, so a vertex-watch hit
        (which knows which unique vertex matched) reads the endpoint's
        batch degree with one gather instead of a degree lookup.
        """
        return self._uniq_counts

    @property
    def unique_edge_keys(self) -> np.ndarray:
        """The batch's distinct packed edge keys, sorted ascending.

        The query-key set for closing-edge (table ``Q``) watch lookups.
        Deduplicated from the already-sorted key index, lazily and
        exactly once per batch no matter how many estimators intersect
        against it.
        """
        if self._uniq_keys is None:
            sorted_keys = self._sorted_keys
            if sorted_keys.shape[0] == 0:
                self._uniq_keys = sorted_keys
                self._uniq_key_pos = sorted_keys
            else:
                keep = np.empty(sorted_keys.shape[0], dtype=bool)
                keep[0] = True
                np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=keep[1:])
                first = np.flatnonzero(keep)
                self._uniq_keys = sorted_keys[first]
                # The key sort is stable by batch position, so the head
                # of each key group is the key's first occurrence.
                self._uniq_key_pos = self._key_order[first] + 1
        return self._uniq_keys

    @property
    def unique_edge_key_positions(self) -> np.ndarray:
        """1-based first-occurrence position of each unique edge key.

        Aligned with :attr:`unique_edge_keys`;
        ``position_in_batch``'s answer for exactly those keys, exposed
        so a watch-index hit (which already knows *which* unique key
        matched) reads its closing position with one gather instead of
        a fresh binary search.
        """
        if self._uniq_key_pos is None:
            self.unique_edge_keys  # noqa: B018 -- builds both caches
        return self._uniq_key_pos

    @property
    def remaining_degrees(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge ``degB(endpoint) - deg-at-arrival`` for both columns.

        ``remaining_degrees[0][j]`` is how many later batch edges touch
        ``bu[j]`` (and ``[1][j]`` for ``bv[j]``) -- the per-edge form of
        Observation 3.6's ``a``/``b`` candidate counts. An estimator
        whose ``r1`` was resampled to batch edge ``j`` reads its counts
        with one gather instead of recomputing degree lookups per slot;
        computed lazily, once, and shared across the fan-out.
        """
        if self._remaining is None:
            self._remaining = (
                self.final_degree(self.bu) - self.deg_at_edge_u,
                self.final_degree(self.bv) - self.deg_at_edge_v,
            )
        return self._remaining

    @property
    def event_decode_bases(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge base offsets for Algorithm 3's EVENTB decode.

        For an estimator whose ``r1`` is batch edge ``j`` and whose phi
        draw is ``phi`` (with ``a = remaining_degrees[0][j]`` new
        candidates on the ``u`` side), the selected EVENTB's position in
        the sorted endpoint-event array is ``bases[0][j] + phi`` when
        ``phi <= a`` and ``bases[1][j] + phi`` otherwise; the edge index
        is then ``event_order[...] // 2``. Equivalent to (and verified
        against) :meth:`event_edge_index` on ``(v, beta + phi - ...)``
        queries, but a pure per-edge table, so a wholesale-resampled
        estimator pool decodes with two gathers per slot instead of
        per-slot degree lookups.
        """
        if self._decode_bases is None:
            if self._gs_table is not None:
                gs_u = self._gs_table[self.bu + 1]
                gs_v = self._gs_table[self.bv + 1]
            else:
                gs_u = self._group_starts[
                    np.searchsorted(self._uniq_verts, self.bu)
                ]
                gs_v = self._group_starts[
                    np.searchsorted(self._uniq_verts, self.bv)
                ]
            remaining_u, _ = self.remaining_degrees
            self._decode_bases = (
                gs_u + self.deg_at_edge_u - 1,
                gs_v + self.deg_at_edge_v - remaining_u - 1,
            )
        return self._decode_bases

    @property
    def event_order(self) -> np.ndarray:
        """The inverse event permutation behind :attr:`event_decode_bases`."""
        return self._event_order

    def final_degree(self, verts: np.ndarray) -> np.ndarray:
        """``degB(v)`` for each query vertex (0 when absent; -1 maps to 0)."""
        if self._deg_table is not None:
            return self._deg_table[np.clip(verts + 1, 0, self._table_hi)]
        if self._uniq_verts.shape[0] == 0:
            return np.zeros(verts.shape[0], dtype=np.int64)
        return _lookup_sorted(verts, self._uniq_verts, self._uniq_counts)

    def event_edge_index(
        self, verts: np.ndarray, d: np.ndarray, degrees: np.ndarray | None = None
    ) -> np.ndarray:
        """Edge index of EVENTB ``(v, d)``: the d-th batch edge touching v.

        Callers guarantee ``1 <= d <= degB(v)`` (Algorithm 3 only
        produces in-range subscriptions). The contract is *verified*,
        with the same guard discipline as :meth:`final_degree`: an
        out-of-range query raises instead of silently reading a
        neighboring vertex group (dense-table path) or an arbitrary
        group (binary-search path). A caller that already holds the
        endpoints' batch degrees (the watch-index path assembles them
        with the candidate hits) passes them as ``degrees`` to spare
        the guard its own lookup; they must equal
        ``final_degree(verts)``.
        """
        if degrees is None:
            degrees = self.final_degree(verts)
        bad = (d < 1) | (d > degrees)
        if bad.any():
            raise InvalidParameterError(
                f"{int(bad.sum())} EVENTB queries out of contract: "
                "need 1 <= d <= degB(v) for a vertex v in the batch"
            )
        # The guard established that every vertex occurs in the batch,
        # so the unclipped table read and the group lookup are in range.
        if self._gs_table is not None:
            event_pos = self._gs_table[verts + 1] + d - 1
        else:
            g = np.searchsorted(self._uniq_verts, verts)
            event_pos = self._group_starts[g] + d - 1
        return self._event_order[event_pos] // 2

    def position_in_batch(self, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
        """1-based batch position of each edge ``(cu, cv)``; 0 if absent.

        ``cu <= cv`` (canonical order) is assumed. Duplicate edges
        resolve to their first occurrence (the stable order).
        """
        return self.position_in_batch_keys((cu << np.int64(32)) | cv)

    def position_in_batch_keys(self, keys: np.ndarray) -> np.ndarray:
        """:meth:`position_in_batch` for already-packed edge keys.

        The watch-driven step 3 computes the packed closing keys anyway
        (the wedge-geometry kernel emits them); this entry point spares
        it re-packing. The empty-batch case is guarded *before* the
        binary search, so the lookup is total.
        """
        if self._sorted_keys.shape[0] == 0:
            return np.zeros(keys.shape[0], dtype=np.int64)
        return _lookup_sorted(keys, self._sorted_keys, self._key_order, offset=1)
