"""The streaming-estimator protocol every consumer codes against.

The paper's algorithms -- triangle counting, transitivity, uniform
sampling, clique counting, windowed variants, and the exact baselines --
all share one observable behaviour: they consume an adjacency stream in
batches and answer queries about what they saw. These protocols make
that contract formal so the :class:`~repro.streaming.pipeline.Pipeline`
runner, the experiment harness, and the CLI can drive any of them
interchangeably (and so alternative estimators from the literature --
e.g. Kallaugher-Price hybrid sampling or Cormode-Jowhari -- can plug in
by implementing two methods).

``isinstance`` checks work at runtime (``@runtime_checkable``), but the
protocols are structural: nothing needs to inherit from them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .batch import EdgeBatch

__all__ = [
    "StreamingEstimator",
    "BatchedEstimator",
    "CheckpointableEstimator",
    "PreparedEstimator",
]

Edge = tuple[int, int]


@runtime_checkable
class StreamingEstimator(Protocol):
    """Anything that eats edge batches and produces a scalar estimate.

    The estimators are *query-at-any-time*: ``estimate`` (and any other
    result query a reporter reads) must be a pure function of the state
    -- no mutation, no generator draws -- because the live snapshot
    surface (:meth:`~repro.streaming.pipeline.Pipeline.snapshots`)
    calls it between batches and the stream must continue exactly as if
    it had not been observed. Queries that *do* consume randomness
    (e.g. drawing one of the sampled triangles) belong in a final-only
    reporter; see ``live_report`` on
    :class:`~repro.streaming.registry.EstimatorSpec`.

    Estimators additionally declare a capability flag:

    ``supports_deletions``
        ``True`` when the estimator understands turnstile (signed)
        batches -- ``update_batch`` honours a batch's ``+1``/``-1``
        sign column and removes deleted edges from its state. Absent or
        ``False`` means insert-only. The flag is deliberately *not* a
        protocol member (that would make every insert-only estimator
        fail ``isinstance`` until it grew the attribute); pipelines
        read it via ``getattr(est, "supports_deletions", False)``
        *before* streaming a signed source and reject the combination
        up front, so a deletion can never be silently counted as an
        insertion.
    """

    def update_batch(self, batch: Sequence[Edge]) -> None:
        """Observe a batch of stream edges (order within the batch counts)."""
        ...

    def estimate(self) -> float:
        """The current aggregated estimate (a pure, repeatable query)."""
        ...


@runtime_checkable
class PreparedEstimator(StreamingEstimator, Protocol):
    """A :class:`StreamingEstimator` with a columnar fast path.

    ``update_prepared`` receives a validated, canonicalized
    :class:`~repro.streaming.batch.EdgeBatch` whose per-batch index
    (``batch.context``) is built at most once and shared by every
    estimator in a :class:`~repro.streaming.pipeline.Pipeline` fan-out,
    so implementors skip conversion, validation, and index construction
    entirely. Must consume randomness identically to ``update_batch``
    on the same edges: the two entry points are interchangeable under a
    fixed seed (the equivalence the test suite asserts).
    """

    def update_prepared(self, batch: "EdgeBatch") -> None:
        """Observe a prepared columnar batch of stream edges."""
        ...


@runtime_checkable
class BatchedEstimator(StreamingEstimator, Protocol):
    """A :class:`StreamingEstimator` that also exposes per-estimator values."""

    def estimates(self) -> Iterable[float]:
        """Per-estimator unbiased estimates (before aggregation)."""
        ...


@runtime_checkable
class CheckpointableEstimator(StreamingEstimator, Protocol):
    """A :class:`StreamingEstimator` whose state can be persisted/shipped.

    The state dict is the entire message a streaming node must persist
    or send (it is literally Alice's message in the Theorem 3.13
    protocol). Three operations make the contract useful in production:

    - ``state_dict`` -- a snapshot built from numpy arrays and
      JSON-serializable values (:mod:`repro.streaming.checkpoint` turns
      it into the versioned npz + manifest on-disk format). The snapshot
      includes the generator state, so restoring it resumes the random
      stream bit-exactly.
    - ``load_state_dict`` -- restore a snapshot in place, adopting the
      snapshot's pool size and configuration wholesale; the estimator
      then continues streaming exactly where the snapshot left off.
    - ``merge`` -- absorb another estimator of the same kind that
      observed the *same* stream (equal ``edges_seen``). Estimators are
      independent, so pools combine by concatenation -- the contract
      that makes the algorithms embarrassingly parallel in the
      estimator dimension and powers
      :class:`~repro.streaming.sharded.ShardedPipeline`.
    """

    def state_dict(self) -> dict[str, Any]:
        """Serializable snapshot of the estimator state."""
        ...

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict` in place."""
        ...

    def merge(self, other: Any) -> None:
        """Absorb ``other``'s estimator pool (same stream, same kind)."""
        ...
