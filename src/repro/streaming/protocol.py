"""The streaming-estimator protocol every consumer codes against.

The paper's algorithms -- triangle counting, transitivity, uniform
sampling, clique counting, windowed variants, and the exact baselines --
all share one observable behaviour: they consume an adjacency stream in
batches and answer queries about what they saw. These protocols make
that contract formal so the :class:`~repro.streaming.pipeline.Pipeline`
runner, the experiment harness, and the CLI can drive any of them
interchangeably (and so alternative estimators from the literature --
e.g. Kallaugher-Price hybrid sampling or Cormode-Jowhari -- can plug in
by implementing two methods).

``isinstance`` checks work at runtime (``@runtime_checkable``), but the
protocols are structural: nothing needs to inherit from them.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

__all__ = [
    "StreamingEstimator",
    "BatchedEstimator",
    "CheckpointableEstimator",
]

Edge = tuple[int, int]


@runtime_checkable
class StreamingEstimator(Protocol):
    """Anything that eats edge batches and produces a scalar estimate."""

    def update_batch(self, batch: Sequence[Edge]) -> None:
        """Observe a batch of stream edges (order within the batch counts)."""
        ...

    def estimate(self) -> float:
        """The current aggregated estimate."""
        ...


@runtime_checkable
class BatchedEstimator(StreamingEstimator, Protocol):
    """A :class:`StreamingEstimator` that also exposes per-estimator values."""

    def estimates(self) -> Iterable[float]:
        """Per-estimator unbiased estimates (before aggregation)."""
        ...


@runtime_checkable
class CheckpointableEstimator(StreamingEstimator, Protocol):
    """A :class:`StreamingEstimator` whose state can be persisted/shipped.

    The state dict is the entire message a streaming node must persist
    or send (it is literally Alice's message in the Theorem 3.13
    protocol); see :mod:`repro.core.checkpoint` for restore and merge.
    """

    def state_dict(self) -> dict[str, Any]:
        """Serializable snapshot of the estimator state."""
        ...
