"""Durable ingest journal: a write-ahead log for edge batches.

Checkpoints (PR 3) make *replayable* sources crash-safe: resume seeks
the file back to the recorded position. A non-replayable source --
stdin, a socket, a follow file whose history rotated away -- cannot be
re-read, so every edge since the last checkpoint dies with the
process. The journal closes that gap with the standard write-ahead
contract: each batch is appended (and flushed to the OS) *before* any
estimator sees it, so a ``kill -9`` can lose at most edges the kernel
never received. On resume the pipeline replays the journal from the
``(segment, offset)`` recorded in the checkpoint manifest and only
then returns to the live source -- exactly once, bit-identical,
because replay re-delivers the *exact* recorded batches in their
original arrival order (the arbitrary-order model the estimators
assume).

Format (native byte order; a journal is a same-machine crash artifact,
not an interchange file):

- segment files ``segment-<seq>.wal``, each starting with an 8-byte
  magic, rotated once they exceed ``max_segment_bytes``;
- one record per batch: a ``<length, crc32>`` header followed by the
  payload -- one flags byte (bit 0: signed) and the batch's int64 wire
  image (``(w, 2)`` unsigned, ``(w, 3)`` turnstile, signs included).

Durability is tiered by the fsync policy:

- ``always``: fsync after every append -- power-loss safe, slowest;
- ``batch`` (default): fsync at rotation, at :meth:`JournalWriter.sync`
  (the pipeline calls it before every checkpoint save, so a manifest
  never references non-durable journal bytes), and on close;
- ``off``: never fsync -- still ``kill -9``-safe (every append is
  flushed to the OS), but an OS crash may lose the tail.

Recovery: opening a journal truncates a *torn tail* (a final record
whose bytes end mid-write) and nothing else; a complete record that
fails its CRC is never silently skipped -- it raises
:class:`~repro.errors.JournalCorruptError`. A full disk degrades the
writer to warn-and-continue (:class:`~repro.errors.JournalWriteWarning`),
mirroring periodic checkpoint saves.

Segments wholly behind the newest checkpoint are dead weight;
:meth:`JournalWriter.compact` unlinks them oldest-first, so a crash
mid-compaction can only leave *extra* segments behind, never remove
one a resume still needs.
"""

from __future__ import annotations

import os
import struct
import time
import warnings
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import InvalidParameterError, JournalCorruptError, JournalWriteWarning
from . import faults as _faults
from .batch import EdgeBatch
from .source import EdgeSource

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "FSYNC_POLICIES",
    "JournalSource",
    "JournalWriter",
    "journal_records",
]

#: fsync policies accepted by :class:`JournalWriter`.
FSYNC_POLICIES = ("always", "batch", "off")

DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024
_MIN_SEGMENT_BYTES = 64

_MAGIC = b"RPRJNL01"
#: Record header: payload length, CRC32 of the payload.
_HEADER = struct.Struct("<II")
_FLAG_SIGNED = 1

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"


def _segment_name(seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def _list_segments(directory: Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` for every segment file, ascending by sequence."""
    found = []
    for path in directory.iterdir():
        name = path.name
        if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
            continue
        stem = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
        try:
            found.append((int(stem), path))
        except ValueError:
            continue
    found.sort()
    return found


def _encode_batch(batch: EdgeBatch) -> bytes:
    flags = _FLAG_SIGNED if batch.signs is not None else 0
    wire = np.ascontiguousarray(batch.wire)
    return bytes([flags]) + wire.tobytes()


def _decode_batch(payload: bytes, where: str) -> EdgeBatch:
    if not payload:
        raise JournalCorruptError(f"{where}: empty journal record payload")
    width = 3 if payload[0] & _FLAG_SIGNED else 2
    body = payload[1:]
    if len(body) % (8 * width):
        raise JournalCorruptError(
            f"{where}: journal record payload is not a whole number of "
            f"{width}-column int64 rows"
        )
    wire = np.frombuffer(body, dtype=np.int64).reshape(-1, width).copy()
    return EdgeBatch.from_wire(wire)


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _scan_segment_tail(path: Path) -> int:
    """The byte offset after the last *complete, valid* record.

    Returns 0 when even the magic is truncated (the segment is rebuilt
    from scratch). A torn trailing record -- header or payload cut
    short -- ends the scan at the last good record. A complete record
    with a CRC mismatch is corruption, not a torn tail, and raises:
    truncating past it would silently discard valid data.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if len(magic) < len(_MAGIC):
            return 0
        if magic != _MAGIC:
            raise JournalCorruptError(f"{path.name}: bad segment magic")
        offset = len(_MAGIC)
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return offset
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length:
                return offset
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise JournalCorruptError(
                    f"{path.name}: CRC mismatch at offset {offset}; a "
                    "complete record failed its checksum -- refusing to "
                    "truncate past it"
                )
            offset += _HEADER.size + length


def journal_records(
    directory, *, start: tuple[int, int] | None = None, limit: int | None = None
) -> Iterator[tuple[EdgeBatch, tuple[int, int]]]:
    """Replay ``(batch, (segment, offset))`` pairs from a journal.

    ``start`` is a position as recorded in a checkpoint manifest: the
    replay begins at the first record *after* it (positions name the
    byte offset following a record). With ``start=None`` the whole
    journal replays. ``offset`` in each yielded pair is again the
    offset after that record, so it can be stored directly.

    A torn trailing record in the *final* segment ends the iteration
    (it is recoverable: the writer truncates it on open). Anything
    else -- CRC mismatch, a short record mid-journal, a missing
    segment inside the replay range -- raises
    :class:`~repro.errors.JournalCorruptError`.
    """
    directory = Path(directory)
    segments = _list_segments(directory)
    if start is not None:
        start_seq, start_offset = int(start[0]), int(start[1])
        if segments and start_seq > segments[-1][0]:
            raise JournalCorruptError(
                f"journal position (segment {start_seq}) is beyond the "
                f"newest segment {segments[-1][0]}; wrong --journal "
                "directory for this checkpoint?"
            )
        segments = [(seq, path) for seq, path in segments if seq >= start_seq]
        if not segments and start is not None:
            raise JournalCorruptError(
                f"journal segment {start_seq} referenced by the checkpoint "
                "is missing (compacted or deleted)"
            )
        if segments and segments[0][0] != start_seq:
            raise JournalCorruptError(
                f"journal segment {start_seq} referenced by the checkpoint "
                "is missing (compacted or deleted)"
            )
    for prev, cur in zip(segments, segments[1:]):
        if cur[0] != prev[0] + 1:
            raise JournalCorruptError(
                f"journal has a gap: segment {prev[0]} is followed by "
                f"{cur[0]}"
            )
    yielded = 0
    for index, (seq, path) in enumerate(segments):
        final = index == len(segments) - 1
        offset = start_offset if (start is not None and seq == start_seq) else len(_MAGIC)
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if len(magic) < len(_MAGIC):
                if final:
                    return
                raise JournalCorruptError(f"{path.name}: truncated segment magic")
            if magic != _MAGIC:
                raise JournalCorruptError(f"{path.name}: bad segment magic")
            handle.seek(offset)
            while True:
                header = handle.read(_HEADER.size)
                if not header:
                    break
                if len(header) < _HEADER.size:
                    if final:
                        return
                    raise JournalCorruptError(
                        f"{path.name}: truncated record header at offset "
                        f"{offset} in a non-final segment"
                    )
                length, crc = _HEADER.unpack(header)
                payload = handle.read(length)
                if len(payload) < length:
                    if final:
                        return
                    raise JournalCorruptError(
                        f"{path.name}: truncated record payload at offset "
                        f"{offset} in a non-final segment"
                    )
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    raise JournalCorruptError(
                        f"{path.name}: CRC mismatch at offset {offset}: "
                        "journal record is corrupt"
                    )
                offset += _HEADER.size + length
                yield _decode_batch(payload, f"{path.name}@{offset}"), (seq, offset)
                yielded += 1
                if limit is not None and yielded >= limit:
                    return


class JournalWriter:
    """Append :class:`EdgeBatch` records to a segmented on-disk journal.

    Opening a directory with existing segments recovers it first: a
    torn tail is truncated back to the last complete record, and the
    writer resumes appending there. Every append writes *and flushes*
    the record before returning, so the delivered stream is always a
    prefix of what a post-``kill -9`` replay yields.

    ``append`` returns the ``(segment, offset)`` position after the
    record -- the value checkpoints store -- or ``None`` once the
    writer has degraded (an append failed, e.g. disk full; a
    :class:`~repro.errors.JournalWriteWarning` was issued and the run
    continues un-journaled).
    """

    def __init__(
        self,
        directory,
        *,
        fsync: str = "batch",
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync must be one of {'/'.join(FSYNC_POLICIES)}, got {fsync!r}"
            )
        max_segment_bytes = int(max_segment_bytes)
        if max_segment_bytes < _MIN_SEGMENT_BYTES:
            raise InvalidParameterError(
                f"max_segment_bytes must be >= {_MIN_SEGMENT_BYTES}, "
                f"got {max_segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._max_segment_bytes = max_segment_bytes
        self._handle = None
        self._appends = 0
        self._bytes_appended = 0
        self._fsyncs = 0
        self._compacted = 0
        self._pending = 0
        self._last_sync = time.monotonic()
        self.degraded = False

        segments = _list_segments(self.directory)
        self._segments = len(segments)
        if segments:
            self._seq = segments[-1][0]
            self._recover_tail(segments[-1][1])
        else:
            self._seq = 1
            self._segments = 1
            self._open_segment()

    # -- lifecycle ----------------------------------------------------

    def _segment_path(self) -> Path:
        return self.directory / _segment_name(self._seq)

    def _recover_tail(self, path: Path) -> None:
        end = _scan_segment_tail(path)
        with open(path, "r+b") as handle:
            if end == 0:
                handle.truncate(0)
                handle.write(_MAGIC)
                end = len(_MAGIC)
            else:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > end:
                    handle.truncate(end)
            handle.flush()
        self._handle = open(path, "ab")
        self._offset = end

    def _open_segment(self) -> None:
        self._handle = open(self._segment_path(), "ab")
        if self._handle.tell() == 0:
            self._handle.write(_MAGIC)
            self._handle.flush()
            if self._fsync != "off":
                _fsync_dir(self.directory)
        self._offset = self._handle.tell()

    def _rotate(self) -> None:
        handle, self._handle = self._handle, None
        handle.flush()
        if self._fsync != "off":
            os.fsync(handle.fileno())
            self._fsyncs += 1
            self._pending = 0
            self._last_sync = time.monotonic()
        handle.close()
        self._seq += 1
        self._segments += 1
        self._open_segment()

    def close(self) -> None:
        """Flush (and, per policy, fsync) the tail segment and close it."""
        handle, self._handle = self._handle, None
        if handle is None or handle.closed:
            return
        try:
            handle.flush()
            if self._fsync != "off":
                os.fsync(handle.fileno())
        except OSError:
            pass
        finally:
            handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- appending ----------------------------------------------------

    def append(self, batch: EdgeBatch) -> tuple[int, int] | None:
        """Durably record ``batch``; return the position after it.

        Must be called *before* the batch is delivered to any
        estimator (append-before-deliver). Once degraded, appends are
        no-ops returning ``None``.
        """
        if self.degraded or self._handle is None:
            return None
        try:
            mangle = _faults.fire_journal_append()
            payload = _encode_batch(batch)
            record = (
                _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
                + payload
            )
            if (
                self._offset > len(_MAGIC)
                and self._offset + len(record) > self._max_segment_bytes
            ):
                self._rotate()
            record_start = self._offset
            self._handle.write(record)
            self._handle.flush()
            self._offset += len(record)
            if self._fsync == "always":
                os.fsync(self._handle.fileno())
                self._fsyncs += 1
                self._last_sync = time.monotonic()
            else:
                self._pending += 1
        except OSError as exc:
            self.degraded = True
            warnings.warn(
                JournalWriteWarning(
                    f"journal append failed ({exc}); durable ingest is "
                    f"disabled for the rest of the run -- a resume can "
                    f"replay only the {self._appends} batches already "
                    "journaled"
                ),
                stacklevel=2,
            )
            return None
        self._appends += 1
        self._bytes_appended += len(record)
        position = (self._seq, self._offset)
        if mangle is not None:
            self._apply_mangle(mangle, record_start, len(payload))
        return position

    def _apply_mangle(self, kind: str, record_start: int, payload_len: int) -> None:
        """Damage the just-written record (fault injection only).

        ``torn`` truncates the segment mid-record, simulating a crash
        with only part of the append durable -- meaningful as the
        *last* append of a run (later appends would land after the
        tear and be unreachable by replay). ``corrupt`` flips one
        payload byte, leaving a complete record with a bad CRC.
        """
        path = self._segment_path()
        if kind == "torn":
            cut = record_start + _HEADER.size + payload_len // 2
            self._handle.close()
            with open(path, "r+b") as handle:
                handle.truncate(cut)
            self._handle = open(path, "ab")
            self._offset = cut
        elif kind == "corrupt":
            flip_at = record_start + _HEADER.size + payload_len // 2
            with open(path, "r+b") as handle:
                handle.seek(flip_at)
                byte = handle.read(1)
                handle.seek(flip_at)
                handle.write(bytes([byte[0] ^ 0xFF]))

    def sync(self) -> None:
        """Make every appended record durable (per the fsync policy).

        The pipeline calls this before each checkpoint save so the
        manifest's journal position never points past what would
        survive a power loss. Under ``fsync='off'`` this only flushes
        to the OS -- the caller opted out of durability.
        """
        if self._handle is None or self._handle.closed:
            return
        self._handle.flush()
        if self._fsync != "off":
            os.fsync(self._handle.fileno())
            self._fsyncs += 1
            self._pending = 0
            self._last_sync = time.monotonic()

    # -- maintenance --------------------------------------------------

    def position(self) -> tuple[int, int]:
        """``(segment, offset)`` of the journal tail."""
        return (self._seq, self._offset)

    def compact(self, position) -> int:
        """Unlink segments wholly behind ``position``; return the count.

        ``position`` is a ``(segment, offset)`` pair or the
        ``{"segment": ..., "offset": ...}`` mapping stored in
        checkpoint metadata (``None`` is a no-op). Only segments with
        a *smaller* sequence than the position's are removed --
        oldest-first, so an interruption partway leaves extra
        segments, never a hole a resume needs.
        """
        if position is None:
            return 0
        if isinstance(position, dict):
            keep_seq = int(position["segment"])
        else:
            keep_seq = int(position[0])
        removed = 0
        for seq, path in _list_segments(self.directory):
            if seq >= keep_seq or seq == self._seq:
                break
            try:
                path.unlink()
            except OSError:
                break
            removed += 1
        self._compacted += removed
        self._segments -= removed
        return removed

    def stats(self) -> dict:
        """Journal health for the live surface (``watch --jsonl``)."""
        lag = time.monotonic() - self._last_sync if self._pending else 0.0
        return {
            "fsync": self._fsync,
            "segments": self._segments,
            "segment": self._seq,
            "offset": self._offset,
            "appends": self._appends,
            "bytes_appended": self._bytes_appended,
            "fsyncs": self._fsyncs,
            "compacted_segments": self._compacted,
            "fsync_lag_s": round(lag, 3),
            "degraded": self.degraded,
        }


class JournalSource(EdgeSource):
    """Replay a journal directory as an :class:`EdgeSource`.

    Yields the *exact* batches that were appended, in order, with
    their sign columns intact -- the journal preserves the original
    arrival batching, so ``batch_size`` is ignored (documented
    deviation: re-batching would move checkpoint boundaries and break
    bit-identical resume).
    """

    replayable = True

    def __init__(self, directory, *, start: tuple[int, int] | None = None) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"journal directory not found: {directory}")
        self._start = (int(start[0]), int(start[1])) if start is not None else None
        self._signed: bool | None = None

    @property
    def signed(self) -> bool:  # type: ignore[override]
        """Whether the first journaled batch carries a sign column."""
        if self._signed is None:
            self._signed = False
            for batch, _position in self.records():
                self._signed = batch.signs is not None
                break
        return self._signed

    def records(self) -> Iterator[tuple[EdgeBatch, tuple[int, int]]]:
        """``(batch, (segment, offset))`` pairs, for position-aware replay."""
        return journal_records(self.directory, start=self._start)

    def batches(self, batch_size: int) -> Iterator[EdgeBatch]:
        for batch, _position in self.records():
            yield batch

    def __repr__(self) -> str:
        start = f", start={self._start}" if self._start is not None else ""
        return f"JournalSource({str(self.directory)!r}{start})"
