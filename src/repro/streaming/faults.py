"""Deterministic fault injection for the self-healing execution paths.

Recovery code that is only exercised by real crashes is recovery code
that does not work. This module gives every failure path a reproducible
trigger: a :class:`FaultPlan` -- selected programmatically, via the CLI
(``--fault-plan``), or via ``$REPRO_FAULT_PLAN`` -- arms *counter-based*
faults that fire at exact, deterministic points of a run:

- ``kill:w0@b5`` -- SIGKILL worker 0 after it finishes batch 5;
- ``hang:w1@b3`` -- worker 1 stops consuming after batch 3 (sleeps
  forever; only the deadline watchdog can catch this);
- ``exc:w2@b4`` -- worker 2 raises :class:`InjectedFaultError` after
  batch 4 (the "worker shipped an error" path);
- ``source-error@r2`` -- the follow-mode source's 2nd read raises
  ``OSError`` (the retry/backoff path);
- ``source-delay@r3:0.5`` -- the 3rd read stalls 0.5 s (slow device);
- ``ckpt-fail@s1`` -- the 1st checkpoint save raises ``OSError``
  (the warn-and-continue path for periodic snapshots);
- ``journal-full@a3`` -- the 3rd journal append raises ``OSError``
  before writing (the disk-full degrade path);
- ``journal-torn@a3`` -- the 3rd appended record is truncated
  mid-write after delivery, simulating a crash with only part of the
  append durable (meaningful as the last append of a run);
- ``journal-corrupt@a3`` -- one byte of the 3rd appended record's
  payload is flipped on disk: a complete record with a bad CRC, the
  damage replay must refuse with a named error.

Worker faults fire **once**, in the worker's first incarnation, by
default -- a respawned worker replaying the same batches must not
re-trip the same fault or recovery could never converge. Append
``:r<K>`` to target incarnation ``K`` instead, or ``:always`` to fire
in every incarnation (how tests drive a worker into
:class:`~repro.errors.RetryExhaustedError`).

Everything is counter-based -- batch indexes, read ordinals, save
ordinals -- never randomness or wall clocks, so a plan replays the
exact same failure at the exact same point every run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..errors import InjectedFaultError, InvalidParameterError

__all__ = [
    "Fault",
    "FaultPlan",
    "WorkerArm",
    "active_plan",
    "install",
    "fire_source_read",
    "fire_checkpoint_save",
    "fire_journal_append",
    "worker_arm",
]

#: Environment variable consulted when no plan was installed explicitly.
ENV_VAR = "REPRO_FAULT_PLAN"

#: ``incarnation`` value meaning "fire in every incarnation".
ALWAYS = -1

_WORKER_KINDS = ("kill", "hang", "exc")
_SOURCE_KINDS = ("source-error", "source-delay", "source-corrupt")
_CHECKPOINT_KINDS = ("ckpt-fail",)
_JOURNAL_KINDS = ("journal-full", "journal-torn", "journal-corrupt")


@dataclass(frozen=True)
class Fault:
    """One armed fault: *kind* firing at deterministic point *at*.

    ``worker`` and ``incarnation`` only apply to worker faults
    (``incarnation`` 0 is the first spawn; :data:`ALWAYS` fires every
    incarnation). ``delay`` is the sleep for ``source-delay`` and the
    hang duration cap for ``hang``.
    """

    kind: str
    at: int
    worker: int = 0
    incarnation: int = 0
    delay: float = 0.0

    def spec(self) -> str:
        """The spec-string form :meth:`FaultPlan.parse` reads back."""
        if self.kind in _WORKER_KINDS:
            text = f"{self.kind}:w{self.worker}@b{self.at}"
            if self.incarnation == ALWAYS:
                text += ":always"
            elif self.incarnation:
                text += f":r{self.incarnation}"
            return text
        if self.kind == "source-delay":
            return f"{self.kind}@r{self.at}:{self.delay:g}"
        if self.kind in _SOURCE_KINDS:
            return f"{self.kind}@r{self.at}"
        if self.kind in _JOURNAL_KINDS:
            return f"{self.kind}@a{self.at}"
        return f"{self.kind}@s{self.at}"


def _parse_one(token: str) -> Fault:
    """Parse one comma-separated token of a fault spec string."""
    original = token
    try:
        kind, _, rest = token.partition(":")
        if kind in _WORKER_KINDS:
            # kill:w<W>@b<N>[:r<K>|:always]
            target, _, tail = rest.partition(":")
            where, _, batch = target.partition("@")
            if not (where.startswith("w") and batch.startswith("b")):
                raise ValueError(original)
            incarnation = 0
            if tail == "always":
                incarnation = ALWAYS
            elif tail.startswith("r"):
                incarnation = int(tail[1:])
            elif tail:
                raise ValueError(original)
            return Fault(
                kind=kind,
                worker=int(where[1:]),
                at=int(batch[1:]),
                incarnation=incarnation,
                delay=3600.0 if kind == "hang" else 0.0,
            )
        head, _, point = original.partition("@")
        if head in _SOURCE_KINDS:
            # source-*@r<N>[:<seconds>]
            ordinal, _, seconds = point.partition(":")
            if not ordinal.startswith("r"):
                raise ValueError(original)
            return Fault(
                kind=head,
                at=int(ordinal[1:]),
                delay=float(seconds) if seconds else 0.0,
            )
        if head in _CHECKPOINT_KINDS:
            # ckpt-fail@s<N>
            if not point.startswith("s"):
                raise ValueError(original)
            return Fault(kind=head, at=int(point[1:]))
        if head in _JOURNAL_KINDS:
            # journal-*@a<N>
            if not point.startswith("a"):
                raise ValueError(original)
            return Fault(kind=head, at=int(point[1:]))
    except (ValueError, IndexError):
        pass
    raise InvalidParameterError(
        f"bad fault spec {original!r}; expected e.g. 'kill:w0@b5', "
        "'hang:w1@b3:always', 'exc:w0@b2:r1', 'source-error@r2', "
        "'source-delay@r3:0.5', 'ckpt-fail@s1', or 'journal-full@a3'"
    )


class FaultPlan:
    """An immutable set of armed faults plus this process's counters.

    The plan itself is picklable state (it crosses the process boundary
    into supervised workers); the *counters* -- how many source reads
    and checkpoint saves this process has performed -- live on the
    instance and start at zero in every process, which is exactly the
    determinism workers need.
    """

    def __init__(self, faults: list[Fault] | tuple[Fault, ...] = ()) -> None:
        self.faults = tuple(faults)
        self._source_reads = 0
        self._checkpoint_saves = 0
        self._journal_appends = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a comma-separated spec string."""
        tokens = [t.strip() for t in spec.split(",") if t.strip()]
        if not tokens:
            raise InvalidParameterError("empty fault spec")
        return cls([_parse_one(t) for t in tokens])

    def spec(self) -> str:
        """The round-trippable spec string (for env propagation)."""
        return ",".join(f.spec() for f in self.faults)

    # -- source hooks -------------------------------------------------
    def on_source_read(self) -> None:
        """Count one read attempt; raise/stall if a source fault fires."""
        self._source_reads += 1
        ordinal = self._source_reads
        for fault in self.faults:
            if fault.at != ordinal:
                continue
            if fault.kind == "source-delay":
                time.sleep(fault.delay)
            elif fault.kind == "source-error":
                raise OSError(f"injected source read failure (read #{ordinal})")

    def corrupt_source(self, data: bytes) -> bytes:
        """Mangle the current read's bytes if a corrupt fault targets it."""
        for fault in self.faults:
            if fault.kind == "source-corrupt" and fault.at == self._source_reads:
                return b"### injected corruption\nnot numbers here\n" + data
        return data

    # -- checkpoint hook ----------------------------------------------
    def on_checkpoint_save(self) -> None:
        """Count one save; raise ``OSError`` if a ckpt fault fires."""
        self._checkpoint_saves += 1
        ordinal = self._checkpoint_saves
        for fault in self.faults:
            if fault.kind == "ckpt-fail" and fault.at == ordinal:
                raise OSError(f"injected checkpoint write failure (save #{ordinal})")

    # -- journal hook -------------------------------------------------
    def on_journal_append(self) -> str | None:
        """Count one append; fire any journal fault targeting it.

        ``journal-full`` raises ``OSError`` (before the writer touches
        the disk -- the degrade path). ``journal-torn`` and
        ``journal-corrupt`` return ``"torn"``/``"corrupt"`` so the
        writer damages the record *after* writing it, simulating crash
        damage for a later reader.
        """
        self._journal_appends += 1
        ordinal = self._journal_appends
        for fault in self.faults:
            if fault.at != ordinal or fault.kind not in _JOURNAL_KINDS:
                continue
            if fault.kind == "journal-full":
                raise OSError(f"injected journal disk-full (append #{ordinal})")
            return fault.kind.removeprefix("journal-")
        return None

    # -- worker side --------------------------------------------------
    def worker_faults(self, worker: int, incarnation: int) -> list[Fault]:
        """The worker faults armed for this worker and incarnation."""
        return [
            f
            for f in self.faults
            if f.kind in _WORKER_KINDS
            and f.worker == worker
            and (f.incarnation == ALWAYS or f.incarnation == incarnation)
        ]

    def __getstate__(self):
        return self.faults

    def __setstate__(self, state):
        self.__init__(state)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"


class WorkerArm:
    """A worker's view of its armed faults, fired after each batch."""

    def __init__(self, faults: list[Fault]) -> None:
        self._faults = faults

    def after_batch(self, batch_no: int) -> None:
        """Fire any fault targeting global batch ``batch_no``."""
        for fault in self._faults:
            if fault.at != batch_no:
                continue
            if fault.kind == "kill":
                import signal

                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.kind == "hang":
                time.sleep(fault.delay)
            elif fault.kind == "exc":
                raise InjectedFaultError(
                    f"injected worker exception at batch {batch_no}"
                )


# ---------------------------------------------------------------------------
# process-global installation
# ---------------------------------------------------------------------------

_INSTALLED: FaultPlan | None = None
_ENV_CHECKED = False


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-globally (``None`` disarms everything)."""
    global _INSTALLED, _ENV_CHECKED
    _INSTALLED = plan
    _ENV_CHECKED = True  # an explicit install (even None) overrides the env


def active_plan() -> FaultPlan | None:
    """The armed plan: the installed one, else ``$REPRO_FAULT_PLAN``."""
    global _INSTALLED, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get(ENV_VAR, "").strip()
        if spec:
            _INSTALLED = FaultPlan.parse(spec)
    return _INSTALLED


def fire_source_read() -> None:
    """Hook for every follow-source read attempt (no-op when disarmed)."""
    plan = active_plan()
    if plan is not None:
        plan.on_source_read()


def corrupt_source(data: bytes) -> bytes:
    """Hook mangling a follow-source read's bytes (identity when disarmed)."""
    plan = active_plan()
    return data if plan is None else plan.corrupt_source(data)


def fire_checkpoint_save() -> None:
    """Hook for every checkpoint save (no-op when disarmed)."""
    plan = active_plan()
    if plan is not None:
        plan.on_checkpoint_save()


def fire_journal_append() -> str | None:
    """Hook for every journal append (``None``/no-op when disarmed)."""
    plan = active_plan()
    return None if plan is None else plan.on_journal_append()


def worker_arm(worker: int, incarnation: int) -> WorkerArm:
    """The fault arm for one worker incarnation (empty when disarmed)."""
    plan = active_plan()
    faults = [] if plan is None else plan.worker_faults(worker, incarnation)
    return WorkerArm(faults)
