"""Single-pass fan-out: drive many estimators over one stream read.

The point of one-pass algorithms is that the stream is the expensive
resource. :class:`Pipeline` reads an :class:`~repro.streaming.source.EdgeSource`
exactly once and feeds every registered estimator the same batches, so
one scan of a 100M-edge file produces a triangle count, a transitivity
coefficient, uniform triangle samples, and windowed estimates
simultaneously -- each with its own timing in the structured
:class:`PipelineReport`.

Estimators come either pre-built (any object satisfying
:class:`~repro.streaming.protocol.StreamingEstimator`) or by name from
the :data:`~repro.streaming.registry.ESTIMATORS` registry via
:meth:`Pipeline.from_registry`. Per-estimator seeds are derived
deterministically from the root seed and the estimator *name* (not the
position), so a pipeline run is bit-identical to running each estimator
alone with :func:`derive_seed`'s output -- the equivalence the test
suite asserts.
"""

from __future__ import annotations

import signal as signal_module
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .batch import EdgeBatch
from .checkpoint import (
    Checkpoint,
    fingerprints_compatible,
    load_checkpoint,
    save_checkpoint,
    source_fingerprint,
)
from .registry import ESTIMATORS, _default_report
from .source import _COERCE_ERRORS, EdgeSource, as_source

__all__ = ["Pipeline", "PipelineReport", "EstimatorReport", "derive_seed"]


def derive_seed(seed: int | None, name: str) -> int | None:
    """A per-estimator seed from the root seed and the estimator name.

    ``None`` stays ``None`` (OS entropy). Otherwise the seed is drawn
    through :class:`numpy.random.SeedSequence` keyed on the name's
    CRC-32, so different estimators sharing one root seed do not run
    correlated reservoirs, and the derivation does not depend on the
    order estimators were requested in.
    """
    if seed is None:
        return None
    entropy = np.random.SeedSequence([seed, zlib.crc32(name.encode("utf-8"))])
    return int(entropy.generate_state(1, np.uint32)[0])


@dataclass
class EstimatorReport:
    """One estimator's share of a pipeline run."""

    name: str
    seconds: float
    results: dict[str, Any]

    def render(self) -> str:
        parts = ", ".join(f"{k}={_fmt(v)}" for k, v in self.results.items())
        return f"{self.name}: {parts} [{self.seconds:.3f}s]"


@dataclass
class PipelineReport:
    """Structured result of :meth:`Pipeline.run`.

    ``io_seconds`` is the measured stream-side share of ``seconds``:
    reading/decoding the source plus batch preparation (columnar
    coercion and the shared per-batch index), the quantity the paper's
    Table 3 reports as the separate I/O column.
    """

    edges: int
    batches: int
    seconds: float
    io_seconds: float = 0.0
    estimators: list[EstimatorReport] = field(default_factory=list)

    def __getitem__(self, name: str) -> EstimatorReport:
        for report in self.estimators:
            if report.name == name:
                return report
        raise KeyError(name)

    def render(self) -> str:
        """A small human-readable report (what the CLI prints)."""
        lines = [
            f"edges: {self.edges:,} in {self.batches:,} batches",
            f"stream pass: {self.seconds:.3f}s "
            f"({self.edges / max(self.seconds, 1e-9) / 1e6:.2f}M edges/s)",
            f"I/O + batch prep: {self.io_seconds:.3f}s",
        ]
        lines.extend("  " + report.render() for report in self.estimators)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly form (for artifacts and machine consumers)."""
        return {
            "edges": self.edges,
            "batches": self.batches,
            "seconds": self.seconds,
            "io_seconds": self.io_seconds,
            "estimators": [
                {"name": r.name, "seconds": r.seconds, "results": r.results}
                for r in self.estimators
            ],
        }


class Pipeline:
    """Fan a single stream pass out to ``n`` streaming estimators.

    Parameters
    ----------
    estimators:
        ``name -> estimator`` mapping, or a sequence of
        ``(name, estimator)`` pairs (names must be unique -- they key
        the report). Each estimator must satisfy
        :class:`~repro.streaming.protocol.StreamingEstimator`.
    reporters:
        Optional ``name -> (estimator -> dict)`` overrides for how each
        estimator's final results are extracted. Defaults to the
        registry's reporter when the name is registered, else to
        ``{"estimate": estimator.estimate()}``.
    """

    def __init__(
        self,
        estimators: Mapping[str, Any] | Sequence[tuple[str, Any]],
        *,
        reporters: Mapping[str, Any] | None = None,
    ) -> None:
        pairs = (
            list(estimators.items())
            if isinstance(estimators, Mapping)
            else list(estimators)
        )
        if not pairs:
            raise InvalidParameterError("pipeline needs at least one estimator")
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate estimator names: {names}")
        self._pairs = pairs
        self._reporters = dict(reporters or {})
        self._resume: Checkpoint | None = None
        self._resume_path: Any = None
        self._resume_poisoned = False
        self._progress: dict[str, Any] = {
            "edges_seen": 0,
            "batches": 0,
            "batch_size": 0,
            "fingerprint": None,
        }

    @classmethod
    def from_registry(
        cls,
        names: Iterable[str],
        *,
        num_estimators: int | None = None,
        seed: int | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "Pipeline":
        """Build a pipeline of registered estimators.

        Parameters
        ----------
        names:
            Estimator names from the registry (``ESTIMATORS.names()``
            enumerates them; so does ``repro pipeline --help``).
        num_estimators:
            Pool size for every estimator; ``None`` uses each spec's
            own default.
        seed:
            Root seed; each estimator gets ``derive_seed(seed, name)``.
        options:
            Per-name factory keyword overrides, e.g.
            ``{"sliding-window": {"window": 10_000}}``.
        """
        options = options or {}
        pairs = []
        for name in names:
            spec = ESTIMATORS.get(name)
            estimator = spec.create(
                num_estimators, derive_seed(seed, name), **options.get(name, {})
            )
            pairs.append((name, estimator))
        return cls(pairs)

    @property
    def names(self) -> list[str]:
        return [name for name, _ in self._pairs]

    def estimator(self, name: str) -> Any:
        for pair_name, est in self._pairs:
            if pair_name == name:
                return est
        raise KeyError(name)

    # ------------------------------------------------------------------
    # durable checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, path) -> None:
        """Snapshot every estimator's state to the ``path`` directory.

        The on-disk format (npz + JSON manifest, versioned) is
        :mod:`repro.streaming.checkpoint`'s; the manifest records the
        stream progress of the last/current :meth:`run` so a fresh
        pipeline can :meth:`resume` and continue where this one stood.
        Every estimator must implement
        :class:`~repro.streaming.protocol.CheckpointableEstimator`.
        """
        states = {}
        for name, estimator in self._pairs:
            op = getattr(estimator, "state_dict", None)
            if op is None:
                raise InvalidParameterError(
                    f"estimator {name!r} does not support state_dict(); "
                    "it cannot be checkpointed"
                )
            states[name] = op()
        save_checkpoint(
            path,
            states,
            edges_seen=self._progress["edges_seen"],
            batches=self._progress["batches"],
            batch_size=self._progress["batch_size"],
            fingerprint=self._progress["fingerprint"],
        )

    def resume(self, path) -> "Pipeline":
        """Restore a :meth:`checkpoint` into this pipeline's estimators.

        The pipeline must have been built with the same estimator names
        (e.g. the same :meth:`from_registry` call); each estimator
        adopts its checkpointed state -- including the generator state.
        The next :meth:`run` automatically skips the ``edges_seen``
        edges the checkpoint already consumed (the source must replay
        the same stream; a recorded fingerprint is verified against it)
        and must use the checkpoint's ``batch_size``.

        Bit-identity: the continuation reproduces the uninterrupted run
        exactly when the checkpoint position is a multiple of
        ``batch_size`` -- true for every periodic/signal snapshot (they
        land on batch boundaries) and for end-of-stream snapshots of
        streams whose length is a batch multiple. Resuming an
        *unaligned* end-of-stream snapshot over a grown stream is still
        statistically correct (reservoir decisions are memoryless), but
        the first continuation batch is shorter than the uninterrupted
        run's, so the vectorized engines' per-batch draws differ.
        Returns ``self`` for chaining.
        """
        ckpt = load_checkpoint(path)
        mine = set(self.names)
        theirs = set(ckpt.states)
        if mine != theirs:
            raise InvalidParameterError(
                f"checkpoint estimators {sorted(theirs)} do not match "
                f"this pipeline's {sorted(mine)}"
            )
        for name, estimator in self._pairs:
            op = getattr(estimator, "load_state_dict", None)
            if op is None:
                raise InvalidParameterError(
                    f"estimator {name!r} does not support load_state_dict(); "
                    "it cannot be resumed"
                )
            op(ckpt.states[name])
        self._resume = ckpt
        self._resume_path = path
        self._resume_poisoned = False
        self._progress = {
            "edges_seen": ckpt.edges_seen,
            "batches": ckpt.batches,
            "batch_size": ckpt.batch_size,
            "fingerprint": ckpt.fingerprint,
        }
        return self

    # ------------------------------------------------------------------
    # the stream pass
    # ------------------------------------------------------------------
    def run(
        self,
        source,
        *,
        batch_size: int = 65_536,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
        checkpoint_signal: int | None = None,
    ) -> PipelineReport:
        """One pass over ``source``, feeding every estimator each batch.

        ``source`` is anything :func:`~repro.streaming.source.as_source`
        accepts. Each batch is prepared exactly once no matter how many
        estimators are registered: the source's columnar
        :class:`~repro.streaming.batch.EdgeBatch` is shared, its
        per-batch index is built once (when any estimator implements the
        :class:`~repro.streaming.protocol.PreparedEstimator` fast path),
        and per-edge estimators share the batch's one tuple
        materialization. Per-estimator wall-clock time is accumulated
        around each update call; stream reading plus batch preparation
        is reported separately as ``io_seconds`` (the paper's Table 3
        I/O split).

        Durability hooks:

        - ``checkpoint_path`` -- directory to snapshot estimator state
          into (see :meth:`checkpoint`). A snapshot is always written
          when the stream completes; with ``checkpoint_every=k`` one is
          also written every ``k`` batches, and with
          ``checkpoint_signal`` (e.g. ``signal.SIGUSR1``) on demand at
          the next batch boundary after the signal arrives.
        - after :meth:`resume`, the run skips the edges the checkpoint
          already consumed and continues bit-identically (same
          ``batch_size`` required); edge/batch totals in the report
          cover the whole logical stream, not just the continuation.
        """
        if checkpoint_every is not None:
            if checkpoint_path is None:
                raise InvalidParameterError(
                    "checkpoint_every requires checkpoint_path"
                )
            if checkpoint_every < 1:
                raise InvalidParameterError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
        if self._resume_poisoned:
            raise InvalidParameterError(
                "a previous resumed run failed and its checkpoint could not "
                "be reloaded; call resume() again before running"
            )
        src: EdgeSource = as_source(source)
        resume = self._resume
        remaining = 0
        base_edges = 0
        base_batches = 0
        fingerprint = None
        if resume is not None:
            if resume.batch_size and resume.batch_size != batch_size:
                raise InvalidParameterError(
                    f"checkpoint was taken with batch_size={resume.batch_size}; "
                    f"resuming with {batch_size} would not replay the stream "
                    "bit-consistently"
                )
            # One fingerprint pass serves both the compatibility check
            # (hashed over the checkpoint's recorded head window, so a
            # file that grew since the snapshot still verifies) and the
            # progress record for subsequent snapshots -- keeping the
            # original window also lets checkpoints chain across
            # repeated grow-and-resume cycles.
            saved = resume.fingerprint
            head_bytes = (
                saved.get("head_bytes")
                if saved is not None and saved.get("kind") == "file"
                else None
            )
            fingerprint = source_fingerprint(src, head_bytes=head_bytes)
            if not fingerprints_compatible(saved, fingerprint):
                raise InvalidParameterError(
                    "checkpoint was taken over a different stream than the "
                    "one being resumed (fingerprint mismatch)"
                )
            remaining = resume.edges_seen
            base_edges = resume.edges_seen
            base_batches = resume.batches
        elif checkpoint_path is not None:
            fingerprint = source_fingerprint(src)
        self._progress = {
            "edges_seen": base_edges,
            "batches": base_batches,
            "batch_size": batch_size,
            "fingerprint": fingerprint,
        }
        if checkpoint_path is not None:
            # Snapshot before the stream pass. This both covers the
            # window before the first periodic snapshot and validates
            # that every estimator can actually be checkpointed --
            # hasattr would not: delegating wrappers (TriangleCounter
            # over a non-checkpointable engine) expose state_dict and
            # raise only when it runs, which must not happen hours into
            # the stream.
            self.checkpoint(checkpoint_path)

        fast_paths = [
            getattr(estimator, "update_prepared", None)
            for _, estimator in self._pairs
        ]
        # Build the shared per-batch index only when some fast-path
        # estimator actually reads it (a pure tuple consumer like the
        # bulk engine sets uses_batch_context = False).
        want_context = any(
            fast is not None and getattr(estimator, "uses_batch_context", True)
            for (_, estimator), fast in zip(self._pairs, fast_paths)
        )
        timings = {name: 0.0 for name, _ in self._pairs}
        edges = 0
        batches = 0
        io_seconds = 0.0
        signal_seen = [False]
        restore_handler = None
        if checkpoint_path is not None and checkpoint_signal is not None:
            def _on_signal(signum, frame):  # pragma: no cover - timing
                signal_seen[0] = True

            try:
                previous = signal_module.signal(checkpoint_signal, _on_signal)
                restore_handler = (checkpoint_signal, previous)
            except ValueError:
                # Not the main thread: on-demand snapshots unavailable,
                # periodic/final ones still work.
                restore_handler = None
        counters = {"edges": 0, "batches": 0, "io_seconds": 0.0}
        start = time.perf_counter()
        try:
            self._stream_pass(
                src,
                batch_size,
                remaining,
                base_edges,
                base_batches,
                fast_paths,
                want_context,
                timings,
                checkpoint_path,
                checkpoint_every,
                signal_seen,
                restore_handler,
                counters,
            )
        except BaseException:
            if resume is not None:
                # The pipeline's estimators are somewhere past the
                # checkpoint; silently retrying from here would
                # double-count the stream. Put the pipeline back in its
                # resumable state so a corrected run() call is safe.
                self._reload_after_failed_resume()
            raise
        self._resume = None
        edges = counters["edges"]
        batches = counters["batches"]
        io_seconds = counters["io_seconds"]
        total = time.perf_counter() - start
        report = PipelineReport(
            edges=base_edges + edges,
            batches=base_batches + batches,
            seconds=total,
            io_seconds=io_seconds,
        )
        for name, estimator in self._pairs:
            reporter = self._reporters.get(name)
            if reporter is None:
                reporter = (
                    ESTIMATORS.get(name).report
                    if name in ESTIMATORS
                    else _default_report
                )
            report.estimators.append(
                EstimatorReport(
                    name=name, seconds=timings[name], results=reporter(estimator)
                )
            )
        return report

    def _reload_after_failed_resume(self) -> None:
        """Restore the resumable state after a failed resumed pass.

        Best effort: if the checkpoint itself cannot be reloaded, the
        pipeline is poisoned instead, so the next :meth:`run` raises
        rather than silently replaying the stream over half-advanced
        estimators.
        """
        try:
            self.resume(self._resume_path)
        except Exception:
            self._resume = None
            self._resume_poisoned = True

    def _stream_pass(
        self,
        src,
        batch_size,
        remaining,
        base_edges,
        base_batches,
        fast_paths,
        want_context,
        timings,
        checkpoint_path,
        checkpoint_every,
        signal_seen,
        restore_handler,
        counters,
    ) -> None:
        """The fallible middle of :meth:`run`: stream, update, snapshot."""
        edges = 0
        batches = 0
        try:
            stream = iter(src.batches(batch_size))
            while True:
                t0 = time.perf_counter()
                batch = next(stream, None)
                if batch is None:
                    counters["io_seconds"] += time.perf_counter() - t0
                    break
                if remaining:
                    # Replaying a resumed stream: checkpoints land on
                    # batch boundaries, so whole batches are skipped
                    # (the partial slice only triggers on boundary
                    # drift, e.g. a final short batch).
                    w = len(batch)
                    if w <= remaining:
                        remaining -= w
                        counters["io_seconds"] += time.perf_counter() - t0
                        continue
                    if isinstance(batch, EdgeBatch):
                        batch = EdgeBatch(batch.array[remaining:])
                    else:
                        batch = list(batch)[remaining:]
                    remaining = 0
                if isinstance(batch, EdgeBatch):
                    prepared = batch
                else:
                    try:
                        prepared = EdgeBatch.from_edges(batch)
                    except _COERCE_ERRORS:
                        prepared = None
                if prepared is not None and want_context:
                    prepared.context  # noqa: B018 -- build the shared index once
                counters["io_seconds"] += time.perf_counter() - t0
                batches += 1
                edges += len(batch)
                counters["edges"] = edges
                counters["batches"] = batches
                for (name, estimator), fast in zip(self._pairs, fast_paths):
                    t1 = time.perf_counter()
                    if fast is not None and prepared is not None:
                        fast(prepared)
                    else:
                        estimator.update_batch(batch if prepared is None else prepared)
                    timings[name] += time.perf_counter() - t1
                self._progress["edges_seen"] = base_edges + edges
                self._progress["batches"] = base_batches + batches
                if checkpoint_path is not None and (
                    signal_seen[0]
                    or (checkpoint_every and batches % checkpoint_every == 0)
                ):
                    signal_seen[0] = False
                    self.checkpoint(checkpoint_path)
        finally:
            if restore_handler is not None:
                signal_module.signal(*restore_handler)
        if remaining:
            raise InvalidParameterError(
                f"stream ended {remaining} edges before the checkpoint's "
                "position; it is not the stream that was checkpointed"
            )
        if checkpoint_path is not None:
            self.checkpoint(checkpoint_path)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.4f}" if abs(value) < 100 else f"{value:,.1f}"
    return str(value)
