"""Single-pass fan-out: drive many estimators over one stream read.

The point of one-pass algorithms is that the stream is the expensive
resource. :class:`Pipeline` reads an :class:`~repro.streaming.source.EdgeSource`
exactly once and feeds every registered estimator the same batches, so
one scan of a 100M-edge file produces a triangle count, a transitivity
coefficient, uniform triangle samples, and windowed estimates
simultaneously -- each with its own timing in the structured
:class:`PipelineReport`.

Estimators come either pre-built (any object satisfying
:class:`~repro.streaming.protocol.StreamingEstimator`) or by name from
the :data:`~repro.streaming.registry.ESTIMATORS` registry via
:meth:`Pipeline.from_registry`. Per-estimator seeds are derived
deterministically from the root seed and the estimator *name* (not the
position), so a pipeline run is bit-identical to running each estimator
alone with :func:`derive_seed`'s output -- the equivalence the test
suite asserts.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .batch import EdgeBatch
from .registry import ESTIMATORS, _default_report
from .source import _COERCE_ERRORS, EdgeSource, as_source

__all__ = ["Pipeline", "PipelineReport", "EstimatorReport", "derive_seed"]


def derive_seed(seed: int | None, name: str) -> int | None:
    """A per-estimator seed from the root seed and the estimator name.

    ``None`` stays ``None`` (OS entropy). Otherwise the seed is drawn
    through :class:`numpy.random.SeedSequence` keyed on the name's
    CRC-32, so different estimators sharing one root seed do not run
    correlated reservoirs, and the derivation does not depend on the
    order estimators were requested in.
    """
    if seed is None:
        return None
    entropy = np.random.SeedSequence([seed, zlib.crc32(name.encode("utf-8"))])
    return int(entropy.generate_state(1, np.uint32)[0])


@dataclass
class EstimatorReport:
    """One estimator's share of a pipeline run."""

    name: str
    seconds: float
    results: dict[str, Any]

    def render(self) -> str:
        parts = ", ".join(f"{k}={_fmt(v)}" for k, v in self.results.items())
        return f"{self.name}: {parts} [{self.seconds:.3f}s]"


@dataclass
class PipelineReport:
    """Structured result of :meth:`Pipeline.run`.

    ``io_seconds`` is the measured stream-side share of ``seconds``:
    reading/decoding the source plus batch preparation (columnar
    coercion and the shared per-batch index), the quantity the paper's
    Table 3 reports as the separate I/O column.
    """

    edges: int
    batches: int
    seconds: float
    io_seconds: float = 0.0
    estimators: list[EstimatorReport] = field(default_factory=list)

    def __getitem__(self, name: str) -> EstimatorReport:
        for report in self.estimators:
            if report.name == name:
                return report
        raise KeyError(name)

    def render(self) -> str:
        """A small human-readable report (what the CLI prints)."""
        lines = [
            f"edges: {self.edges:,} in {self.batches:,} batches",
            f"stream pass: {self.seconds:.3f}s "
            f"({self.edges / max(self.seconds, 1e-9) / 1e6:.2f}M edges/s)",
            f"I/O + batch prep: {self.io_seconds:.3f}s",
        ]
        lines.extend("  " + report.render() for report in self.estimators)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly form (for artifacts and machine consumers)."""
        return {
            "edges": self.edges,
            "batches": self.batches,
            "seconds": self.seconds,
            "io_seconds": self.io_seconds,
            "estimators": [
                {"name": r.name, "seconds": r.seconds, "results": r.results}
                for r in self.estimators
            ],
        }


class Pipeline:
    """Fan a single stream pass out to ``n`` streaming estimators.

    Parameters
    ----------
    estimators:
        ``name -> estimator`` mapping, or a sequence of
        ``(name, estimator)`` pairs (names must be unique -- they key
        the report). Each estimator must satisfy
        :class:`~repro.streaming.protocol.StreamingEstimator`.
    reporters:
        Optional ``name -> (estimator -> dict)`` overrides for how each
        estimator's final results are extracted. Defaults to the
        registry's reporter when the name is registered, else to
        ``{"estimate": estimator.estimate()}``.
    """

    def __init__(
        self,
        estimators: Mapping[str, Any] | Sequence[tuple[str, Any]],
        *,
        reporters: Mapping[str, Any] | None = None,
    ) -> None:
        pairs = (
            list(estimators.items())
            if isinstance(estimators, Mapping)
            else list(estimators)
        )
        if not pairs:
            raise InvalidParameterError("pipeline needs at least one estimator")
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate estimator names: {names}")
        self._pairs = pairs
        self._reporters = dict(reporters or {})

    @classmethod
    def from_registry(
        cls,
        names: Iterable[str],
        *,
        num_estimators: int | None = None,
        seed: int | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "Pipeline":
        """Build a pipeline of registered estimators.

        Parameters
        ----------
        names:
            Estimator names from the registry (``ESTIMATORS.names()``
            enumerates them; so does ``repro pipeline --help``).
        num_estimators:
            Pool size for every estimator; ``None`` uses each spec's
            own default.
        seed:
            Root seed; each estimator gets ``derive_seed(seed, name)``.
        options:
            Per-name factory keyword overrides, e.g.
            ``{"sliding-window": {"window": 10_000}}``.
        """
        options = options or {}
        pairs = []
        for name in names:
            spec = ESTIMATORS.get(name)
            estimator = spec.create(
                num_estimators, derive_seed(seed, name), **options.get(name, {})
            )
            pairs.append((name, estimator))
        return cls(pairs)

    @property
    def names(self) -> list[str]:
        return [name for name, _ in self._pairs]

    def estimator(self, name: str) -> Any:
        for pair_name, est in self._pairs:
            if pair_name == name:
                return est
        raise KeyError(name)

    def run(self, source, *, batch_size: int = 65_536) -> PipelineReport:
        """One pass over ``source``, feeding every estimator each batch.

        ``source`` is anything :func:`~repro.streaming.source.as_source`
        accepts. Each batch is prepared exactly once no matter how many
        estimators are registered: the source's columnar
        :class:`~repro.streaming.batch.EdgeBatch` is shared, its
        per-batch index is built once (when any estimator implements the
        :class:`~repro.streaming.protocol.PreparedEstimator` fast path),
        and per-edge estimators share the batch's one tuple
        materialization. Per-estimator wall-clock time is accumulated
        around each update call; stream reading plus batch preparation
        is reported separately as ``io_seconds`` (the paper's Table 3
        I/O split).
        """
        src: EdgeSource = as_source(source)
        fast_paths = [
            getattr(estimator, "update_prepared", None)
            for _, estimator in self._pairs
        ]
        # Build the shared per-batch index only when some fast-path
        # estimator actually reads it (a pure tuple consumer like the
        # bulk engine sets uses_batch_context = False).
        want_context = any(
            fast is not None and getattr(estimator, "uses_batch_context", True)
            for (_, estimator), fast in zip(self._pairs, fast_paths)
        )
        timings = {name: 0.0 for name, _ in self._pairs}
        edges = 0
        batches = 0
        io_seconds = 0.0
        start = time.perf_counter()
        stream = iter(src.batches(batch_size))
        while True:
            t0 = time.perf_counter()
            batch = next(stream, None)
            if batch is None:
                io_seconds += time.perf_counter() - t0
                break
            if isinstance(batch, EdgeBatch):
                prepared = batch
            else:
                try:
                    prepared = EdgeBatch.from_edges(batch)
                except _COERCE_ERRORS:
                    prepared = None
            if prepared is not None and want_context:
                prepared.context  # noqa: B018 -- build the shared index once
            io_seconds += time.perf_counter() - t0
            batches += 1
            edges += len(batch)
            for (name, estimator), fast in zip(self._pairs, fast_paths):
                t1 = time.perf_counter()
                if fast is not None and prepared is not None:
                    fast(prepared)
                else:
                    estimator.update_batch(batch if prepared is None else prepared)
                timings[name] += time.perf_counter() - t1
        total = time.perf_counter() - start
        report = PipelineReport(
            edges=edges, batches=batches, seconds=total, io_seconds=io_seconds
        )
        for name, estimator in self._pairs:
            reporter = self._reporters.get(name)
            if reporter is None:
                reporter = (
                    ESTIMATORS.get(name).report
                    if name in ESTIMATORS
                    else _default_report
                )
            report.estimators.append(
                EstimatorReport(
                    name=name, seconds=timings[name], results=reporter(estimator)
                )
            )
        return report


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.4f}" if abs(value) < 100 else f"{value:,.1f}"
    return str(value)
