"""Single-pass fan-out: drive many estimators over one stream read.

The point of one-pass algorithms is that the stream is the expensive
resource. :class:`Pipeline` reads an :class:`~repro.streaming.source.EdgeSource`
exactly once and feeds every registered estimator the same batches, so
one scan of a 100M-edge file produces a triangle count, a transitivity
coefficient, uniform triangle samples, and windowed estimates
simultaneously -- each with its own timing in the structured
:class:`PipelineReport`.

Estimators come either pre-built (any object satisfying
:class:`~repro.streaming.protocol.StreamingEstimator`) or by name from
the :data:`~repro.streaming.registry.ESTIMATORS` registry via
:meth:`Pipeline.from_registry`. Per-estimator seeds are derived
deterministically from the root seed and the estimator *name* (not the
position), so a pipeline run is bit-identical to running each estimator
alone with :func:`derive_seed`'s output -- the equivalence the test
suite asserts.

The estimators are query-at-any-time, and so is the pipeline:
:meth:`Pipeline.snapshots` is the *live* surface -- a generator that
yields a :class:`PipelineSnapshot` of every estimator's current results
every ``k`` batches while the stream keeps flowing (the ``repro watch``
subcommand and the follow-mode sources build on it). :meth:`Pipeline.run`
and :meth:`Pipeline.snapshots` share one driver (:meth:`Pipeline._drive`):
``run`` simply drains the snapshot stream and returns the final report,
so the two are bit-identical by construction.
"""

from __future__ import annotations

import os
import signal as signal_module
import time
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import CheckpointWriteWarning, InvalidParameterError
from .batch import EdgeBatch
from .checkpoint import (
    Checkpoint,
    fingerprints_compatible,
    load_checkpoint,
    save_checkpoint,
    source_fingerprint,
)
from .journal import DEFAULT_SEGMENT_BYTES, JournalWriter, journal_records
from .registry import ESTIMATORS, _default_report
from .source import _COERCE_ERRORS, EdgeSource, as_source

__all__ = [
    "Pipeline",
    "PipelineReport",
    "PipelineSnapshot",
    "EstimatorReport",
    "derive_seed",
]


def derive_seed(seed: int | None, name: str) -> int | None:
    """A per-estimator seed from the root seed and the estimator name.

    ``None`` stays ``None`` (OS entropy). Otherwise the seed is drawn
    through :class:`numpy.random.SeedSequence` keyed on the name's
    CRC-32, so different estimators sharing one root seed do not run
    correlated reservoirs, and the derivation does not depend on the
    order estimators were requested in.
    """
    if seed is None:
        return None
    entropy = np.random.SeedSequence([seed, zlib.crc32(name.encode("utf-8"))])
    return int(entropy.generate_state(1, np.uint32)[0])


@dataclass
class EstimatorReport:
    """One estimator's share of a pipeline run."""

    name: str
    seconds: float
    results: dict[str, Any]

    def render(self) -> str:
        parts = ", ".join(f"{k}={_fmt(v)}" for k, v in self.results.items())
        return f"{self.name}: {parts} [{self.seconds:.3f}s]"


@dataclass
class PipelineReport:
    """Structured result of :meth:`Pipeline.run`.

    ``io_seconds`` is the measured stream-side share of ``seconds``:
    reading/decoding the source plus batch preparation (columnar
    coercion and the shared per-batch index), the quantity the paper's
    Table 3 reports as the separate I/O column.
    """

    edges: int
    batches: int
    seconds: float
    io_seconds: float = 0.0
    estimators: list[EstimatorReport] = field(default_factory=list)

    def __getitem__(self, name: str) -> EstimatorReport:
        for report in self.estimators:
            if report.name == name:
                return report
        raise KeyError(name)

    def render(self) -> str:
        """A small human-readable report (what the CLI prints)."""
        lines = [
            f"edges: {self.edges:,} in {self.batches:,} batches",
            f"stream pass: {self.seconds:.3f}s "
            f"({self.edges / max(self.seconds, 1e-9) / 1e6:.2f}M edges/s)",
            f"I/O + batch prep: {self.io_seconds:.3f}s",
        ]
        lines.extend("  " + report.render() for report in self.estimators)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly form (for artifacts and machine consumers)."""
        return {
            "edges": self.edges,
            "batches": self.batches,
            "seconds": self.seconds,
            "io_seconds": self.io_seconds,
            "estimators": [
                {"name": r.name, "seconds": r.seconds, "results": r.results}
                for r in self.estimators
            ],
        }


@dataclass
class PipelineSnapshot(PipelineReport):
    """A mid-stream :class:`PipelineReport`, as :meth:`Pipeline.snapshots`
    yields them.

    Same fields as the final report -- edges/batches consumed *so far*,
    cumulative wall-clock and I/O seconds, per-estimator results and
    timings -- plus ``final``, true for the one snapshot emitted when
    the stream ends. Non-final snapshots use each estimator's
    ``live_report`` (falling back to its regular reporter), so results
    may expose fewer keys mid-stream than at the end (``sample`` omits
    the drawn triangle, which would consume randomness).

    When the pass runs with a durable journal, ``journal`` carries the
    writer's health (:meth:`JournalWriter.stats`: bytes appended,
    segment count, fsync lag, compactions, degraded flag) so
    ``watch --jsonl`` consumers can alert on durability stalls.
    """

    final: bool = False
    journal: dict[str, Any] | None = None

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["final"] = self.final
        if self.journal is not None:
            out["journal"] = self.journal
        return out

    def render_line(self) -> str:
        """One compact line per snapshot (what ``repro watch`` prints)."""
        marker = " [final]" if self.final else ""
        parts = "; ".join(
            f"{r.name}: "
            + ", ".join(f"{k}={_fmt(v)}" for k, v in r.results.items())
            for r in self.estimators
        )
        journal = ""
        if self.journal is not None:
            health = (
                "DEGRADED"
                if self.journal.get("degraded")
                else f"lag {self.journal.get('fsync_lag_s', 0.0):.1f}s"
            )
            journal = (
                f" [journal {self.journal.get('segments', 0)} seg | "
                f"{self.journal.get('bytes_appended', 0):,} B | {health}]"
            )
        return (
            f"[batch {self.batches:,} | {self.edges:,} edges | "
            f"{self.seconds:.2f}s]{marker}{journal} {parts}"
        )


class Pipeline:
    """Fan a single stream pass out to ``n`` streaming estimators.

    Parameters
    ----------
    estimators:
        ``name -> estimator`` mapping, or a sequence of
        ``(name, estimator)`` pairs (names must be unique -- they key
        the report). Each estimator must satisfy
        :class:`~repro.streaming.protocol.StreamingEstimator`.
    reporters:
        Optional ``name -> (estimator -> dict)`` overrides for how each
        estimator's final results are extracted. Defaults to the
        registry's reporter when the name is registered, else to
        ``{"estimate": estimator.estimate()}``.
    live_reporters:
        Optional ``name -> (estimator -> dict)`` overrides used for
        *mid-stream* snapshots only (:meth:`snapshots`). A live
        reporter must be a pure query -- it runs between batches, and
        the stream must continue exactly as if it had not. Names
        without an entry fall back to ``reporters``, then to the
        registry spec's ``live_report``/``report``.
    """

    def __init__(
        self,
        estimators: Mapping[str, Any] | Sequence[tuple[str, Any]],
        *,
        reporters: Mapping[str, Any] | None = None,
        live_reporters: Mapping[str, Any] | None = None,
    ) -> None:
        pairs = (
            list(estimators.items())
            if isinstance(estimators, Mapping)
            else list(estimators)
        )
        if not pairs:
            raise InvalidParameterError("pipeline needs at least one estimator")
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate estimator names: {names}")
        self._pairs = pairs
        self._reporters = dict(reporters or {})
        self._live_reporters = dict(live_reporters or {})
        self._resume: Checkpoint | None = None
        self._resume_path: Any = None
        self._resume_poisoned = False
        self._progress: dict[str, Any] = {
            "edges_seen": 0,
            "batches": 0,
            "batch_size": 0,
            "fingerprint": None,
        }

    @classmethod
    def from_registry(
        cls,
        names: Iterable[str],
        *,
        num_estimators: int | None = None,
        seed: int | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "Pipeline":
        """Build a pipeline of registered estimators.

        Parameters
        ----------
        names:
            Estimator names from the registry (``ESTIMATORS.names()``
            enumerates them; so does ``repro pipeline --help``).
        num_estimators:
            Pool size for every estimator; ``None`` uses each spec's
            own default.
        seed:
            Root seed; each estimator gets ``derive_seed(seed, name)``.
        options:
            Per-name factory keyword overrides, e.g.
            ``{"sliding-window": {"window": 10_000}}``.
        """
        options = options or {}
        pairs = []
        for name in names:
            spec = ESTIMATORS.get(name)
            estimator = spec.create(
                num_estimators, derive_seed(seed, name), **options.get(name, {})
            )
            pairs.append((name, estimator))
        return cls(pairs)

    @property
    def names(self) -> list[str]:
        return [name for name, _ in self._pairs]

    def estimator(self, name: str) -> Any:
        for pair_name, est in self._pairs:
            if pair_name == name:
                return est
        raise KeyError(name)

    # ------------------------------------------------------------------
    # durable checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, path) -> None:
        """Snapshot every estimator's state to the ``path`` directory.

        The on-disk format (npz + JSON manifest, versioned) is
        :mod:`repro.streaming.checkpoint`'s; the manifest records the
        stream progress of the last/current :meth:`run` so a fresh
        pipeline can :meth:`resume` and continue where this one stood.
        Every estimator must implement
        :class:`~repro.streaming.protocol.CheckpointableEstimator`.
        """
        states = {}
        for name, estimator in self._pairs:
            op = getattr(estimator, "state_dict", None)
            if op is None:
                raise InvalidParameterError(
                    f"estimator {name!r} does not support state_dict(); "
                    "it cannot be checkpointed"
                )
            states[name] = op()
        journal_position = self._progress.get("journal")
        save_checkpoint(
            path,
            states,
            edges_seen=self._progress["edges_seen"],
            batches=self._progress["batches"],
            batch_size=self._progress["batch_size"],
            fingerprint=self._progress["fingerprint"],
            metadata=(
                {"journal": dict(journal_position)} if journal_position else None
            ),
        )

    def resume(self, path) -> "Pipeline":
        """Restore a :meth:`checkpoint` into this pipeline's estimators.

        The pipeline must have been built with the same estimator names
        (e.g. the same :meth:`from_registry` call); each estimator
        adopts its checkpointed state -- including the generator state.
        The next :meth:`run` automatically skips the ``edges_seen``
        edges the checkpoint already consumed (the source must replay
        the same stream; a recorded fingerprint is verified against it)
        and must use the checkpoint's ``batch_size``.

        Bit-identity: the continuation reproduces the uninterrupted run
        exactly when the checkpoint position is a multiple of
        ``batch_size`` -- true for every periodic/signal snapshot (they
        land on batch boundaries) and for end-of-stream snapshots of
        streams whose length is a batch multiple. Resuming an
        *unaligned* end-of-stream snapshot over a grown stream is still
        statistically correct (reservoir decisions are memoryless), but
        the first continuation batch is shorter than the uninterrupted
        run's, so the vectorized engines' per-batch draws differ.
        Returns ``self`` for chaining.
        """
        ckpt = load_checkpoint(path)
        mine = set(self.names)
        theirs = set(ckpt.states)
        if mine != theirs:
            raise InvalidParameterError(
                f"checkpoint estimators {sorted(theirs)} do not match "
                f"this pipeline's {sorted(mine)}"
            )
        for name, estimator in self._pairs:
            op = getattr(estimator, "load_state_dict", None)
            if op is None:
                raise InvalidParameterError(
                    f"estimator {name!r} does not support load_state_dict(); "
                    "it cannot be resumed"
                )
            op(ckpt.states[name])
        self._resume = ckpt
        self._resume_path = path
        self._resume_poisoned = False
        self._progress = {
            "edges_seen": ckpt.edges_seen,
            "batches": ckpt.batches,
            "batch_size": ckpt.batch_size,
            "fingerprint": ckpt.fingerprint,
            "journal": (ckpt.metadata or {}).get("journal"),
        }
        return self

    # ------------------------------------------------------------------
    # the stream pass: one driver, two surfaces (run / snapshots)
    # ------------------------------------------------------------------
    def run(
        self,
        source,
        *,
        batch_size: int = 65_536,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
        checkpoint_signal: int | None = None,
        journal_dir=None,
        journal_fsync: str = "batch",
        journal_max_segment: int = DEFAULT_SEGMENT_BYTES,
    ) -> PipelineReport:
        """One pass over ``source``, feeding every estimator each batch.

        ``source`` is anything :func:`~repro.streaming.source.as_source`
        accepts. Each batch is prepared exactly once no matter how many
        estimators are registered: the source's columnar
        :class:`~repro.streaming.batch.EdgeBatch` is shared, its
        per-batch index is built once (when any estimator implements the
        :class:`~repro.streaming.protocol.PreparedEstimator` fast path)
        -- including the unique-vertex / unique-edge-key views the
        output-sensitive vectorized engines intersect against their
        watch indexes, so ``n`` fanned-out engines share one
        intersection precomputation per batch -- and per-edge
        estimators share the batch's one tuple materialization. Per-estimator wall-clock time is accumulated
        around each update call; stream reading plus batch preparation
        is reported separately as ``io_seconds`` (the paper's Table 3
        I/O split).

        ``run`` is literally "drain :meth:`snapshots` and return the
        final report": both surfaces share the :meth:`_drive` stream
        pass, so the results here are bit-identical to the ``final``
        snapshot of a ``snapshots`` call over the same source and seed
        -- the equivalence the test suite asserts.

        Durability hooks:

        - ``checkpoint_path`` -- directory to snapshot estimator state
          into (see :meth:`checkpoint`). A snapshot is always written
          when the stream completes; with ``checkpoint_every=k`` one is
          also written every ``k`` batches (of the *global* stream
          position, so a resumed run snapshots at the same stream
          offsets the uninterrupted run would), and with
          ``checkpoint_signal`` (e.g. ``signal.SIGUSR1``) on demand at
          the next batch boundary after the signal arrives.
        - after :meth:`resume`, the run skips the edges the checkpoint
          already consumed and continues bit-identically (same
          ``batch_size`` required); edge/batch totals in the report
          cover the whole logical stream, not just the continuation.
        - ``journal_dir`` -- directory for a durable write-ahead
          journal (:mod:`repro.streaming.journal`): every batch is
          appended (and flushed) *before* any estimator sees it, and
          checkpoints record the journal ``(segment, offset)``. A
          resume that finds both the position and ``journal_dir``
          replays the journaled batches instead of re-reading the
          source, which makes non-replayable sources (stdin, sockets)
          exactly-once across ``kill -9``. ``journal_fsync``
          (``always``/``batch``/``off``) trades durability for
          throughput; ``journal_max_segment`` bounds segment files.
        """
        state = self._begin(
            source,
            batch_size,
            checkpoint_path,
            checkpoint_every,
            checkpoint_signal,
            journal_dir=journal_dir,
            journal_fsync=journal_fsync,
            journal_max_segment=journal_max_segment,
        )
        snapshot = None
        for snapshot in self._drive(state, None, checkpoint_path, checkpoint_every):
            pass
        # A plain report (no `final` field): run()'s return type predates
        # the snapshot surface and artifact dicts depend on its shape.
        return PipelineReport(
            edges=snapshot.edges,
            batches=snapshot.batches,
            seconds=snapshot.seconds,
            io_seconds=snapshot.io_seconds,
            estimators=snapshot.estimators,
        )

    def snapshots(
        self,
        source,
        *,
        batch_size: int = 65_536,
        every: int = 1,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
        checkpoint_signal: int | None = None,
        journal_dir=None,
        journal_fsync: str = "batch",
        journal_max_segment: int = DEFAULT_SEGMENT_BYTES,
    ) -> Iterator[PipelineSnapshot]:
        """Stream ``source`` like :meth:`run`, yielding live snapshots.

        A generator over the same stream pass as :meth:`run` (same fast
        paths, shared batch context, resume-skip, and checkpoint hooks
        -- the two share :meth:`_drive`), yielding a
        :class:`PipelineSnapshot` after every ``every``-th batch of the
        global stream position and a ``final`` snapshot when the stream
        ends. Mid-stream snapshots report through each estimator's
        ``live_report`` (pure queries only); the final snapshot uses
        the full reporters and is bit-identical to :meth:`run`'s report
        over the same source and seed.

        Works over unbounded sources: with a
        :class:`~repro.streaming.source.FollowSource` the generator
        simply never emits a ``final`` snapshot until the source's stop
        condition fires -- this is the ``repro watch`` loop. Abandoning
        the generator mid-stream is safe: the estimators keep their
        mid-stream state and remain queryable (unless the pass was
        resumed from a checkpoint, in which case the checkpoint is
        reloaded exactly as a failed :meth:`run` would, so a retry
        cannot double-count the stream).

        Validation (and the pre-stream checkpoint, when
        ``checkpoint_path`` is set) happens eagerly at the call, not at
        the first ``next()``.
        """
        if every < 1:
            raise InvalidParameterError(f"every must be >= 1, got {every}")
        state = self._begin(
            source,
            batch_size,
            checkpoint_path,
            checkpoint_every,
            checkpoint_signal,
            journal_dir=journal_dir,
            journal_fsync=journal_fsync,
            journal_max_segment=journal_max_segment,
        )
        return self._drive(state, every, checkpoint_path, checkpoint_every)

    def _begin(
        self,
        source,
        batch_size: int,
        checkpoint_path,
        checkpoint_every: int | None,
        checkpoint_signal: int | None,
        *,
        journal_dir=None,
        journal_fsync: str = "batch",
        journal_max_segment: int = DEFAULT_SEGMENT_BYTES,
    ) -> dict[str, Any]:
        """Validate and set up a stream pass (shared by run/snapshots).

        Everything fallible-before-the-stream happens here, eagerly:
        parameter validation, resume fingerprint verification, and the
        pre-stream checkpoint. Returns the driver's starting state.
        """
        if batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if checkpoint_every is not None:
            if checkpoint_path is None:
                raise InvalidParameterError(
                    "checkpoint_every requires checkpoint_path"
                )
            if checkpoint_every < 1:
                raise InvalidParameterError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
        if checkpoint_signal is not None and checkpoint_path is None:
            # Silently ignoring the signal request would leave the
            # caller believing kill -USR1 snapshots are armed.
            raise InvalidParameterError(
                "checkpoint_signal requires checkpoint_path"
            )
        if self._resume_poisoned:
            raise InvalidParameterError(
                "a previous resumed run failed and its checkpoint could not "
                "be reloaded; call resume() again before running"
            )
        src: EdgeSource = as_source(source)
        insert_only = [
            name
            for name, estimator in self._pairs
            if not getattr(estimator, "supports_deletions", False)
        ]
        if getattr(src, "signed", False) and insert_only:
            raise InvalidParameterError(
                "source is a signed (turnstile) stream, but estimator(s) "
                f"{insert_only} are insert-only and would silently count "
                "deletions as insertions; use deletion-capable estimators "
                "('triest-fd', 'dynamic-sampler') for signed input"
            )
        resume = self._resume
        remaining = 0
        base_edges = 0
        base_batches = 0
        fingerprint = None
        if resume is not None:
            if resume.batch_size and resume.batch_size != batch_size:
                raise InvalidParameterError(
                    f"checkpoint was taken with batch_size={resume.batch_size}; "
                    f"resuming with {batch_size} would not replay the stream "
                    "bit-consistently"
                )
            # One fingerprint pass serves both the compatibility check
            # (hashed over the checkpoint's recorded head window, so a
            # file that grew since the snapshot still verifies) and the
            # progress record for subsequent snapshots -- keeping the
            # original window also lets checkpoints chain across
            # repeated grow-and-resume cycles.
            saved = resume.fingerprint
            head_bytes = (
                saved.get("head_bytes")
                if saved is not None and saved.get("kind") == "file"
                else None
            )
            fingerprint = source_fingerprint(src, head_bytes=head_bytes)
            if not fingerprints_compatible(saved, fingerprint):
                raise InvalidParameterError(
                    "checkpoint was taken over a different stream than the "
                    "one being resumed (fingerprint mismatch)"
                )
            remaining = resume.edges_seen
            base_edges = resume.edges_seen
            base_batches = resume.batches
        elif checkpoint_path is not None:
            fingerprint = source_fingerprint(src)

        # Durable ingest journal. The writer opens (and recovers a torn
        # tail) eagerly; when the resume checkpoint recorded a journal
        # position, the pass replays the journaled batches *after* it
        # instead of relying on the source to re-serve them -- the only
        # resume path a non-replayable source (stdin, socket) has.
        journal_writer = None
        journal_replay = None
        journal_resume = False
        journal_position = None
        if journal_dir is not None:
            journal_writer = JournalWriter(
                journal_dir,
                fsync=journal_fsync,
                max_segment_bytes=journal_max_segment,
            )
            try:
                saved_position = (
                    (resume.metadata or {}).get("journal")
                    if resume is not None
                    else None
                )
                if saved_position is not None:
                    journal_position = {
                        "segment": int(saved_position["segment"]),
                        "offset": int(saved_position["offset"]),
                    }
                    journal_replay = journal_records(
                        journal_dir,
                        start=(
                            journal_position["segment"],
                            journal_position["offset"],
                        ),
                    )
                    journal_resume = True
                else:
                    position = journal_writer.position()
                    journal_position = {
                        "segment": position[0],
                        "offset": position[1],
                    }
            except BaseException:
                journal_writer.close()
                raise
        self._progress = {
            "edges_seen": base_edges,
            "batches": base_batches,
            "batch_size": batch_size,
            "fingerprint": fingerprint,
            "journal": journal_position,
        }
        if checkpoint_path is not None:
            # Snapshot before the stream pass. This both covers the
            # window before the first periodic snapshot and validates
            # that every estimator can actually be checkpointed --
            # hasattr would not: delegating wrappers (TriangleCounter
            # over a non-checkpointable engine) expose state_dict and
            # raise only when it runs, which must not happen hours into
            # the stream.
            try:
                self.checkpoint(checkpoint_path)
            except BaseException:
                if journal_writer is not None:
                    journal_writer.close()
                raise

        fast_paths = [
            getattr(estimator, "update_prepared", None)
            for _, estimator in self._pairs
        ]
        # Build the shared per-batch index only when some fast-path
        # estimator actually reads it (a pure tuple consumer like the
        # bulk engine sets uses_batch_context = False).
        want_context = any(
            fast is not None and getattr(estimator, "uses_batch_context", True)
            for (_, estimator), fast in zip(self._pairs, fast_paths)
        )
        return {
            "src": src,
            "batch_size": batch_size,
            "resumed": resume is not None,
            "remaining": remaining,
            "base_edges": base_edges,
            "base_batches": base_batches,
            "fast_paths": fast_paths,
            "want_context": want_context,
            "checkpoint_signal": checkpoint_signal,
            "insert_only": insert_only,
            "journal": journal_writer,
            "journal_replay": journal_replay,
            "journal_resume": journal_resume,
        }

    def _drive(
        self,
        state: dict[str, Any],
        every: int | None,
        checkpoint_path,
        checkpoint_every: int | None,
    ) -> Iterator[PipelineSnapshot]:
        """The one stream pass behind :meth:`run` and :meth:`snapshots`.

        Streams, updates every estimator, writes periodic/signal/final
        checkpoints, and yields a :class:`PipelineSnapshot` every
        ``every`` batches (``None``: only the final one -- the
        :meth:`run` mode). Checkpoint and snapshot cadences key on the
        *global* batch index (``base + local``), so a resumed pass
        checkpoints and reports at the same stream positions the
        uninterrupted pass would.

        On any failure -- or on abandonment mid-stream -- of a pass
        that was resumed from a checkpoint, the checkpoint is reloaded
        so a retry cannot double-count the stream (see
        :meth:`_reload_after_failed_resume`).
        """
        src = state["src"]
        batch_size = state["batch_size"]
        base_edges = state["base_edges"]
        base_batches = state["base_batches"]
        fast_paths = state["fast_paths"]
        want_context = state["want_context"]
        checkpoint_signal = state["checkpoint_signal"]
        insert_only = state["insert_only"]
        journal = state["journal"]
        journal_replay = state["journal_replay"]
        timings = {name: 0.0 for name, _ in self._pairs}
        edges = 0
        batches = 0
        io_seconds = 0.0
        signal_seen = [False]
        restore_handler = None
        if checkpoint_path is not None and checkpoint_signal is not None:
            def _on_signal(signum, frame):  # pragma: no cover - timing
                signal_seen[0] = True

            try:
                previous = signal_module.signal(checkpoint_signal, _on_signal)
                restore_handler = (checkpoint_signal, previous)
            except ValueError:
                # Not the main thread: on-demand snapshots unavailable,
                # periodic/final ones still work.
                restore_handler = None
        start = time.perf_counter()

        def _snapshot(final: bool) -> PipelineSnapshot:
            return PipelineSnapshot(
                edges=base_edges + edges,
                batches=base_batches + batches,
                seconds=time.perf_counter() - start,
                io_seconds=io_seconds,
                estimators=[
                    EstimatorReport(
                        name=name,
                        seconds=timings[name],
                        results=self._reporter_for(name, live=not final)(estimator),
                    )
                    for name, estimator in self._pairs
                ],
                final=final,
                journal=journal.stats() if journal is not None else None,
            )

        def _save_checkpoint(path) -> None:
            # Journal bytes become durable before the manifest that
            # references them, and segments wholly behind the new
            # checkpoint are compacted once it is safely on disk.
            if journal is not None:
                journal.sync()
            self.checkpoint(path)
            if journal is not None:
                journal.compact(self._progress.get("journal"))

        # Leftover resume-skip, surfaced from the merged stream for the
        # stream-ended-early check below (a mutable cell because the
        # generator owns the countdown).
        skip_left = [0]

        def _merged_stream():
            """``(batch, position, fresh)`` triples for the pass.

            First the journal replay (recorded batches past the resume
            checkpoint, ``fresh=False``, each carrying its recorded
            position), then the live source. Replay preserves the
            recorded batch boundaries, which is what keeps a resumed
            continuation bit-identical. On a journal resume a
            *replayable* source is skipped past everything already
            counted (checkpointed + replayed); a non-replayable source
            only ever serves new edges, so nothing is skipped.
            """
            replayed = 0
            if journal_replay is not None:
                for replay_batch, position in journal_replay:
                    replayed += len(replay_batch)
                    yield replay_batch, position, False
            if state["journal_resume"]:
                skip_left[0] = (
                    base_edges + replayed if src.replayable else 0
                )
            else:
                skip_left[0] = state["remaining"]
            for source_batch in src.batches(batch_size):
                if skip_left[0]:
                    # Replaying a resumed stream: checkpoints land on
                    # batch boundaries, so whole batches are skipped
                    # (the partial slice only triggers on boundary
                    # drift, e.g. a final short batch).
                    w = len(source_batch)
                    if w <= skip_left[0]:
                        skip_left[0] -= w
                        continue
                    if isinstance(source_batch, EdgeBatch):
                        source_batch = source_batch[skip_left[0] :]
                    else:
                        source_batch = list(source_batch)[skip_left[0] :]
                    skip_left[0] = 0
                yield source_batch, None, True

        try:
            try:
                stream = _merged_stream()
                while True:
                    t0 = time.perf_counter()
                    item = next(stream, None)
                    if item is None:
                        io_seconds += time.perf_counter() - t0
                        break
                    batch, journal_position, fresh = item
                    if isinstance(batch, EdgeBatch):
                        prepared = batch
                    else:
                        try:
                            prepared = EdgeBatch.from_edges(batch)
                        except _COERCE_ERRORS:
                            prepared = None
                    if (
                        insert_only
                        and prepared is not None
                        and prepared.signs is not None
                    ):
                        # Sources that cannot declare themselves signed
                        # up front (a generator of (u, v, sign) triples)
                        # are caught here, batch by batch.
                        raise InvalidParameterError(
                            "signed batch reached insert-only estimator(s) "
                            f"{insert_only}; deletions would be silently "
                            "counted as insertions"
                        )
                    if journal is not None and fresh:
                        # Append-before-deliver: the record is on disk
                        # (and flushed) before any estimator sees the
                        # batch, so a kill cannot lose delivered edges.
                        if prepared is None:
                            raise InvalidParameterError(
                                "journaling requires columnar batches; the "
                                "source yielded edges EdgeBatch cannot "
                                "represent"
                            )
                        journal_position = journal.append(prepared)
                    if journal_position is not None:
                        self._progress["journal"] = {
                            "segment": journal_position[0],
                            "offset": journal_position[1],
                        }
                    if prepared is not None and want_context:
                        prepared.context  # noqa: B018 -- build the shared index once
                    io_seconds += time.perf_counter() - t0
                    batches += 1
                    edges += len(batch)
                    for (name, estimator), fast in zip(self._pairs, fast_paths):
                        t1 = time.perf_counter()
                        if fast is not None and prepared is not None:
                            fast(prepared)
                        else:
                            estimator.update_batch(
                                batch if prepared is None else prepared
                            )
                        timings[name] += time.perf_counter() - t1
                    self._progress["edges_seen"] = base_edges + edges
                    self._progress["batches"] = base_batches + batches
                    global_batch = base_batches + batches
                    if checkpoint_path is not None and (
                        signal_seen[0]
                        or (checkpoint_every and global_batch % checkpoint_every == 0)
                    ):
                        signal_seen[0] = False
                        try:
                            _save_checkpoint(checkpoint_path)
                        except OSError as exc:
                            # A failed *periodic* snapshot costs only
                            # resume granularity, never the run: warn
                            # and keep streaming (the final checkpoint
                            # below still raises, because silently
                            # ending without durable state would).
                            warnings.warn(
                                CheckpointWriteWarning(
                                    f"periodic checkpoint to "
                                    f"{os.fspath(checkpoint_path)!r} failed "
                                    f"at batch {global_batch}: {exc}; "
                                    "continuing without it"
                                ),
                                stacklevel=2,
                            )
                    if every is not None and global_batch % every == 0:
                        yield _snapshot(final=False)
            finally:
                if restore_handler is not None:
                    signal_module.signal(*restore_handler)
            if skip_left[0]:
                raise InvalidParameterError(
                    f"stream ended {skip_left[0]} edges before the "
                    "checkpoint's position; it is not the stream that was "
                    "checkpointed"
                )
            if checkpoint_path is not None:
                _save_checkpoint(checkpoint_path)
            self._resume = None
            yield _snapshot(final=True)
        except BaseException:
            if state["resumed"] and self._resume is not None:
                # The pipeline's estimators are somewhere past the
                # checkpoint; silently retrying from here would
                # double-count the stream. Put the pipeline back in its
                # resumable state so a corrected run() call is safe.
                # (Reached on failure AND on generator abandonment --
                # GeneratorExit lands here too.)
                self._reload_after_failed_resume()
            raise
        finally:
            if journal is not None:
                journal.close()

    def _reporter_for(self, name: str, *, live: bool):
        """The result extractor for one estimator (live or final)."""
        if live and name in self._live_reporters:
            return self._live_reporters[name]
        if name in self._reporters:
            return self._reporters[name]
        if name in ESTIMATORS:
            spec = ESTIMATORS.get(name)
            if live and spec.live_report is not None:
                return spec.live_report
            return spec.report
        return _default_report

    def _reload_after_failed_resume(self) -> None:
        """Restore the resumable state after a failed resumed pass.

        Best effort: if the checkpoint itself cannot be reloaded, the
        pipeline is poisoned instead, so the next :meth:`run` raises
        rather than silently replaying the stream over half-advanced
        estimators.
        """
        try:
            self.resume(self._resume_path)
        except Exception:
            self._resume = None
            self._resume_poisoned = True

def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.4f}" if abs(value) < 100 else f"{value:,.1f}"
    return str(value)
