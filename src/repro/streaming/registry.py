"""Central registries for engines and streaming estimators.

Two registries back the pluggable surfaces of the package:

- :data:`ENGINES` maps engine names (``"reference"``, ``"bulk"``,
  ``"vectorized"``, ...) to the estimator-array classes that
  :class:`~repro.core.triangle_count.TriangleCounter` can run on. The
  engine classes register themselves where they are defined, replacing
  the old hard-coded ``_ENGINES`` dict, so an out-of-tree engine only
  needs ``@register_engine("mine")``.
- :data:`ESTIMATORS` maps estimator names (``"count"``,
  ``"transitivity"``, ``"sample"``, ``"exact"``, ...) to
  :class:`EstimatorSpec` entries that the
  :class:`~repro.streaming.pipeline.Pipeline` fan-out runner and the
  CLI's ``pipeline`` subcommand instantiate by name.

Registered objects need nothing beyond the
:class:`~repro.streaming.protocol.StreamingEstimator` surface; those
that also implement
:class:`~repro.streaming.protocol.PreparedEstimator`'s
``update_prepared`` automatically get the pipeline's columnar fast
path (shared :class:`~repro.streaming.batch.EdgeBatch` + per-batch
index, built once per batch for the whole fan-out).

Both registries raise :class:`~repro.errors.InvalidParameterError` with
the list of known names on a miss, so a CLI typo produces an actionable
message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, TypeVar

from ..errors import InvalidParameterError

__all__ = [
    "ENGINES",
    "ESTIMATORS",
    "EstimatorSpec",
    "Registry",
    "register_engine",
    "register_estimator",
    "reports",
]

T = TypeVar("T")


def _origin(obj: Any) -> tuple:
    """Where a registered object was defined (module, qualname).

    Identifies "the same definition re-executed" across module reloads:
    classes and functions carry both attributes; for
    :class:`EstimatorSpec` entries the spec's factory is inspected.
    """
    target = obj.factory if isinstance(obj, EstimatorSpec) else obj
    return (
        getattr(target, "__module__", None),
        getattr(target, "__qualname__", None),
    )


class Registry(Generic[T]):
    """A small name -> object registry with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, obj: T | None = None) -> Callable[[T], T] | T:
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering a name with a *different* object raises --
        registries are global, and a silent overwrite would make test
        runs order-dependent. Re-registering the same definition (same
        module and qualname, as ``importlib.reload`` / notebook
        autoreload produce) replaces the entry quietly.
        """

        def _add(entry: T) -> T:
            existing = self._entries.get(name)
            if existing is not None and _origin(existing) != _origin(entry):
                raise InvalidParameterError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._entries[name] = entry
            return entry

        if obj is None:
            return _add
        return _add(obj)

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise InvalidParameterError(
                f"unknown {self.kind} {name!r}; available: {known}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def items(self) -> Iterator[tuple[str, T]]:
        return iter(sorted(self._entries.items()))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class EstimatorSpec:
    """How the pipeline builds and reports one kind of estimator.

    Parameters
    ----------
    name:
        Registry key (also the CLI ``--estimator`` choice).
    factory:
        ``(num_estimators, seed, **options) -> estimator``. The result
        must satisfy :class:`~repro.streaming.protocol.StreamingEstimator`.
    report:
        ``estimator -> dict`` of final results (JSON-friendly values).
    live_report:
        Optional ``estimator -> dict`` used for *mid-stream* snapshots
        (:meth:`~repro.streaming.pipeline.Pipeline.snapshots`). Live
        reporters MUST be side-effect free -- in particular they must
        not draw from the estimator's generator, or observing the
        stream would change it (the ``sample`` spec's final reporter
        draws a triangle, so its live reporter reports the success
        fraction only). ``None`` falls back to ``report``, which is
        correct for every pure-query reporter.
    description:
        One line for ``--help`` and the README's estimator matrix.
    default_estimators:
        Pool size used when the caller does not specify one. Per-edge
        pure-Python estimators (cliques, windows) default far smaller
        than the vectorized ones.
    options:
        Extra keyword defaults forwarded to ``factory`` (e.g. a window
        length); callers may override them per run.
    """

    name: str
    factory: Callable[..., Any]
    report: Callable[[Any], dict]
    description: str = ""
    default_estimators: int = 10_000
    options: dict = field(default_factory=dict)
    live_report: Callable[[Any], dict] | None = None

    def create(
        self, num_estimators: int | None = None, seed: int | None = None, **overrides
    ) -> Any:
        """Instantiate the estimator with spec defaults applied."""
        kwargs = dict(self.options)
        kwargs.update(overrides)
        r = self.default_estimators if num_estimators is None else num_estimators
        return self.factory(r, seed, **kwargs)


ENGINES: Registry[type] = Registry("engine")
ESTIMATORS: Registry[EstimatorSpec] = Registry("estimator")


def register_engine(name: str) -> Callable[[type], type]:
    """Class decorator: register a triangle-counter engine under ``name``."""
    return ENGINES.register(name)


def register_estimator(
    name: str,
    *,
    description: str = "",
    default_estimators: int = 10_000,
    **options,
) -> Callable[[Callable], Callable]:
    """Decorator registering an estimator factory under ``name``.

    The decorated callable is the spec's factory
    (``(num_estimators, seed, **options) -> estimator``). Pair it with a
    result-reporter by stacking :func:`reports` underneath; factories
    without one fall back to reporting ``estimate()`` alone. See
    :mod:`repro.streaming.estimators` for usage.
    """

    def _add(factory: Callable) -> Callable:
        report = getattr(factory, "reporter", _default_report)
        ESTIMATORS.register(
            name,
            EstimatorSpec(
                name=name,
                factory=factory,
                report=report,
                description=description,
                default_estimators=default_estimators,
                options=dict(options),
                live_report=getattr(factory, "live_reporter", None),
            ),
        )
        return factory

    return _add


def reports(
    report: Callable[[Any], dict],
    *,
    live: Callable[[Any], dict] | None = None,
) -> Callable[[Callable], Callable]:
    """Attach a result-reporter to an estimator factory (see above).

    ``live`` optionally attaches a separate side-effect-free reporter
    for mid-stream snapshots (see :class:`EstimatorSpec.live_report`);
    without it, ``report`` serves both and must itself be a pure query.
    """

    def _attach(factory: Callable) -> Callable:
        factory.reporter = report
        if live is not None:
            factory.live_reporter = live
        return factory

    return _attach


def _default_report(estimator: Any) -> dict:
    """Fallback reporter: the scalar ``estimate()`` every engine has."""
    return {"estimate": float(estimator.estimate())}
