"""The streaming pipeline: lazy sources, the estimator protocol, fan-out.

This subpackage is the architectural backbone for one-pass processing:

- :mod:`repro.streaming.source` -- :class:`EdgeSource` and friends:
  batches lazily pulled from files, sequences, or generators, so
  file-backed runs use constant memory in the stream length;
- :mod:`repro.streaming.protocol` -- the :class:`StreamingEstimator`
  contract every algorithm satisfies;
- :mod:`repro.streaming.registry` -- decorator-based registries for
  triangle-counter engines and pipeline estimators;
- :mod:`repro.streaming.pipeline` -- :class:`Pipeline`, which drives
  any number of registered estimators over one stream read with
  per-estimator timing and a structured report, plus mid-stream
  checkpoint/resume and the live query surface
  (:meth:`Pipeline.snapshots`, yielding a :class:`PipelineSnapshot`
  every ``k`` batches while the stream flows -- over unbounded
  :class:`FollowSource`/:class:`LineSource` streams too);
- :mod:`repro.streaming.checkpoint` -- the versioned on-disk form of
  estimator state (npz + JSON manifest) behind
  :meth:`Pipeline.checkpoint` / :meth:`Pipeline.resume`;
- :mod:`repro.streaming.sharded` -- :class:`ShardedPipeline`, the
  multiprocess fan-out that shards every estimator pool across workers
  over one stream read and merges states through the
  :class:`CheckpointableEstimator` protocol;
- :mod:`repro.streaming.supervisor` -- :class:`ShardSupervisor`, the
  self-healing layer under the multiprocess paths (snapshots, bounded
  replay, bounded respawns), opted into via ``max_restarts``;
- :mod:`repro.streaming.faults` -- :class:`FaultPlan`, deterministic
  counter-based fault injection for drilling every recovery path;
- :mod:`repro.streaming.estimators` -- the registered specs for every
  algorithm in the package (imported below for its registration side
  effect).

Quick taste::

    from repro.streaming import FileSource, Pipeline

    report = Pipeline.from_registry(
        ["count", "transitivity", "sample"], seed=7
    ).run(FileSource("graph.edges"), batch_size=65_536)
    print(report.render())
"""

from . import faults
from .batch import BatchContext, EdgeBatch
from .faults import Fault, FaultPlan
from .checkpoint import (
    Checkpoint,
    fingerprints_compatible,
    load_checkpoint,
    save_checkpoint,
    source_fingerprint,
    verify_resume_source,
)
from .journal import (
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    JournalSource,
    JournalWriter,
    journal_records,
)
from .pipeline import (
    EstimatorReport,
    Pipeline,
    PipelineReport,
    PipelineSnapshot,
    derive_seed,
)
from .protocol import (
    BatchedEstimator,
    CheckpointableEstimator,
    PreparedEstimator,
    StreamingEstimator,
)
from .registry import (
    ENGINES,
    ESTIMATORS,
    EstimatorSpec,
    Registry,
    register_engine,
    register_estimator,
)
from .sharded import ShardedPipeline, derive_shard_seed, shard_sizes
from .shm import (
    BatchSender,
    ShmRing,
    ShmRingClient,
    TransportFeed,
    resolve_transport,
    shm_available,
)
from .supervisor import ShardSupervisor, Supervision
from .source import (
    EdgeSource,
    FileSource,
    FollowSource,
    IterableSource,
    LineSource,
    MemorySource,
    as_source,
    batched_iter,
)
from . import estimators as _estimators  # noqa: F401  (registers the specs)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "ENGINES",
    "ESTIMATORS",
    "FSYNC_POLICIES",
    "BatchContext",
    "BatchSender",
    "BatchedEstimator",
    "Checkpoint",
    "CheckpointableEstimator",
    "EdgeBatch",
    "EdgeSource",
    "EstimatorReport",
    "EstimatorSpec",
    "Fault",
    "FaultPlan",
    "FileSource",
    "FollowSource",
    "IterableSource",
    "JournalSource",
    "JournalWriter",
    "LineSource",
    "MemorySource",
    "Pipeline",
    "PipelineReport",
    "PipelineSnapshot",
    "PreparedEstimator",
    "Registry",
    "ShardSupervisor",
    "ShardedPipeline",
    "ShmRing",
    "ShmRingClient",
    "StreamingEstimator",
    "Supervision",
    "TransportFeed",
    "as_source",
    "batched_iter",
    "derive_seed",
    "derive_shard_seed",
    "faults",
    "fingerprints_compatible",
    "journal_records",
    "load_checkpoint",
    "register_engine",
    "register_estimator",
    "resolve_transport",
    "save_checkpoint",
    "shard_sizes",
    "shm_available",
    "source_fingerprint",
    "verify_resume_source",
]
