"""The streaming pipeline: lazy sources, the estimator protocol, fan-out.

This subpackage is the architectural backbone for one-pass processing:

- :mod:`repro.streaming.source` -- :class:`EdgeSource` and friends:
  batches lazily pulled from files, sequences, or generators, so
  file-backed runs use constant memory in the stream length;
- :mod:`repro.streaming.protocol` -- the :class:`StreamingEstimator`
  contract every algorithm satisfies;
- :mod:`repro.streaming.registry` -- decorator-based registries for
  triangle-counter engines and pipeline estimators;
- :mod:`repro.streaming.pipeline` -- :class:`Pipeline`, which drives
  any number of registered estimators over one stream read with
  per-estimator timing and a structured report;
- :mod:`repro.streaming.estimators` -- the registered specs for every
  algorithm in the package (imported below for its registration side
  effect).

Quick taste::

    from repro.streaming import FileSource, Pipeline

    report = Pipeline.from_registry(
        ["count", "transitivity", "sample"], seed=7
    ).run(FileSource("graph.edges"), batch_size=65_536)
    print(report.render())
"""

from .batch import BatchContext, EdgeBatch
from .pipeline import EstimatorReport, Pipeline, PipelineReport, derive_seed
from .protocol import (
    BatchedEstimator,
    CheckpointableEstimator,
    PreparedEstimator,
    StreamingEstimator,
)
from .registry import (
    ENGINES,
    ESTIMATORS,
    EstimatorSpec,
    Registry,
    register_engine,
    register_estimator,
)
from .source import (
    EdgeSource,
    FileSource,
    IterableSource,
    MemorySource,
    as_source,
    batched_iter,
)
from . import estimators as _estimators  # noqa: F401  (registers the specs)

__all__ = [
    "ENGINES",
    "ESTIMATORS",
    "BatchContext",
    "BatchedEstimator",
    "CheckpointableEstimator",
    "EdgeBatch",
    "EdgeSource",
    "EstimatorReport",
    "EstimatorSpec",
    "FileSource",
    "IterableSource",
    "MemorySource",
    "Pipeline",
    "PipelineReport",
    "PreparedEstimator",
    "Registry",
    "StreamingEstimator",
    "as_source",
    "batched_iter",
    "derive_seed",
    "register_engine",
    "register_estimator",
]
