"""Multicore sharding for *any* registered estimator pool.

The estimator dimension of every algorithm in the paper is
embarrassingly parallel: each estimator observes the whole stream
independently, so a pool of ``r`` splits into ``k`` shards that run on
separate cores over the same edges and merge by concatenation at the
end (the contract :class:`~repro.streaming.protocol.CheckpointableEstimator`
makes first-class -- the same "independent sub-estimators over one
stream" structure Pagh-Tsourakakis colorful sharding exploits).

:class:`ShardedPipeline` generalizes the counter-only
:class:`~repro.core.parallel.ParallelTriangleCounter` to the whole
estimator registry: the parent reads the stream **once** through an
:class:`~repro.streaming.source.EdgeSource` and fans each columnar
batch out to every worker's bounded queue; each worker runs its shard
of every requested estimator (built by name from
:data:`~repro.streaming.registry.ESTIMATORS`) and ships the state
dicts back; the parent restores them through ``load_state_dict`` and
concatenates through ``merge``, producing estimators that answer
queries exactly as a single-process pool of the same total size would.

Seed semantics: worker ``w``'s shard of estimator ``name`` is seeded
from ``SeedSequence([seed, crc32(name), SHARD_DOMAIN, w + 1])`` (see
:func:`derive_shard_seed`) -- deterministic, collision-resistant, and
independent across estimators, workers, and the single-process
fan-out's own seed derivation. A sharded run is
therefore reproducible under a fixed seed and *statistically*
equivalent to -- though not bit-identical with -- the single-process
fan-out, whose per-estimator seeds come from
:func:`~repro.streaming.pipeline.derive_seed`. Estimators whose pool is
smaller than the worker count (e.g. the deterministic ``exact``
baseline with its pool of one) simply run on fewer workers.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .batch import EdgeBatch
from .journal import DEFAULT_SEGMENT_BYTES, JournalWriter
from .pipeline import EstimatorReport, PipelineReport
from .registry import ESTIMATORS, _default_report
from .shm import BatchSender, TransportFeed, check_procs_alive
from .source import as_source

__all__ = ["ShardedPipeline", "derive_shard_seed", "shard_sizes"]

#: Batches in flight per worker queue (see ``core.parallel``).
_QUEUE_DEPTH = 4

#: Domain-separation key for shard seeds. SeedSequence zero-pads its
#: entropy, so ``[seed, crc, 0]`` would collide with the single-process
#: ``derive_seed``'s ``[seed, crc]`` -- worker 0's shard would run the
#: exact random stream of the full single-process pool. The marker (and
#: 1-based worker index) keeps the sharded domain disjoint.
_SHARD_DOMAIN = 0x53484152  # "SHAR"


def shard_sizes(total: int, workers: int) -> list[int]:
    """Split a pool of ``total`` estimators as evenly as possible."""
    if total < 1:
        raise InvalidParameterError(f"pool size must be >= 1, got {total}")
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    base, extra = divmod(total, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


def derive_shard_seed(seed: int | None, name: str, worker: int) -> int | None:
    """The seed for worker ``worker``'s shard of estimator ``name``.

    ``None`` stays ``None`` (OS entropy per worker). Otherwise the seed
    is drawn through :class:`numpy.random.SeedSequence` keyed on the
    root seed, the estimator name's CRC-32, a shard-domain marker, and
    the worker index -- the sharded analogue of
    :func:`~repro.streaming.pipeline.derive_seed`, so shards of one
    estimator never run correlated reservoirs, neither do shards of
    different estimators, and no shard shares a stream with the
    single-process fan-out's pools.
    """
    if seed is None:
        return None
    entropy = np.random.SeedSequence(
        [seed, zlib.crc32(name.encode("utf-8")), _SHARD_DOMAIN, worker + 1]
    )
    return int(entropy.generate_state(1, np.uint32)[0])


def _build_estimators(specs: Sequence[Mapping[str, Any]]) -> list[tuple[str, Any]]:
    """Instantiate one worker's shard of every assigned estimator."""
    pairs = []
    for spec in specs:
        registered = ESTIMATORS.get(spec["name"])
        estimator = registered.create(
            spec["num_estimators"], spec["seed"], **spec["options"]
        )
        pairs.append((spec["name"], estimator))
    return pairs


def _consume(
    pairs: Sequence[tuple[str, Any]], batches: Iterable
) -> tuple[int, int, dict[str, float]]:
    """Feed ``batches`` to every estimator (the worker-side stream loop).

    The same dispatch as :meth:`~repro.streaming.pipeline.Pipeline.run`
    -- shared prepared batch, shared per-batch index (with the
    unique-vertex/edge-key views the output-sensitive engines intersect
    against their watch indexes, one precomputation for the whole
    worker pool), per-estimator timings -- minus reporting: workers
    ship state, never results, so reporters that consume randomness
    (e.g. the sampler's release draw) only ever run on the merged
    estimators in the parent.
    """
    fast_paths = [getattr(est, "update_prepared", None) for _, est in pairs]
    want_context = any(
        fast is not None and getattr(est, "uses_batch_context", True)
        for (_, est), fast in zip(pairs, fast_paths)
    )
    insert_only = [
        name
        for name, est in pairs
        if not getattr(est, "supports_deletions", False)
    ]
    timings = {name: 0.0 for name, _ in pairs}
    edges = 0
    batch_count = 0
    for batch in batches:
        if isinstance(batch, np.ndarray):
            batch = EdgeBatch.from_wire(batch)
        prepared = batch if isinstance(batch, EdgeBatch) else None
        if (
            insert_only
            and prepared is not None
            and prepared.signs is not None
        ):
            raise InvalidParameterError(
                "signed batch reached insert-only estimator(s) "
                f"{insert_only}; deletions would be silently counted "
                "as insertions"
            )
        if prepared is not None and want_context:
            prepared.context  # noqa: B018 -- build the shared index once
        edges += len(batch)
        batch_count += 1
        for (name, estimator), fast in zip(pairs, fast_paths):
            t0 = time.perf_counter()
            if fast is not None and prepared is not None:
                fast(prepared)
            else:
                estimator.update_batch(batch)
            timings[name] += time.perf_counter() - t0
    return edges, batch_count, timings


def _journaled(batches: Iterable, journal: JournalWriter) -> Iterable:
    """Append every batch to ``journal`` before it fans out to workers.

    The sharded analogue of the single-process pipeline's
    append-before-deliver: a batch is durably journaled before any
    worker queue (or the supervisor's replay window) sees it, so the
    journal is always a superset of what the workers consumed.
    """
    for batch in batches:
        if not isinstance(batch, EdgeBatch):
            raise InvalidParameterError(
                "journaling requires columnar batches; the source yielded "
                f"{type(batch).__name__}"
            )
        journal.append(batch)
        yield batch


def _worker_loop(in_queue, out_queue, index: int, specs, shm_client=None) -> None:
    """Process one worker's shards; ship back ``{name: state_dict}``.

    Mirrors ``core.parallel._worker_loop``: on an exception the input
    queue is drained to its sentinel first (the parent writes to
    bounded queues, and shared-memory descriptors must have their ring
    slots released), and the error ships back in the state's place.
    The original traceback text always rides along as the result's
    third element -- ``format_exc`` is captured *before* the pickle
    probe, so even an unpicklable exception reports its own failure
    site rather than the pickling error's.
    """
    import pickle
    import traceback

    feed = TransportFeed(in_queue, shm_client)
    try:
        pairs = _build_estimators(specs)
        _, _, timings = _consume(pairs, feed)
        states = {name: est.state_dict() for name, est in pairs}
        result = ("ok", states, timings)
    except Exception as exc:
        tb = traceback.format_exc()
        feed.drain()
        try:
            pickle.dumps(exc)
            result = ("error", exc, tb)
        except Exception:  # pragma: no cover - unpicklable exception
            result = ("error", RuntimeError(tb), tb)
    finally:
        if shm_client is not None:
            shm_client.close()
    out_queue.put((index, result))


class ShardedPipeline:
    """Fan one stream read out to sharded pools across worker processes.

    Parameters
    ----------
    names:
        Estimator names from :data:`~repro.streaming.registry.ESTIMATORS`
        (the same choices as ``Pipeline.from_registry`` and the CLI).
    workers:
        Worker processes; each runs ``~r/workers`` estimators of every
        pool (estimators whose pool is smaller run on fewer workers).
    num_estimators:
        Total pool size per estimator; ``None`` uses each spec's
        default -- the same totals a single-process fan-out would use.
    seed:
        Root seed; shards draw :func:`derive_shard_seed` children.
    options:
        Per-name factory keyword overrides, as in
        :meth:`~repro.streaming.pipeline.Pipeline.from_registry`.
    transport:
        How batches reach the workers: ``"shm"`` (zero-copy
        shared-memory ring), ``"queue"`` (per-worker pickled copies),
        or ``"auto"`` (shm when the platform supports it). Results are
        bit-identical across transports.
    max_restarts:
        Per-worker respawn budget. ``0`` (the default) keeps the legacy
        fail-fast path: a dead worker aborts the run. Any other value
        routes the run through the self-healing
        :class:`~repro.streaming.supervisor.ShardSupervisor` --
        snapshots, bounded replay, restarts -- and stays bit-identical
        to an uninterrupted run under a fixed seed.
    worker_deadline:
        Seconds of no progress before a live-but-stuck worker is
        treated as hung and recovered (``None`` disables the watchdog).
        Setting it implies the supervised path.
    snapshot_every:
        Supervised-path snapshot cadence in batches (bounds the replay
        window recovery must re-feed).
    restart_backoff:
        First respawn delay in seconds, doubled per consecutive restart
        of the same worker.
    replay_window:
        Cap on the supervised path's in-memory replay buffer, in
        batches. Only honored when the run is journaled (``run`` with
        ``journal_dir``): excess batches are dropped from memory and
        recovery re-reads them from the journal. ``None`` (the
        default) keeps the buffer unbounded, the only safe choice
        without a journal to fall back on.
    fault_plan:
        A :class:`~repro.streaming.faults.FaultPlan` injected into the
        run (tests and chaos drills); implies the supervised path.
        ``None`` defers to the ``REPRO_FAULT_PLAN`` environment plan,
        which does *not* by itself change the execution path.
    """

    def __init__(
        self,
        names: Iterable[str],
        *,
        workers: int = 2,
        num_estimators: int | None = None,
        seed: int | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
        transport: str = "auto",
        max_restarts: int = 0,
        worker_deadline: float | None = None,
        snapshot_every: int = 32,
        restart_backoff: float = 0.1,
        replay_window: int | None = None,
        fault_plan=None,
    ) -> None:
        self.names = list(names)
        if not self.names:
            raise InvalidParameterError("pipeline needs at least one estimator")
        if len(set(self.names)) != len(self.names):
            raise InvalidParameterError(f"duplicate estimator names: {self.names}")
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        for name in self.names:
            ESTIMATORS.get(name)  # fail fast on unknown names
        if transport.strip().lower() not in ("auto", "shm", "queue"):
            raise InvalidParameterError(
                f"unknown transport {transport!r}; choose shm, queue, or auto"
            )
        if max_restarts < 0:
            raise InvalidParameterError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if worker_deadline is not None and worker_deadline <= 0:
            raise InvalidParameterError(
                f"worker_deadline must be positive, got {worker_deadline}"
            )
        if snapshot_every < 0:
            raise InvalidParameterError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        if replay_window is not None and replay_window < 0:
            raise InvalidParameterError(
                f"replay_window must be >= 0, got {replay_window}"
            )
        self.workers = workers
        self.num_estimators = num_estimators
        self.seed = seed
        self.transport = transport
        self.max_restarts = max_restarts
        self.worker_deadline = worker_deadline
        self.snapshot_every = snapshot_every
        self.restart_backoff = restart_backoff
        self.replay_window = replay_window
        self.fault_plan = fault_plan
        self.last_restarts: list[int] = []
        self._options = {k: dict(v) for k, v in (options or {}).items()}
        self._merged: list[tuple[str, Any]] | None = None

    @property
    def _supervised(self) -> bool:
        return (
            self.max_restarts > 0
            or self.worker_deadline is not None
            or self.fault_plan is not None
        )

    # ------------------------------------------------------------------
    # plan
    # ------------------------------------------------------------------
    def _pool_size(self, name: str) -> int:
        default = ESTIMATORS.get(name).default_estimators
        if default == 1:
            # A spec with a declared pool of one (the deterministic
            # exact baseline) gains nothing from sharding: running
            # copies on several workers would just duplicate work.
            return 1
        if self.num_estimators is not None:
            return self.num_estimators
        return default

    def worker_specs(self) -> list[list[dict[str, Any]]]:
        """The per-worker build plan: which shard of which pool, seeded how.

        Exposed so tests (and curious operators) can reproduce a
        sharded run in a single process and verify the merge is
        bit-identical to the multiprocess execution.
        """
        shards = {
            name: shard_sizes(self._pool_size(name), self.workers)
            for name in self.names
        }
        return [
            [
                {
                    "name": name,
                    "num_estimators": shards[name][w],
                    "seed": derive_shard_seed(self.seed, name, w),
                    "options": dict(self._options.get(name, {})),
                }
                for name in self.names
                if shards[name][w] > 0
            ]
            for w in range(self.workers)
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        source,
        *,
        batch_size: int = 65_536,
        journal_dir=None,
        journal_fsync: str = "batch",
        journal_max_segment: int = DEFAULT_SEGMENT_BYTES,
    ) -> PipelineReport:
        """Shard every pool across the workers over one stream read.

        ``source`` is anything :func:`~repro.streaming.source.as_source`
        accepts; the parent reads it exactly once. Returns the same
        :class:`~repro.streaming.pipeline.PipelineReport` a
        single-process run produces (per-estimator ``seconds`` is the
        maximum across workers -- the parallel wall-clock share).

        ``journal_dir`` arms the durable ingest journal: the parent
        appends every batch *before* fanning it out, so the on-disk
        journal is always a superset of what any worker consumed, and
        the supervised path can cap its in-memory replay window
        (``replay_window``) by re-reading dropped batches from disk
        during recovery.
        """
        specs = self.worker_specs()
        source = as_source(source)
        # Fail fast on estimators that cannot ship state back: a probe
        # instance is cheap, and discovering the problem inside a
        # worker would otherwise surface as a shipped-back error after
        # the whole stream was read. state_dict is *called*, not
        # hasattr-checked: delegating wrappers (TriangleCounter over a
        # non-checkpointable engine) expose the method and raise only
        # when it runs. The same probes answer the turnstile capability
        # check: a signed source aimed at any insert-only estimator is
        # rejected here, before a worker is spawned or a byte streamed.
        insert_only = []
        for name in self.names:
            probe = ESTIMATORS.get(name).create(
                1, None, **self._options.get(name, {})
            )
            for method in ("state_dict", "load_state_dict", "merge"):
                if not hasattr(probe, method):
                    raise InvalidParameterError(
                        f"estimator {name!r} does not support {method}(); "
                        "it cannot be sharded across workers"
                    )
            try:
                probe.state_dict()
            except InvalidParameterError as exc:
                raise InvalidParameterError(
                    f"estimator {name!r} cannot be sharded across workers: "
                    f"{exc}"
                ) from exc
            if not getattr(probe, "supports_deletions", False):
                insert_only.append(name)
        if getattr(source, "signed", False) and insert_only:
            raise InvalidParameterError(
                "source is a signed (turnstile) stream, but estimator(s) "
                f"{insert_only} are insert-only and would silently count "
                "deletions as insertions; use deletion-capable estimators "
                "('triest-fd', 'dynamic-sampler') for signed input"
            )
        journal = None
        if journal_dir is not None:
            journal = JournalWriter(
                journal_dir,
                fsync=journal_fsync,
                max_segment_bytes=journal_max_segment,
            )
        start = time.perf_counter()
        try:
            stream = source.batches(batch_size)
            if journal is not None:
                stream = _journaled(stream, journal)
            if self.workers == 1:
                pairs = _build_estimators(specs[0])
                edges, batches, timings = _consume(pairs, stream)
                merged_pairs = pairs
                merged_timings = timings
            else:
                if self._supervised:
                    runner = self._run_supervised
                else:
                    runner = self._run_workers
                edges, batches, worker_states, worker_timings = runner(
                    specs, stream, batch_size, journal
                )
                merged_pairs = self._merge_states(worker_states)
                merged_timings = {
                    name: max(
                        (t.get(name, 0.0) for t in worker_timings), default=0.0
                    )
                    for name in self.names
                }
        finally:
            if journal is not None:
                journal.close()
        self._merged = merged_pairs
        total = time.perf_counter() - start
        report = PipelineReport(
            edges=edges, batches=batches, seconds=total, io_seconds=0.0
        )
        for name, estimator in merged_pairs:
            reporter = (
                ESTIMATORS.get(name).report if name in ESTIMATORS else _default_report
            )
            report.estimators.append(
                EstimatorReport(
                    name=name,
                    seconds=merged_timings.get(name, 0.0),
                    results=reporter(estimator),
                )
            )
        return report

    def _run_workers(self, specs, stream, batch_size, journal=None):
        """The multiprocess path: bounded queues, one stream read.

        ``journal`` is unused here -- appends already happened upstream
        in the :func:`_journaled` wrapper around ``stream`` -- but rides
        the shared runner signature with :meth:`_run_supervised`, which
        needs the writer for recovery.
        """
        import multiprocessing
        import queue as queue_module

        from ..core.parallel import _collect_results, _put_alive

        ctx = multiprocessing.get_context()
        sender = BatchSender(
            ctx,
            transport=self.transport,
            consumers=self.workers,
            batch_size=batch_size,
            queue_depth=_QUEUE_DEPTH,
        )
        in_queues = [ctx.Queue(maxsize=_QUEUE_DEPTH) for _ in range(self.workers)]
        out_queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker_loop,
                args=(in_queues[i], out_queue, i, specs[i], sender.client(i)),
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for proc in procs:
            proc.start()
        edges = 0
        batches = 0
        try:
            try:
                for batch in stream:
                    payload = sender.payload(
                        batch, lambda: check_procs_alive(procs)
                    )
                    edges += len(batch)
                    batches += 1
                    for i, queue in enumerate(in_queues):
                        _put_alive(queue, payload, procs[i], i)
            finally:
                # Always send the sentinel, even when the source raises
                # mid-stream -- workers block on get otherwise.
                for queue in in_queues:
                    try:
                        queue.put(None, timeout=5.0)
                    except queue_module.Full:  # pragma: no cover
                        pass
            indexed = _collect_results(out_queue, procs)
        finally:
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
            # After the join: unlinking frees the blocks only once the
            # last worker detaches, and a crash path (terminate above)
            # must still remove every named segment.
            sender.close()
        worker_states: list[dict] = []
        worker_timings: list[dict] = []
        for _, result in sorted(indexed):
            status, payload, extra = result
            if status == "error":
                if extra:
                    payload.add_note(f"worker traceback:\n{extra}")
                raise payload
            worker_states.append(payload)
            worker_timings.append(extra)
        return edges, batches, worker_states, worker_timings

    def _run_supervised(self, specs, stream, batch_size, journal=None):
        """The self-healing path: snapshots, replay, bounded respawns.

        Same contract as :meth:`_run_workers` -- one stream read, the
        same merged result bit for bit -- but worker crashes and hangs
        are recovered (up to ``max_restarts`` each) instead of aborting
        the run. With a ``journal``, the supervisor's replay window may
        be capped (``replay_window``): catch-up re-reads the dropped
        prefix from disk. See :mod:`repro.streaming.supervisor`.
        """
        import multiprocessing

        from .supervisor import (
            EstimatorShardProgram,
            ShardSupervisor,
            Supervision,
        )

        ctx = multiprocessing.get_context()
        supervisor = ShardSupervisor(
            ctx,
            [EstimatorShardProgram(spec) for spec in specs],
            transport=self.transport,
            batch_size=batch_size,
            queue_depth=_QUEUE_DEPTH,
            policy=Supervision(
                max_restarts=self.max_restarts,
                worker_deadline=self.worker_deadline,
                snapshot_every=self.snapshot_every,
                backoff=self.restart_backoff,
                replay_window=self.replay_window,
            ),
            fault_plan=self.fault_plan,
            journal=journal,
        )
        counts = [0, 0]

        def counted(batches):
            for batch in batches:
                counts[0] += len(batch)
                counts[1] += 1
                yield batch

        finals = supervisor.run(counted(stream))
        self.last_restarts = supervisor.restarts
        worker_states = [states for states, _ in finals]
        worker_timings = [timings for _, timings in finals]
        return counts[0], counts[1], worker_states, worker_timings

    def _merge_states(self, worker_states: list[dict]) -> list[tuple[str, Any]]:
        """Restore worker shards and concatenate them per estimator."""
        merged_pairs = []
        for name in self.names:
            registered = ESTIMATORS.get(name)
            options = dict(self._options.get(name, {}))
            merged = None
            for states in worker_states:
                if name not in states:
                    continue  # this worker held no shard of the pool
                shard = registered.create(1, None, **options)
                shard.load_state_dict(states[name])
                if merged is None:
                    merged = shard
                else:
                    merged.merge(shard)
            if merged is None:  # pragma: no cover - defensive
                raise InvalidParameterError(
                    f"no worker returned state for estimator {name!r}"
                )
            merged_pairs.append((name, merged))
        return merged_pairs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimator(self, name: str) -> Any:
        """The merged estimator after :meth:`run` (for further queries)."""
        if self._merged is None:
            raise InvalidParameterError("call run() first")
        for pair_name, estimator in self._merged:
            if pair_name == name:
                return estimator
        raise KeyError(name)
