"""Durable checkpoints: the on-disk form of estimator state.

The paper's one-pass model makes estimator state the *entire* message a
streaming node must persist or ship (it is literally Alice's message in
the Theorem 3.13 protocol). This module gives that message a versioned
on-disk format shared by every
:class:`~repro.streaming.protocol.CheckpointableEstimator`:

- ``manifest.json`` -- the JSON manifest: format version, stream
  progress (``edges_seen``, ``batches``, ``batch_size``), a stream
  fingerprint, and one entry per estimator name holding every
  JSON-serializable piece of its ``state_dict`` (scalars, nested
  structures, rng states);
- ``arrays-<token>.npz`` -- every numpy array reachable from any state
  dict, keyed by its path within the manifest (so a 100k-estimator
  pool's arrays are stored in binary, not JSON). Each snapshot writes
  a fresh, uniquely named member that the manifest references, so
  overwriting a live checkpoint is crash-safe too.

:meth:`~repro.streaming.pipeline.Pipeline.checkpoint` and
:meth:`~repro.streaming.pipeline.Pipeline.resume` drive this format;
:class:`~repro.streaming.sharded.ShardedPipeline` ships the same state
dicts across process boundaries and merges them through the protocol's
``merge``. The legacy single-counter helpers in
:mod:`repro.core.checkpoint` are thin wrappers over the protocol
methods.

Writes are two-phase: the arrays member lands first, the manifest last
(each via a temp file and ``os.replace``), so a crash mid-write never
leaves a checkpoint that parses. Both temp files are flushed and
``fsync``'d before their rename, and the directory itself is synced
after the seal -- without that, a power loss after ``os.replace`` could
surface a manifest whose *contents* never reached the platter (rename
is atomic in the namespace, not in the data journal).
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..errors import InvalidParameterError
from .source import EdgeSource, FileSource, MemorySource

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "source_fingerprint",
    "fingerprints_compatible",
    "verify_resume_source",
]

CHECKPOINT_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_ARRAY_MARK = "__array__"
_FINGERPRINT_HEAD = 1 << 16  # bytes of a file hashed for its fingerprint


@dataclass
class Checkpoint:
    """A loaded checkpoint: stream progress plus per-estimator states."""

    edges_seen: int
    batches: int
    batch_size: int
    states: dict[str, dict]
    fingerprint: dict | None = None
    version: int = CHECKPOINT_VERSION
    metadata: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# state <-> (JSON tree, arrays) encoding
# ---------------------------------------------------------------------------

def _encode(value: Any, path: str, arrays: dict[str, np.ndarray]) -> Any:
    """Strip arrays out of a state value, leaving JSON-safe markers.

    ``path`` uniquely identifies the value's position in the manifest
    tree; it doubles as the array's key in the npz member.
    """
    if isinstance(value, np.ndarray):
        arrays[path] = value
        return {_ARRAY_MARK: path}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _encode(v, f"{path}/{k}", arrays) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v, f"{path}/{i}", arrays) for i, v in enumerate(value)]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise InvalidParameterError(
        f"state value at {path!r} is not checkpointable: {type(value).__name__}"
    )


def _decode(value: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Reverse :func:`_encode`, splicing arrays back into the tree."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_MARK}:
            return arrays[value[_ARRAY_MARK]]
        return {k: _decode(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v, arrays) for v in value]
    return value


# ---------------------------------------------------------------------------
# save / load
# ---------------------------------------------------------------------------

def _fsync_dir(path: str) -> None:
    """Sync the directory entry so the sealed rename itself is durable.

    Best-effort: some filesystems (and platforms) refuse to fsync a
    directory fd, which must not fail an otherwise-complete save.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - unopenable directory
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def save_checkpoint(
    path: str | os.PathLike,
    states: Mapping[str, dict],
    *,
    edges_seen: int,
    batches: int = 0,
    batch_size: int = 0,
    fingerprint: dict | None = None,
    metadata: Mapping[str, Any] | None = None,
) -> None:
    """Write a checkpoint directory at ``path`` (created if needed).

    ``states`` maps estimator names to their ``state_dict()`` output.
    Each snapshot writes a *fresh*, uniquely named arrays member and
    seals it by replacing the manifest (which names the member) last:
    whichever manifest survives a crash always pairs with the arrays
    file it was written against, so overwriting a live checkpoint in
    place never produces a mixed-generation state. Stale arrays
    members are swept after the seal.
    """
    from . import faults as _faults

    _faults.fire_checkpoint_save()
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    arrays_name = f"arrays-{uuid.uuid4().hex[:12]}.npz"
    manifest = {
        "format": "repro-checkpoint",
        "version": CHECKPOINT_VERSION,
        "arrays": arrays_name,
        "edges_seen": int(edges_seen),
        "batches": int(batches),
        "batch_size": int(batch_size),
        "fingerprint": fingerprint,
        "metadata": dict(metadata or {}),
        "estimators": {
            str(name): _encode(dict(state), str(name), arrays)
            for name, state in states.items()
        },
    }
    arrays_tmp = os.path.join(path, arrays_name + ".tmp")
    with open(arrays_tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(arrays_tmp, os.path.join(path, arrays_name))
    manifest_tmp = os.path.join(path, _MANIFEST + ".tmp")
    with open(manifest_tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(manifest_tmp, os.path.join(path, _MANIFEST))
    _fsync_dir(path)
    for entry in os.listdir(path):
        if (
            entry.startswith("arrays-") and entry != arrays_name
        ) or entry.endswith(".tmp"):
            try:
                os.remove(os.path.join(path, entry))
            except OSError:  # pragma: no cover - concurrent sweep
                pass


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    path = os.fspath(path)
    manifest_path = os.path.join(path, _MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise InvalidParameterError(
            f"no checkpoint at {path!r} (missing {_MANIFEST})"
        ) from None
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(
            f"corrupt checkpoint manifest at {manifest_path!r}: {exc}"
        ) from None
    if manifest.get("format") != "repro-checkpoint":
        raise InvalidParameterError(f"{path!r} is not a repro checkpoint")
    version = int(manifest.get("version", 0))
    if version > CHECKPOINT_VERSION:
        raise InvalidParameterError(
            f"checkpoint version {version} is newer than supported "
            f"({CHECKPOINT_VERSION}); upgrade the package to load it"
        )
    arrays_name = manifest.get("arrays", _ARRAYS)
    with np.load(os.path.join(path, arrays_name)) as npz:
        arrays = {key: npz[key] for key in npz.files}
    states = {
        name: _decode(tree, arrays)
        for name, tree in manifest["estimators"].items()
    }
    return Checkpoint(
        edges_seen=int(manifest["edges_seen"]),
        batches=int(manifest.get("batches", 0)),
        batch_size=int(manifest.get("batch_size", 0)),
        states=states,
        fingerprint=manifest.get("fingerprint"),
        version=version,
        metadata=manifest.get("metadata", {}),
    )


# ---------------------------------------------------------------------------
# stream identity
# ---------------------------------------------------------------------------

def source_fingerprint(
    source: EdgeSource, *, head_bytes: int | None = None
) -> dict | None:
    """A cheap identity for a replayable stream, or ``None``.

    Resuming against a different stream than the one checkpointed
    silently corrupts every estimate, so
    :meth:`~repro.streaming.pipeline.Pipeline.run` compares this
    against the fingerprint stored in the manifest. Files are
    identified by a hash of their head window (whose length is recorded
    so a later, longer file can be re-hashed over the *same* window --
    appending to a stream must not invalidate its checkpoints);
    in-memory columnar streams by a hash of the full edge array.
    One-shot iterables (and non-columnar memory inputs) have no stable
    identity and return ``None``, which disables the check.
    """
    if isinstance(source, FileSource):
        try:
            size = os.stat(source.path).st_size
            with open(source.path, "rb") as handle:
                head = handle.read(
                    _FINGERPRINT_HEAD if head_bytes is None else head_bytes
                )
        except OSError:
            return None
        return {
            "kind": "file",
            "size": int(size),
            "head_bytes": len(head),
            "head_sha256": hashlib.sha256(head).hexdigest(),
            "deduplicate": bool(source.deduplicate),
        }
    if isinstance(source, MemorySource):
        whole = source._whole()
        if whole is None:
            return None
        digest = hashlib.sha256(np.ascontiguousarray(whole.array).tobytes())
        return {
            "kind": "memory",
            "edges": int(len(whole)),
            "sha256": digest.hexdigest(),
        }
    return None


def fingerprints_compatible(saved: dict | None, current: dict | None) -> bool:
    """Whether a checkpointed fingerprint matches the stream being resumed.

    ``None`` on either side disables the check (one-shot iterables have
    no stable identity). Files compare by prefix identity -- head hash
    over the same window, dedup setting, and non-shrinking size -- so a
    file that *grew* since the snapshot still resumes: appending to the
    stream and continuing from the checkpoint is the expected
    production workflow (``current`` must be hashed over the saved
    window; :func:`verify_resume_source` arranges that). In-memory
    streams compare exactly.
    """
    if saved is None or current is None:
        return True
    if saved.get("kind") != current.get("kind"):
        return False
    if saved.get("kind") == "file":
        return (
            saved.get("head_bytes") == current.get("head_bytes")
            and saved.get("head_sha256") == current.get("head_sha256")
            and saved.get("deduplicate") == current.get("deduplicate")
            and int(current.get("size", 0)) >= int(saved.get("size", 0))
        )
    return saved == current


def verify_resume_source(saved: dict | None, source: EdgeSource) -> bool:
    """Whether ``source`` plausibly replays the checkpointed stream.

    For file streams, the current file is re-hashed over the *saved*
    head window, so a file that grew since the snapshot (more edges
    appended) still verifies; any change within the original window, a
    shrunken file, or a different dedup setting does not.
    """
    if saved is None:
        return True
    head_bytes = None
    if saved.get("kind") == "file":
        head_bytes = saved.get("head_bytes")
    current = source_fingerprint(source, head_bytes=head_bytes)
    return fingerprints_compatible(saved, current)
