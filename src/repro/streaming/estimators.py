"""Registered estimator specs: every paper algorithm, one registry.

Importing this module (which ``repro.streaming`` does) populates the
:data:`~repro.streaming.registry.ESTIMATORS` registry with a spec per
streaming algorithm in the package, so ``Pipeline.from_registry`` and
``python -m repro pipeline --estimator <name>`` can instantiate any of
them by name.

The factories import from :mod:`repro.core` lazily (inside the function
bodies): the core modules themselves import
:mod:`repro.streaming.registry` to self-register engines, and deferring
the reverse imports to call time keeps the package import-order
agnostic.

Pool-size defaults are per spec: the vectorized estimators default to
paper-scale pools, while the per-edge pure-Python ones (cliques,
windows) default small enough to stay interactive.
"""

from __future__ import annotations

from ..errors import EmptyStreamError
from .registry import register_estimator, reports

__all__: list[str] = []


# ---------------------------------------------------------------------------
# triangle counting / transitivity / sampling (Sections 3.3-3.5)
# ---------------------------------------------------------------------------

def _count_report(counter) -> dict:
    return {
        "triangles": float(counter.estimate()),
        "holding_fraction": float(counter.fraction_holding_triangle()),
    }


@register_estimator(
    "count",
    description="approximate triangle count (Theorem 3.3, vectorized engine)",
    default_estimators=100_000,
)
@reports(_count_report)
def _make_count(num_estimators: int, seed: int | None, *, engine: str = "vectorized"):
    from ..core.triangle_count import TriangleCounter

    return TriangleCounter(num_estimators, engine=engine, seed=seed)


def _transitivity_report(est) -> dict:
    results = {
        "triangles": float(est.triangle_estimate()),
        "wedges": float(est.wedge_estimate()),
    }
    try:
        results["transitivity"] = float(est.estimate())
    except EmptyStreamError:
        results["transitivity"] = None
    return results


@register_estimator(
    "transitivity",
    description="transitivity coefficient kappa = 3*tau/zeta (Theorem 3.12)",
    default_estimators=100_000,
)
@reports(_transitivity_report)
def _make_transitivity(
    num_estimators: int, seed: int | None, *, wedge_estimators: int | None = None
):
    from ..core.transitivity import TransitivityEstimator

    return TransitivityEstimator(num_estimators, wedge_estimators, seed=seed)


@register_estimator(
    "wedges",
    description="approximate wedge count zeta (Lemma 3.11)",
    default_estimators=100_000,
)
def _make_wedges(num_estimators: int, seed: int | None):
    from ..core.transitivity import WedgeCounter

    return WedgeCounter(num_estimators, seed=seed)


def _sample_report(sampler) -> dict:
    results = {"success_fraction": float(sampler.success_fraction())}
    try:
        results["triangle"] = sampler.sample_one()
    except EmptyStreamError:
        results["triangle"] = None
    return results


def _sample_live_report(sampler) -> dict:
    # sample_one() draws from the sampler's generator, so the final
    # reporter cannot run mid-stream without perturbing every
    # subsequent batch; live snapshots report the pure queries only.
    return {"success_fraction": float(sampler.success_fraction())}


@register_estimator(
    "sample",
    description="uniform triangle sampling (Lemma 3.7 / Theorem 3.8)",
    default_estimators=50_000,
)
@reports(_sample_report, live=_sample_live_report)
def _make_sample(num_estimators: int, seed: int | None, *, max_degree: int | None = None):
    from ..core.triangle_sample import TriangleSampler

    return TriangleSampler(num_estimators, max_degree=max_degree, seed=seed)


# ---------------------------------------------------------------------------
# exact baseline (ground truth; O(m) memory)
# ---------------------------------------------------------------------------

def _exact_report(counter) -> dict:
    results = {"triangles": int(counter.triangles), "wedges": int(counter.wedges)}
    try:
        results["transitivity"] = float(counter.transitivity())
    except EmptyStreamError:
        results["transitivity"] = None
    return results


@register_estimator(
    "exact",
    description="exact streaming triangle/wedge counts (O(m) memory baseline)",
    default_estimators=1,
)
@reports(_exact_report)
def _make_exact(num_estimators: int, seed: int | None):
    from ..baselines.exact_stream import ExactStreamingCounter

    del num_estimators, seed  # exact counting has no pool and no randomness
    return ExactStreamingCounter()


# ---------------------------------------------------------------------------
# clique counting (Section 5.1) -- per-edge Python loops, small defaults
# ---------------------------------------------------------------------------

@register_estimator(
    "cliques4",
    description="approximate 4-clique count (Theorem 5.5)",
    default_estimators=256,
)
def _make_cliques4(num_estimators: int, seed: int | None):
    from ..core.cliques4 import CliqueCounter4

    return CliqueCounter4(num_estimators, seed=seed)


@register_estimator(
    "cliques",
    description="approximate K_l clique count for configurable l (Theorem 5.6)",
    default_estimators=128,
    size=4,
)
def _make_cliques(num_estimators: int, seed: int | None, *, size: int = 4):
    from ..core.cliques import CliqueCounter

    return CliqueCounter(size, num_estimators, seed=seed)


# ---------------------------------------------------------------------------
# windowed variants (Section 5.2)
# ---------------------------------------------------------------------------

def _window_report(counter) -> dict:
    return {"window_triangles": float(counter.estimate())}


@register_estimator(
    "sliding-window",
    description="triangle count over the last `window` edges (Theorem 5.8)",
    default_estimators=256,
    window=65_536,
)
@reports(_window_report)
def _make_sliding_window(num_estimators: int, seed: int | None, *, window: int = 65_536):
    from ..core.sliding_window import SlidingWindowTriangleCounter

    return SlidingWindowTriangleCounter(num_estimators, window, seed=seed)


class _ArrivalTimedWindowCounter:
    """Adapt the timed-window counter to plain (untimed) edge batches.

    The pipeline streams bare edges; this adapter stamps each edge with
    its arrival index, making the time horizon an edge-count horizon so
    the estimator composes with the other specs over the same source.
    """

    def __init__(self, num_estimators: int, horizon: float, *, seed: int | None) -> None:
        from ..core.timed_window import TimedWindowTriangleCounter

        self._counter = TimedWindowTriangleCounter(num_estimators, horizon, seed=seed)

    @property
    def edges_seen(self) -> int:
        return self._counter.edges_seen

    def update_batch(self, batch) -> None:
        base = self._counter.edges_seen
        self._counter.update_batch(
            (edge, float(base + i)) for i, edge in enumerate(batch)
        )

    def estimate(self) -> float:
        return self._counter.estimate()

    def window_size(self) -> int:
        return self._counter.window_size()

    def state_dict(self) -> dict:
        return self._counter.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self._counter.load_state_dict(state)

    def merge(self, other: "_ArrivalTimedWindowCounter") -> None:
        self._counter.merge(other._counter)


@register_estimator(
    "timed-window",
    description="timed-window triangle count, arrival index as the clock",
    default_estimators=256,
    horizon=65_536.0,
)
@reports(_window_report)
def _make_timed_window(
    num_estimators: int, seed: int | None, *, horizon: float = 65_536.0
):
    return _ArrivalTimedWindowCounter(num_estimators, horizon, seed=seed)


# ---------------------------------------------------------------------------
# fully-dynamic (turnstile) estimators -- deletion-capable
# ---------------------------------------------------------------------------

def _dynamic_report(counter) -> dict:
    return {
        "triangles": float(counter.estimate()),
        "net_edges": int(counter.net_edges()),
    }


@register_estimator(
    "triest-fd",
    description="TRIÈST-FD reservoir triangle count over insert/delete streams",
    default_estimators=32,
    memory=4_096,
)
@reports(_dynamic_report)
def _make_triest_fd(num_estimators: int, seed: int | None, *, memory: int = 4_096):
    from ..core.triest_fd import TriestFdCounter

    return TriestFdCounter(num_estimators, memory, seed=seed)


@register_estimator(
    "dynamic-sampler",
    description="vertex-subsampled turnstile triangle count (Bulteau et al.)",
    default_estimators=32,
    p=0.5,
)
@reports(_dynamic_report)
def _make_dynamic_sampler(num_estimators: int, seed: int | None, *, p: float = 0.5):
    from ..core.dynamic_sampler import DynamicSamplerCounter

    return DynamicSamplerCounter(num_estimators, p, seed=seed)
