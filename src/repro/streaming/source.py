"""Lazy edge sources: the input half of the streaming pipeline.

The paper's model is a one-pass adjacency stream, so no consumer should
ever need the whole edge list in memory. An :class:`EdgeSource` yields
the stream as fixed-size batches, lazily:

- :class:`FileSource` -- reads a SNAP-style edge-list file batch by
  batch with streaming dedup by default (pass ``deduplicate=False``
  for constant memory on already-simple inputs), replayable because
  every pass re-opens the file;
- :class:`MemorySource` -- wraps an in-memory sequence or
  :class:`~repro.graph.stream.EdgeStream` (replayable, zero-copy
  slicing);
- :class:`IterableSource` -- wraps a generator or other one-shot
  iterable; a second pass raises
  :class:`~repro.errors.SourceExhaustedError`.

:func:`as_source` coerces whatever a caller holds (path, stream,
sequence, generator, or an existing source) into an :class:`EdgeSource`,
which is what the CLI, the :class:`~repro.streaming.pipeline.Pipeline`
runner, the experiment harness, and the parallel counter all consume.

Batch boundaries are deterministic (``ceil(m / batch_size)`` batches,
all but the last of exactly ``batch_size`` edges), so estimators driven
from a file and from the equivalent in-memory list consume their RNG
identically and produce bit-identical results under a fixed seed.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence

from ..errors import SourceExhaustedError
from ..graph.edge import Edge
from ..graph.io import dedup_edges, iter_edge_list
from ..graph.stream import EdgeStream, batched

__all__ = [
    "EdgeSource",
    "FileSource",
    "MemorySource",
    "IterableSource",
    "as_source",
    "batched_iter",
]


def batched_iter(edges: Iterable[Edge], batch_size: int) -> Iterator[list[Edge]]:
    """Group any edge iterable into lists of ``batch_size`` edges.

    The iterator analogue of :func:`repro.graph.stream.batched`: only
    one batch is materialized at a time, so memory stays bounded by
    ``batch_size`` no matter how long the stream is.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[Edge] = []
    for edge in edges:
        batch.append(edge)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class EdgeSource(ABC):
    """A stream of edges consumable in fixed-size batches."""

    #: Whether :meth:`batches` may be called more than once.
    replayable: bool = True

    @abstractmethod
    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        """Yield the stream as consecutive batches of ``batch_size``."""

    def __iter__(self) -> Iterator[Edge]:
        """Iterate edge by edge (a batch size of one pass)."""
        for batch in self.batches(65_536):
            yield from batch


class FileSource(EdgeSource):
    """Lazily stream a whitespace-separated ``u v`` edge-list file.

    Parameters
    ----------
    path:
        The file to read. ``#`` comments, blank lines, and self-loops
        are skipped; edges are canonicalized (see
        :func:`repro.graph.io.iter_edge_list`).
    deduplicate:
        When ``True`` (default, matching :func:`repro.graph.io.read_edge_list`
        and the CLI), drop repeated edges on the fly so the stream is a
        simple graph's, as the paper assumes -- SNAP files often list
        both directions of each undirected edge. The membership set
        costs O(distinct edges) memory, so pass ``False`` for
        constant-memory streaming of inputs that are already simple.
    """

    def __init__(self, path: str | os.PathLike, *, deduplicate: bool = True) -> None:
        self.path = os.fspath(path)
        self.deduplicate = deduplicate

    def edges(self) -> Iterator[Edge]:
        """Lazily yield the (optionally deduplicated) edge stream."""
        edges = iter_edge_list(self.path)
        return dedup_edges(edges) if self.deduplicate else edges

    def batches(self, batch_size: int) -> Iterator[list[Edge]]:
        return batched_iter(self.edges(), batch_size)

    def __repr__(self) -> str:
        return f"FileSource({self.path!r}, deduplicate={self.deduplicate})"


class MemorySource(EdgeSource):
    """Wrap an in-memory edge sequence (list, tuple, or ``EdgeStream``)."""

    def __init__(self, edges: Sequence[Edge] | EdgeStream) -> None:
        self._edges = edges

    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        return batched(self._edges, batch_size)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"MemorySource(<{len(self._edges)} edges>)"


class IterableSource(EdgeSource):
    """Wrap a one-shot edge iterable (generator, file object, socket...).

    The source never materializes the stream: memory is bounded by one
    batch regardless of (possibly unbounded) stream length. It can be
    consumed exactly once.
    """

    replayable = False

    def __init__(self, edges: Iterable[Edge]) -> None:
        self._edges: Iterator[Edge] | None = iter(edges)

    def batches(self, batch_size: int) -> Iterator[list[Edge]]:
        if self._edges is None:
            raise SourceExhaustedError(
                "this IterableSource has already been consumed; wrap a "
                "FileSource or MemorySource for replayable streams"
            )
        edges, self._edges = self._edges, None
        return batched_iter(edges, batch_size)

    def __repr__(self) -> str:
        state = "exhausted" if self._edges is None else "fresh"
        return f"IterableSource(<{state}>)"


def as_source(obj) -> EdgeSource:
    """Coerce ``obj`` into an :class:`EdgeSource`.

    Accepts an existing source (returned as-is), a path (``str`` /
    ``os.PathLike`` -> :class:`FileSource`), an ``EdgeStream`` or any
    sequence (-> :class:`MemorySource`), or any other iterable
    (-> one-shot :class:`IterableSource`).
    """
    if isinstance(obj, EdgeSource):
        return obj
    if isinstance(obj, (str, os.PathLike)):
        return FileSource(obj)
    if isinstance(obj, (EdgeStream, Sequence)):
        return MemorySource(obj)
    if isinstance(obj, Iterable):
        return IterableSource(obj)
    raise TypeError(
        f"cannot build an EdgeSource from {type(obj).__name__!r}; expected a "
        "path, sequence, EdgeStream, iterable, or EdgeSource"
    )
