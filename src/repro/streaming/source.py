"""Lazy edge sources: the input half of the streaming pipeline.

The paper's model is a one-pass adjacency stream, so no consumer should
ever need the whole edge list in memory. An :class:`EdgeSource` yields
the stream as fixed-size batches, lazily -- and, since the columnar
refactor, as :class:`~repro.streaming.batch.EdgeBatch` objects:
validated, canonicalized ``(w, 2)`` int64 arrays that every estimator
in a fan-out shares (one conversion and one per-batch index per batch,
no matter how many consumers).

- :class:`FileSource` -- reads a SNAP-style edge-list file with the
  chunked columnar parser (:func:`repro.graph.io.iter_edge_array_chunks`),
  with vectorized streaming dedup by default (pass ``deduplicate=False``
  for constant memory on already-simple inputs); replayable because
  every pass re-opens the file;
- :class:`MemorySource` -- wraps an in-memory sequence, array, or
  :class:`~repro.graph.stream.EdgeStream`, coerced to one columnar
  array once and sliced into zero-copy batches (replayable);
- :class:`IterableSource` -- wraps a generator or other one-shot
  iterable, coercing each batch to columnar form as it is drawn; a
  second pass raises :class:`~repro.errors.SourceExhaustedError`.

:func:`as_source` coerces whatever a caller holds (path, stream, array,
sequence, generator, ``EdgeBatch``, or an existing source) into an
:class:`EdgeSource`, which is what the CLI, the
:class:`~repro.streaming.pipeline.Pipeline` runner, the experiment
harness, and the parallel counter all consume.

Batch boundaries are deterministic (``ceil(m / batch_size)`` batches,
all but the last of exactly ``batch_size`` edges), so estimators driven
from a file and from the equivalent in-memory list consume their RNG
identically and produce bit-identical results under a fixed seed.

For the in-memory sources, inputs the columnar form cannot represent
(self-loops destined for a tolerant per-edge consumer, ids outside
``[0, 2^31)``, exotic objects) fall back to the plain tuple-batch
path, preserving the historical behaviour. :class:`FileSource` is
columnar only: its files must keep vertex ids in ``[0, 2^31)`` (the
engines' packed-key domain, which every SNAP graph satisfies).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..errors import InvalidParameterError, SourceExhaustedError
from ..graph.edge import Edge
from ..graph.io import dedup_edge_arrays, iter_edge_array_chunks
from ..graph.stream import EdgeStream, batched
from .batch import EdgeBatch, rebatch_arrays

__all__ = [
    "EdgeSource",
    "FileSource",
    "MemorySource",
    "IterableSource",
    "as_source",
    "batched_iter",
]

#: Exceptions that mean "this input has no columnar form" -- the source
#: then serves plain tuple batches exactly as it did pre-refactor.
_COERCE_ERRORS = (InvalidParameterError, ValueError, TypeError, OverflowError)


def batched_iter(edges: Iterable[Edge], batch_size: int) -> Iterator[list[Edge]]:
    """Group any edge iterable into lists of ``batch_size`` edges.

    The iterator analogue of :func:`repro.graph.stream.batched`: only
    one batch is materialized at a time, so memory stays bounded by
    ``batch_size`` no matter how long the stream is.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[Edge] = []
    for edge in edges:
        batch.append(edge)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class EdgeSource(ABC):
    """A stream of edges consumable in fixed-size batches."""

    #: Whether :meth:`batches` may be called more than once.
    replayable: bool = True

    @abstractmethod
    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        """Yield the stream as consecutive batches of ``batch_size``.

        Batches are :class:`~repro.streaming.batch.EdgeBatch` objects
        whenever the input admits the columnar form (plain tuple lists
        otherwise); both behave as sequences of ``(u, v)`` tuples.
        """

    def __iter__(self) -> Iterator[Edge]:
        """Iterate edge by edge (a batch size of one pass)."""
        for batch in self.batches(65_536):
            yield from batch


class FileSource(EdgeSource):
    """Lazily stream a whitespace-separated ``u v`` edge-list file.

    Parsing is columnar: the file is read in ~1 MiB text blocks, each
    block converted to an int64 array in bulk, self-loops filtered and
    edges canonicalized with array operations, and the chunks re-cut
    into exact ``batch_size`` :class:`~repro.streaming.batch.EdgeBatch`
    slices. ``#`` comments and blank lines are skipped, as in SNAP
    files; vertex ids must lie in ``[0, 2^31)``.

    Parameters
    ----------
    path:
        The file to read.
    deduplicate:
        When ``True`` (default, matching :func:`repro.graph.io.read_edge_list`
        and the CLI), drop repeated edges on the fly so the stream is a
        simple graph's, as the paper assumes -- SNAP files often list
        both directions of each undirected edge. Dedup is vectorized
        over packed int64 edge keys and costs O(distinct edges) memory,
        so pass ``False`` for constant-memory streaming of inputs that
        are already simple.
    """

    def __init__(self, path: str | os.PathLike, *, deduplicate: bool = True) -> None:
        self.path = os.fspath(path)
        self.deduplicate = deduplicate

    def edges(self) -> Iterator[Edge]:
        """Lazily yield the (optionally deduplicated) edge stream."""
        for batch in self.batches(65_536):
            yield from batch

    def batches(self, batch_size: int) -> Iterator[EdgeBatch]:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        # Fail fast on a missing/unreadable path: the parser below is a
        # generator, so without this probe the FileNotFoundError would
        # surface only at the first next() deep inside a pipeline run.
        with open(self.path, "rb"):
            pass
        chunks = iter_edge_array_chunks(self.path)
        if self.deduplicate:
            chunks = dedup_edge_arrays(chunks)
        return (EdgeBatch(arr) for arr in rebatch_arrays(chunks, batch_size))

    def __repr__(self) -> str:
        return f"FileSource({self.path!r}, deduplicate={self.deduplicate})"


class MemorySource(EdgeSource):
    """Wrap an in-memory edge collection (sequence, array, ``EdgeStream``).

    The collection is coerced to one columnar
    :class:`~repro.streaming.batch.EdgeBatch` on first use (validated
    and canonicalized exactly once); batches are zero-copy slices of
    that array. Inputs without a columnar form are served as plain
    tuple slices instead.
    """

    def __init__(self, edges: Sequence[Edge] | EdgeStream | np.ndarray | EdgeBatch) -> None:
        self._edges = edges
        self._columnar: EdgeBatch | None = None
        self._coerced = False

    def _whole(self) -> EdgeBatch | None:
        """The full stream as one EdgeBatch, or None if not coercible."""
        if not self._coerced:
            self._coerced = True
            raw = self._edges
            if isinstance(raw, EdgeStream):
                raw = raw.edges
            try:
                self._columnar = EdgeBatch.from_edges(raw)
            except _COERCE_ERRORS:
                self._columnar = None
        return self._columnar

    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        whole = self._whole()
        if whole is None:
            return batched(self._edges, batch_size)
        return whole.batches(batch_size)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"MemorySource(<{len(self._edges)} edges>)"


class IterableSource(EdgeSource):
    """Wrap a one-shot edge iterable (generator, file object, socket...).

    The source never materializes the stream: memory is bounded by one
    batch regardless of (possibly unbounded) stream length. Each drawn
    batch is coerced to an :class:`~repro.streaming.batch.EdgeBatch`
    once (shared by every consumer downstream). It can be consumed
    exactly once.
    """

    replayable = False

    def __init__(self, edges: Iterable[Edge]) -> None:
        self._edges: Iterator[Edge] | None = iter(edges)

    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        if self._edges is None:
            raise SourceExhaustedError(
                "this IterableSource has already been consumed; wrap a "
                "FileSource or MemorySource for replayable streams"
            )
        edges, self._edges = self._edges, None

        def _columnar_batches() -> Iterator[Sequence[Edge]]:
            for chunk in batched_iter(edges, batch_size):
                try:
                    yield EdgeBatch.from_edges(chunk)
                except _COERCE_ERRORS:
                    yield chunk

        return _columnar_batches()

    def __repr__(self) -> str:
        state = "exhausted" if self._edges is None else "fresh"
        return f"IterableSource(<{state}>)"


def as_source(obj) -> EdgeSource:
    """Coerce ``obj`` into an :class:`EdgeSource`.

    Accepts an existing source (returned as-is), a path (``str`` /
    ``os.PathLike`` -> :class:`FileSource`), an ``(m, 2)`` array or
    :class:`~repro.streaming.batch.EdgeBatch`, an ``EdgeStream`` or any
    sequence (-> :class:`MemorySource`), or any other iterable
    (-> one-shot :class:`IterableSource`).
    """
    if isinstance(obj, EdgeSource):
        return obj
    if isinstance(obj, (str, os.PathLike)):
        return FileSource(obj)
    if isinstance(obj, (EdgeBatch, np.ndarray, EdgeStream, Sequence)):
        return MemorySource(obj)
    if isinstance(obj, Iterable):
        return IterableSource(obj)
    raise TypeError(
        f"cannot build an EdgeSource from {type(obj).__name__!r}; expected a "
        "path, sequence, array, EdgeStream, iterable, or EdgeSource"
    )
