"""Lazy edge sources: the input half of the streaming pipeline.

The paper's model is a one-pass adjacency stream, so no consumer should
ever need the whole edge list in memory. An :class:`EdgeSource` yields
the stream as fixed-size batches, lazily -- and, since the columnar
refactor, as :class:`~repro.streaming.batch.EdgeBatch` objects:
validated, canonicalized ``(w, 2)`` int64 arrays that every estimator
in a fan-out shares (one conversion and one per-batch index per batch,
no matter how many consumers).

- :class:`FileSource` -- reads a SNAP-style edge-list file with the
  chunked columnar parser (:func:`repro.graph.io.iter_edge_array_chunks`),
  with vectorized streaming dedup by default (pass ``deduplicate=False``
  for constant memory on already-simple inputs); replayable because
  every pass re-opens the file;
- :class:`MemorySource` -- wraps an in-memory sequence, array, or
  :class:`~repro.graph.stream.EdgeStream`, coerced to one columnar
  array once and sliced into zero-copy batches (replayable);
- :class:`IterableSource` -- wraps a generator or other one-shot
  iterable, coercing each batch to columnar form as it is drawn; a
  second pass raises :class:`~repro.errors.SourceExhaustedError`;
- :class:`LineSource` -- wraps an already-open *text* stream (a file
  object, ``sys.stdin``, a socket's ``makefile()``), running the same
  columnar chunk parser as :class:`FileSource` over lines the caller's
  handle produces; one-shot, bounded memory on unbounded streams;
- :class:`FollowSource` -- ``tail -f`` semantics over a *growing*
  edge-list file: reads from the top, then polls for appended data,
  flushing partial batches when the file idles so live consumers see
  progress; an optional stop condition / idle timeout ends the stream.

:func:`as_source` coerces whatever a caller holds (path, stream, array,
sequence, generator, ``EdgeBatch``, open file object, or an existing
source) into an :class:`EdgeSource`, which is what the CLI, the
:class:`~repro.streaming.pipeline.Pipeline` runner, the experiment
harness, and the parallel counter all consume.

Batch boundaries are deterministic (``ceil(m / batch_size)`` batches,
all but the last of exactly ``batch_size`` edges), so estimators driven
from a file and from the equivalent in-memory list consume their RNG
identically and produce bit-identical results under a fixed seed.

For the in-memory sources, inputs the columnar form cannot represent
(self-loops destined for a tolerant per-edge consumer, ids outside
``[0, 2^31)``, exotic objects) fall back to the plain tuple-batch
path, preserving the historical behaviour. :class:`FileSource` is
columnar only: its files must keep vertex ids in ``[0, 2^31)`` (the
engines' packed-key domain, which every SNAP graph satisfies).
"""

from __future__ import annotations

import io
import os
import time
import warnings
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import (
    InvalidParameterError,
    SourceExhaustedError,
    SourceRetryWarning,
    SourceRotatedWarning,
)
from ..graph.edge import Edge
from ..graph.io import (
    _probe_signed_format,
    _signed_block_rows,
    dedup_chunk,
    dedup_edge_arrays,
    iter_edge_array_chunks,
    iter_signed_edge_array_chunks,
)
from ..graph.stream import EdgeStream, batched
from . import faults as _faults
from .batch import EdgeBatch, rebatch_arrays

__all__ = [
    "EdgeSource",
    "FileSource",
    "MemorySource",
    "IterableSource",
    "LineSource",
    "FollowSource",
    "as_source",
    "batched_iter",
]

#: Exceptions that mean "this input has no columnar form" -- the source
#: then serves plain tuple batches exactly as it did pre-refactor.
_COERCE_ERRORS = (InvalidParameterError, ValueError, TypeError, OverflowError)

#: Bytes a follow-mode poll reads per ``read`` call (~1 MiB, the chunk
#: parser's natural unit; a burst larger than this just loops).
_FOLLOW_READ_BYTES = 1 << 20

#: Ceiling on the follow-mode retry backoff after repeated read errors.
_FOLLOW_RETRY_CAP = 2.0


def batched_iter(edges: Iterable[Edge], batch_size: int) -> Iterator[list[Edge]]:
    """Group any edge iterable into lists of ``batch_size`` edges.

    The iterator analogue of :func:`repro.graph.stream.batched`: only
    one batch is materialized at a time, so memory stays bounded by
    ``batch_size`` no matter how long the stream is.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[Edge] = []
    for edge in edges:
        batch.append(edge)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class EdgeSource(ABC):
    """A stream of edges consumable in fixed-size batches."""

    #: Whether :meth:`batches` may be called more than once.
    replayable: bool = True

    #: Whether this source declares a turnstile (signed) stream: its
    #: batches carry a ``+1``/``-1`` sign column and may contain edge
    #: deletions. Pipelines check this *before* streaming so an
    #: insert-only estimator aimed at a signed source fails up front
    #: with a clear error instead of mid-stream.
    signed: bool = False

    @abstractmethod
    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        """Yield the stream as consecutive batches of ``batch_size``.

        Batches are :class:`~repro.streaming.batch.EdgeBatch` objects
        whenever the input admits the columnar form (plain tuple lists
        otherwise); both behave as sequences of ``(u, v)`` tuples.
        """

    def __iter__(self) -> Iterator[Edge]:
        """Iterate edge by edge (a batch size of one pass)."""
        for batch in self.batches(65_536):
            yield from batch


class FileSource(EdgeSource):
    """Lazily stream a whitespace-separated ``u v`` edge-list file.

    Parsing is columnar: the file is read in ~1 MiB text blocks, each
    block converted to an int64 array in bulk, self-loops filtered and
    edges canonicalized with array operations, and the chunks re-cut
    into exact ``batch_size`` :class:`~repro.streaming.batch.EdgeBatch`
    slices. ``#`` comments and blank lines are skipped, as in SNAP
    files; vertex ids must lie in ``[0, 2^31)``.

    Parameters
    ----------
    path:
        The file to read.
    deduplicate:
        When ``True`` (default, matching :func:`repro.graph.io.read_edge_list`
        and the CLI), drop repeated edges on the fly so the stream is a
        simple graph's, as the paper assumes -- SNAP files often list
        both directions of each undirected edge. Dedup is vectorized
        over packed int64 edge keys and costs O(distinct edges) memory,
        so pass ``False`` for constant-memory streaming of inputs that
        are already simple. Defaults to ``True`` for insert-only files
        and is rejected for signed ones (collapsing repeats would eat
        the deletions that make a turnstile stream meaningful).
    signed:
        Parse the file as a turnstile stream
        (:func:`repro.graph.io.iter_signed_edge_array_chunks`): an
        optional third sign column or ``+``/``-`` prefix marks each row
        an insert or a deletion, and batches carry the int8 sign
        column. Plain ``u v`` files stream as all-inserts.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        deduplicate: bool | None = None,
        signed: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        if deduplicate is None:
            deduplicate = not signed
        elif deduplicate and signed:
            raise InvalidParameterError(
                "deduplicate=True cannot be combined with signed=True: "
                "dedup would drop re-inserts and deletions of the same edge"
            )
        self.deduplicate = deduplicate
        self.signed = signed

    def edges(self) -> Iterator[Edge]:
        """Lazily yield the (optionally deduplicated) edge stream."""
        for batch in self.batches(65_536):
            yield from batch

    def batches(self, batch_size: int) -> Iterator[EdgeBatch]:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        # Fail fast on a missing/unreadable path: the parser below is a
        # generator, so without this probe the FileNotFoundError would
        # surface only at the first next() deep inside a pipeline run.
        with open(self.path, "rb"):
            pass
        if self.signed:
            chunks = iter_signed_edge_array_chunks(self.path)
            return (
                EdgeBatch.from_wire(arr)
                for arr in rebatch_arrays(chunks, batch_size)
            )
        chunks = iter_edge_array_chunks(self.path)
        if self.deduplicate:
            chunks = dedup_edge_arrays(chunks)
        return (EdgeBatch(arr) for arr in rebatch_arrays(chunks, batch_size))

    def __repr__(self) -> str:
        signed = ", signed=True" if self.signed else ""
        return f"FileSource({self.path!r}, deduplicate={self.deduplicate}{signed})"


class MemorySource(EdgeSource):
    """Wrap an in-memory edge collection (sequence, array, ``EdgeStream``).

    The collection is coerced to one columnar
    :class:`~repro.streaming.batch.EdgeBatch` on first use (validated
    and canonicalized exactly once); batches are zero-copy slices of
    that array. Inputs without a columnar form are served as plain
    tuple slices instead.
    """

    def __init__(self, edges: Sequence[Edge] | EdgeStream | np.ndarray | EdgeBatch) -> None:
        self._edges = edges
        self._columnar: EdgeBatch | None = None
        self._coerced = False

    def _whole(self) -> EdgeBatch | None:
        """The full stream as one EdgeBatch, or None if not coercible."""
        if not self._coerced:
            self._coerced = True
            raw = self._edges
            if isinstance(raw, EdgeStream):
                raw = raw.edges
            try:
                self._columnar = EdgeBatch.from_edges(raw)
            except _COERCE_ERRORS:
                self._columnar = None
        return self._columnar

    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        whole = self._whole()
        if whole is None:
            return batched(self._edges, batch_size)
        return whole.batches(batch_size)

    @property
    def signed(self) -> bool:  # type: ignore[override]
        """True when the wrapped collection carries a sign column.

        ``(m, 3)`` arrays, sequences of ``(u, v, sign)`` triples, and
        signed :class:`~repro.streaming.batch.EdgeBatch` objects all
        coerce with their signs attached, so the source declares itself
        signed and pipelines gate estimator capability up front.
        """
        whole = self._whole()
        return whole is not None and whole.signs is not None

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"MemorySource(<{len(self._edges)} edges>)"


class IterableSource(EdgeSource):
    """Wrap a one-shot edge iterable (generator, file object, socket...).

    The source never materializes the stream: memory is bounded by one
    batch regardless of (possibly unbounded) stream length. Each drawn
    batch is coerced to an :class:`~repro.streaming.batch.EdgeBatch`
    once (shared by every consumer downstream). It can be consumed
    exactly once.
    """

    replayable = False

    def __init__(self, edges: Iterable[Edge]) -> None:
        self._edges: Iterator[Edge] | None = iter(edges)

    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        # Validate before marking the source consumed: a bad batch_size
        # used to null out self._edges first, permanently exhausting the
        # source without yielding an edge -- and only raising at the
        # first next() of the returned generator.
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if self._edges is None:
            raise SourceExhaustedError(
                "this IterableSource has already been consumed; wrap a "
                "FileSource or MemorySource for replayable streams"
            )
        edges, self._edges = self._edges, None

        def _columnar_batches() -> Iterator[Sequence[Edge]]:
            for chunk in batched_iter(edges, batch_size):
                try:
                    yield EdgeBatch.from_edges(chunk)
                except _COERCE_ERRORS:
                    yield chunk

        return _columnar_batches()

    def __repr__(self) -> str:
        state = "exhausted" if self._edges is None else "fresh"
        return f"IterableSource(<{state}>)"


class LineSource(EdgeSource):
    """Stream edges from an already-open file object.

    The handle can be anything that reads lines -- an open file,
    ``sys.stdin``, a ``StringIO``, a socket's ``makefile()`` -- and is
    pulled through the same columnar chunk parser as
    :class:`FileSource` (comments, blank lines, and self-loops skipped;
    extra columns ignored; canonical ``u < v`` rows). A binary handle
    is wrapped in a UTF-8 text layer automatically.

    Reading is *live*: lines are gulped roughly one batch at a time and
    parsed immediately, so a slow producer piping into ``sys.stdin``
    sees its edges surface after about ``batch_size`` lines -- not
    after some parser-internal chunk fills. Memory is bounded by one
    gulp regardless of (possibly unbounded) stream length, and ragged
    rows are handled per gulp even on non-seekable pipes.

    One-shot (``replayable = False``): the handle's position is the
    stream. The caller owns the handle and its lifetime.

    Parameters
    ----------
    handle:
        The open stream to read (text, or binary assumed UTF-8).
    deduplicate:
        Drop repeated edges on the fly (O(distinct edges) memory --
        unbounded on an infinite stream, hence default ``False`` here,
        unlike :class:`FileSource`). Rejected with ``signed=True``.
    signed:
        Parse the stream as turnstile (signed) rows: sign column or
        ``+``/``-`` prefix, layout locked by the first data line
        exactly as in :class:`FileSource`.
    """

    replayable = False

    def __init__(self, handle, *, deduplicate: bool = False, signed: bool = False) -> None:
        if not hasattr(handle, "read"):
            raise InvalidParameterError(
                f"LineSource needs an open file object, got {type(handle).__name__!r}"
            )
        if deduplicate and signed:
            raise InvalidParameterError(
                "deduplicate=True cannot be combined with signed=True: "
                "dedup would drop re-inserts and deletions of the same edge"
            )
        try:
            probe = handle.read(0)
        except (TypeError, ValueError, OSError):
            probe = ""
        if isinstance(probe, bytes):
            handle = io.TextIOWrapper(handle, encoding="utf-8")
        self._handle = handle
        self.deduplicate = deduplicate
        self.signed = signed

    def batches(self, batch_size: int) -> Iterator[EdgeBatch]:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if self._handle is None:
            raise SourceExhaustedError(
                "this LineSource has already been consumed; re-open the "
                "underlying stream or use a FileSource for replayable input"
            )
        handle, self._handle = self._handle, None
        if self.signed:
            chunks = _gulped_signed_line_chunks(handle, batch_size)
            return (
                EdgeBatch.from_wire(arr)
                for arr in rebatch_arrays(chunks, batch_size)
            )
        chunks = _gulped_line_chunks(handle, batch_size)
        if self.deduplicate:
            chunks = dedup_edge_arrays(chunks)
        return (EdgeBatch(arr) for arr in rebatch_arrays(chunks, batch_size))

    def __repr__(self) -> str:
        state = "exhausted" if self._handle is None else "fresh"
        signed = ", signed=True" if self.signed else ""
        return f"LineSource(<{state}>, deduplicate={self.deduplicate}{signed})"


def _gulped_line_chunks(handle, lines_per_gulp: int) -> Iterator[np.ndarray]:
    """Parse an open handle in gulps of ``lines_per_gulp`` lines.

    The chunk parser's ``np.loadtxt`` would otherwise block on an open
    pipe until its internal row quota (~87k rows) fills; gulping lines
    first keeps a live producer's edges surfacing after roughly one
    batch worth of input. Each gulp is a seekable ``StringIO``, so the
    ragged-row fallback works even when ``handle`` itself is a pipe.
    """
    while True:
        lines = []
        for line in handle:
            lines.append(line)
            if len(lines) >= lines_per_gulp:
                break
        if not lines:
            return
        yield from iter_edge_array_chunks(io.StringIO("".join(lines)))


def _gulped_signed_line_chunks(handle, lines_per_gulp: int) -> Iterator[np.ndarray]:
    """:func:`_gulped_line_chunks` for turnstile streams.

    The signed layout must be locked by the *first* data line of the
    whole stream, not re-probed per gulp (a re-probe would let a stream
    silently flip between bare and signed layouts mid-flight), so the
    gulp loop threads the probed format itself instead of calling
    :func:`repro.graph.io.iter_signed_edge_array_chunks` per gulp.
    """
    fmt: str | None = None
    lineno_base = 1
    while True:
        lines = []
        for line in handle:
            lines.append(line)
            if len(lines) >= lines_per_gulp:
                break
        if not lines:
            return
        block = "".join(lines)
        if not block.endswith("\n"):
            block += "\n"
        if fmt is None:
            fmt = _probe_signed_format(block)
            if fmt is None:
                lineno_base += block.count("\n")
                continue
        out = _signed_block_rows(block, fmt, lineno_base)
        lineno_base += block.count("\n")
        if out.shape[0]:
            yield out


class FollowSource(FileSource):
    """``tail -f`` over a growing edge-list file: a stream that never ends.

    Reads the file from the top exactly like :class:`FileSource`, then
    -- instead of stopping at EOF -- polls for appended data every
    ``poll_interval`` seconds and keeps streaming whatever arrives.
    Each poll parses only the *complete* lines added since the last one
    (a partially-written trailing line waits for its newline), through
    the same columnar chunk parser as :class:`FileSource`.

    Batching is best-effort live: full ``batch_size`` batches while
    data is flowing, and a short batch flushing the buffered remainder
    whenever the file idles, so a live consumer (``repro watch``) sees
    edges soon after they land instead of waiting for a full batch.
    Batch boundaries therefore depend on write timing -- follow-mode
    streams are not bit-reproducible across runs (resume from a
    checkpoint still is, because whole consumed edges are skipped).

    The stream ends when ``stop()`` returns true at an idle poll, or
    when the file has not grown for ``idle_timeout`` seconds; with
    neither, it follows forever. At stop, a trailing line without a
    newline is parsed (the writer finished without one). Replayable:
    every :meth:`batches` call re-reads from the top, which is what
    lets a killed-and-resumed pipeline skip to where it stood.

    Follow mode is built to outlive its file's misbehaviour:

    - A failed read (``OSError`` -- NFS hiccup, device stall, the file
      briefly unlinked) is retried with exponential backoff from
      ``poll_interval`` up to a small cap, reopening the file and
      seeking back to the consumed position; each attempt emits a
      :class:`~repro.errors.SourceRetryWarning`, and the ``stop`` /
      ``idle_timeout`` conditions keep being checked during the failure
      streak so the stream can still end.
    - Log rotation (the path now names a different inode) and
      truncation (the file shrank below the consumed position) are
      detected at EOF polls via ``os.stat``; the source emits a
      :class:`~repro.errors.SourceRotatedWarning` and restarts from
      offset zero of the new file.
    - Unparseable lines (a writer crashed mid-record, injected
      corruption) are dropped with a :class:`SourceRetryWarning`
      naming the count, instead of killing the stream.

    Parameters
    ----------
    path:
        The file to follow (it must exist; it may be empty).
    deduplicate:
        Drop repeated edges across the whole followed stream. The
        membership set grows with distinct edges forever on an
        unbounded stream, hence default ``False`` (unlike
        :class:`FileSource`).
    poll_interval:
        Seconds to sleep between polls once at EOF.
    idle_timeout:
        End the stream after this many seconds without growth
        (``None`` = follow forever).
    stop:
        Optional callable checked at each idle poll; returning true
        ends the stream.
    signed:
        Follow the file as a turnstile stream (sign column or ``+``/
        ``-`` prefix; layout locked by the first data line and held
        across polls). Unparseable or layout-mixed lines are scrubbed
        with a :class:`~repro.errors.SourceRetryWarning` like any other
        follow-mode corruption -- resilience wins over strictness on a
        live stream.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        deduplicate: bool = False,
        poll_interval: float = 0.1,
        idle_timeout: float | None = None,
        stop: Callable[[], bool] | None = None,
        signed: bool = False,
    ) -> None:
        super().__init__(path, deduplicate=deduplicate, signed=signed)
        if poll_interval <= 0:
            raise InvalidParameterError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        if idle_timeout is not None and idle_timeout < 0:
            raise InvalidParameterError(
                f"idle_timeout must be >= 0, got {idle_timeout}"
            )
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.stop = stop

    def batches(self, batch_size: int) -> Iterator[EdgeBatch]:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        with open(self.path, "rb"):
            pass  # fail fast, like FileSource
        return self._follow(batch_size)

    def _follow(self, batch_size: int) -> Iterator[EdgeBatch]:
        """The poll loop: parse grown bytes, rebatch, flush on idle.

        The file is read in binary with an explicit consumed position,
        which is what makes the failure handling possible: a read error
        reopens and seeks back to ``pos``, and a rotation/truncation
        restarts ``pos`` at zero. Text only ever comes from complete
        lines (bytes up to the last newline), so a chunk boundary can
        never split a record or a UTF-8 sequence.
        """
        seen = np.empty(0, dtype=np.int64)  # dedup keys, if enabled
        buffer: list[np.ndarray] = []
        buffered = 0
        tail = b""  # partial trailing line awaiting its newline
        pos = 0  # bytes consumed from the current file
        failures = 0
        sfmt: str | None = None  # signed layout, locked across polls
        wrap = EdgeBatch.from_wire if self.signed else EdgeBatch

        def _arrays(text: str) -> list[np.ndarray]:
            """Parse complete lines, scrubbing any that will not parse."""
            if self.signed:
                return _signed_arrays(text)
            try:
                return list(iter_edge_array_chunks(io.StringIO(text)))
            except _COERCE_ERRORS:
                kept = []
                dropped = 0
                for line in text.splitlines():
                    parts = line.split()
                    if not parts or parts[0].startswith("#"):
                        continue
                    try:
                        int(parts[0]), int(parts[1])
                    except (IndexError, ValueError):
                        dropped += 1
                        continue
                    kept.append(line)
                warnings.warn(
                    SourceRetryWarning(
                        f"dropped {dropped} unparseable line(s) from the "
                        f"followed stream {self.path!r}"
                    ),
                    stacklevel=3,
                )
                if not kept:
                    return []
                return list(
                    iter_edge_array_chunks(io.StringIO("\n".join(kept) + "\n"))
                )

        def _signed_arrays(text: str) -> list[np.ndarray]:
            """The signed parse: locked layout, per-line scrub fallback."""
            nonlocal sfmt
            if not text.endswith("\n"):
                text += "\n"
            if sfmt is None:
                try:
                    sfmt = _probe_signed_format(text)
                except _COERCE_ERRORS:
                    sfmt = None  # even the probe line is garbage: scrub
            if sfmt is not None:
                try:
                    out = _signed_block_rows(text, sfmt, 1)
                    return [out] if out.shape[0] else []
                except _COERCE_ERRORS:
                    pass
            kept: list[np.ndarray] = []
            dropped = 0
            for line in text.splitlines():
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                try:
                    fmt = sfmt or _probe_signed_format(stripped + "\n")
                    arr = _signed_block_rows(stripped + "\n", fmt, 1)
                except _COERCE_ERRORS:
                    dropped += 1
                    continue
                if sfmt is None:
                    sfmt = fmt
                if arr.shape[0]:
                    kept.append(arr)
            warnings.warn(
                SourceRetryWarning(
                    f"dropped {dropped} unparseable line(s) from the "
                    f"followed stream {self.path!r}"
                ),
                stacklevel=3,
            )
            return kept

        def _parse(text: str) -> Iterator[np.ndarray]:
            nonlocal seen
            for arr in _arrays(text):
                if not self.deduplicate:
                    yield arr
                    continue
                fresh, seen = dedup_chunk(arr, seen)
                if fresh.shape[0]:
                    yield fresh

        def _merge_and_reset() -> np.ndarray:
            nonlocal buffer, buffered
            merged = np.concatenate(buffer) if len(buffer) > 1 else buffer[0]
            buffer, buffered = [], 0
            return merged

        def _absorb(text: str) -> Iterator[EdgeBatch]:
            nonlocal buffer, buffered
            for arr in _parse(text):
                buffer.append(arr)
                buffered += arr.shape[0]
                if buffered < batch_size:
                    continue
                merged = _merge_and_reset()
                start = 0
                while merged.shape[0] - start >= batch_size:
                    yield wrap(merged[start : start + batch_size])
                    start += batch_size
                rest = merged[start:]
                buffer = [rest] if rest.shape[0] else []
                buffered = rest.shape[0]

        def _reopen(handle, *, from_start: bool) -> object:
            nonlocal pos, tail
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - close of a bad fd
                    pass
            if from_start:
                pos = 0
                tail = b""
            handle = open(self.path, "rb")
            handle.seek(pos)
            return handle

        def _should_end(now: float) -> bool:
            return (self.stop is not None and self.stop()) or (
                self.idle_timeout is not None
                and idle_since is not None
                and now - idle_since >= self.idle_timeout
            )

        idle_since: float | None = None
        handle = None
        try:
            handle = _reopen(handle, from_start=True)
            while True:
                try:
                    _faults.fire_source_read()
                    if handle is None:
                        handle = _reopen(handle, from_start=False)
                    data = handle.read(_FOLLOW_READ_BYTES)
                    if data:
                        data = _faults.corrupt_source(data)
                        pos = handle.tell()
                except OSError as exc:
                    # Transient I/O failure: back off, reopen at the
                    # consumed position, and keep the stop/idle checks
                    # live so a dead file cannot wedge the stream.
                    failures += 1
                    delay = min(
                        self.poll_interval * (2 ** (failures - 1)),
                        _FOLLOW_RETRY_CAP,
                    )
                    warnings.warn(
                        SourceRetryWarning(
                            f"read of followed stream {self.path!r} failed "
                            f"(attempt {failures}): {exc}; retrying in "
                            f"{delay:.2g}s"
                        ),
                        stacklevel=2,
                    )
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if _should_end(now):
                        break
                    time.sleep(delay)
                    try:
                        handle = _reopen(handle, from_start=False)
                    except OSError:
                        handle = None  # gone right now; retried next turn
                    continue
                failures = 0
                if data:
                    idle_since = None
                    data = tail + data
                    cut = data.rfind(b"\n")
                    if cut < 0:
                        tail = data
                        continue
                    tail = data[cut + 1 :]
                    yield from _absorb(data[: cut + 1].decode("utf-8", "replace"))
                    continue
                # At EOF: flush the partial batch so live consumers see
                # every parsed edge before the stream goes quiet.
                if buffered:
                    yield wrap(_merge_and_reset())
                try:
                    named = os.stat(self.path)
                    opened = os.fstat(handle.fileno())
                    rotated = named.st_ino != opened.st_ino
                    truncated = not rotated and named.st_size < pos
                except OSError:
                    rotated = truncated = False  # transient: poll again
                if rotated or truncated:
                    what = "rotated" if rotated else "truncated"
                    warnings.warn(
                        SourceRotatedWarning(
                            f"followed stream {self.path!r} was {what}; "
                            "restarting from offset 0"
                        ),
                        stacklevel=2,
                    )
                    handle = _reopen(handle, from_start=True)
                    idle_since = None
                    continue
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if _should_end(now):
                    break
                time.sleep(self.poll_interval)
        finally:
            if handle is not None:
                handle.close()
        if tail.strip():
            # The writer ended the stream without a final newline.
            yield from _absorb(tail.decode("utf-8", "replace") + "\n")
        if buffered:
            yield wrap(_merge_and_reset())

    def __repr__(self) -> str:
        return (
            f"FollowSource({self.path!r}, deduplicate={self.deduplicate}, "
            f"poll_interval={self.poll_interval}, idle_timeout={self.idle_timeout})"
        )


def as_source(obj) -> EdgeSource:
    """Coerce ``obj`` into an :class:`EdgeSource`.

    Accepts an existing source (returned as-is), a path (``str`` /
    ``os.PathLike`` -> :class:`FileSource`), an open text file object
    (anything with ``read`` -- a file, ``sys.stdin``, a ``StringIO``, a
    socket's ``makefile()`` -> one-shot :class:`LineSource`), an
    ``(m, 2)`` array or :class:`~repro.streaming.batch.EdgeBatch`, an
    ``EdgeStream`` or any sequence (-> :class:`MemorySource`), or any
    other iterable (-> one-shot :class:`IterableSource`).
    """
    if isinstance(obj, EdgeSource):
        return obj
    if isinstance(obj, (str, os.PathLike)):
        return FileSource(obj)
    if isinstance(obj, io.IOBase) or (
        hasattr(obj, "read") and hasattr(obj, "readline")
    ):
        return LineSource(obj)
    if isinstance(obj, (EdgeBatch, np.ndarray, EdgeStream, Sequence)):
        return MemorySource(obj)
    if isinstance(obj, Iterable):
        return IterableSource(obj)
    raise TypeError(
        f"cannot build an EdgeSource from {type(obj).__name__!r}; expected a "
        "path, file object, sequence, array, EdgeStream, iterable, or EdgeSource"
    )
