"""Command-line interface: streaming graph statistics from edge-list files.

    python -m repro count --input graph.edges --estimators 50000
    python -m repro transitivity --input graph.edges --estimators 50000
    python -m repro sample --input graph.edges --estimators 20000 -k 5
    python -m repro exact --input graph.edges
    python -m repro stats --input graph.edges

Files are whitespace-separated ``u v`` lines (SNAP format; ``#``
comments ignored). All subcommands stream the file through the
requested estimator in batches and print a small report.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from .baselines.exact_stream import ExactStreamingCounter
from .core.transitivity import TransitivityEstimator
from .core.triangle_count import TriangleCounter
from .core.triangle_sample import TriangleSampler
from .errors import ReproError
from .graph.io import read_edge_list

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="edge-list file")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--batch-size", type=int, default=65_536, help="edges per batch"
    )


def _stream(counter, edges, batch_size: int) -> float:
    start = time.perf_counter()
    for i in range(0, len(edges), batch_size):
        counter.update_batch(edges[i : i + batch_size])
    return time.perf_counter() - start


def _cmd_count(args: argparse.Namespace) -> int:
    edges = read_edge_list(args.input)
    counter = TriangleCounter(args.estimators, engine=args.engine, seed=args.seed)
    elapsed = _stream(counter, edges, args.batch_size)
    print(f"edges: {len(edges):,}")
    print(f"estimated triangles: {counter.estimate():,.1f}")
    print(f"estimators holding a triangle: {counter.fraction_holding_triangle():.2%}")
    print(f"processing time: {elapsed:.3f}s "
          f"({len(edges) / max(elapsed, 1e-9) / 1e6:.2f}M edges/s)")
    return 0


def _cmd_transitivity(args: argparse.Namespace) -> int:
    edges = read_edge_list(args.input)
    est = TransitivityEstimator(args.estimators, args.wedge_estimators, seed=args.seed)
    elapsed = _stream(est, edges, args.batch_size)
    print(f"edges: {len(edges):,}")
    print(f"estimated triangles: {est.triangle_estimate():,.1f}")
    print(f"estimated wedges: {est.wedge_estimate():,.1f}")
    print(f"estimated transitivity: {est.estimate():.4f}")
    print(f"processing time: {elapsed:.3f}s")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    edges = read_edge_list(args.input)
    sampler = TriangleSampler(args.estimators, seed=args.seed)
    _stream(sampler, edges, args.batch_size)
    triangles = sampler.sample(args.k)
    print(f"{args.k} uniform triangles (with replacement):")
    for tri in triangles:
        print(f"  {tri[0]} {tri[1]} {tri[2]}")
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    edges = read_edge_list(args.input)
    counter = ExactStreamingCounter()
    elapsed = _stream(counter, edges, args.batch_size)
    print(f"edges: {len(edges):,}")
    print(f"triangles: {counter.triangles:,}")
    print(f"wedges: {counter.wedges:,}")
    if counter.wedges:
        print(f"transitivity: {counter.transitivity():.4f}")
    print(f"processing time: {elapsed:.3f}s")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .graph.static_graph import StaticGraph

    edges = read_edge_list(args.input)
    graph = StaticGraph(edges, strict=False)
    print(f"vertices: {graph.num_vertices:,}")
    print(f"edges: {graph.num_edges:,}")
    print(f"max degree: {graph.max_degree():,}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_count = sub.add_parser("count", help="approximate triangle counting")
    _add_common(p_count)
    p_count.add_argument("--estimators", type=int, default=100_000)
    p_count.add_argument(
        "--engine", choices=("reference", "bulk", "vectorized"), default="vectorized"
    )
    p_count.set_defaults(func=_cmd_count)

    p_trans = sub.add_parser("transitivity", help="transitivity coefficient")
    _add_common(p_trans)
    p_trans.add_argument("--estimators", type=int, default=100_000)
    p_trans.add_argument("--wedge-estimators", type=int, default=None)
    p_trans.set_defaults(func=_cmd_transitivity)

    p_sample = sub.add_parser("sample", help="uniform triangle sampling")
    _add_common(p_sample)
    p_sample.add_argument("--estimators", type=int, default=50_000)
    p_sample.add_argument("-k", type=int, default=1, help="triangles to draw")
    p_sample.set_defaults(func=_cmd_sample)

    p_exact = sub.add_parser("exact", help="exact counts (O(m) memory)")
    _add_common(p_exact)
    p_exact.set_defaults(func=_cmd_exact)

    p_stats = sub.add_parser("stats", help="basic graph statistics")
    _add_common(p_stats)
    p_stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
