"""Command-line interface: streaming graph statistics from edge-list files.

    python -m repro count --input graph.edges --estimators 50000
    python -m repro transitivity --input graph.edges --estimators 50000
    python -m repro sample --input graph.edges --estimators 20000 -k 5
    python -m repro pipeline --input graph.edges --estimator count \\
        --estimator transitivity --estimator sample
    python -m repro watch --input live.edges --every 10 --checkpoint ck/
    python -m repro exact --input graph.edges
    python -m repro stats --input graph.edges
    python -m repro check src/ benchmarks/ --format json

Files are whitespace-separated ``u v`` lines (SNAP format; ``#``
comments ignored). Every subcommand pulls the file through a lazy
:class:`~repro.streaming.FileSource` in fixed-size batches -- the edge
list is never materialized. Repeated edges are dropped on the fly by
default (the paper assumes a simple stream; SNAP files often list both
directions), which keeps a membership set; pass ``--no-dedup`` on
already-simple inputs to make memory bounded by the batch size plus
estimator state no matter how long the stream is. ``pipeline``
fans one stream pass out to any set of estimators from the registry
(``--estimator`` choices below); ``--engine`` choices likewise come
from the engine registry, so out-of-tree registrations appear
automatically. Every subcommand takes ``--backend`` to pick the kernel
backend (``numba`` JIT vs the pure-NumPy reference; results are
bit-identical either way). ``pipeline`` also carries the production
knobs: ``--workers`` shards every estimator pool across processes over
one stream read (``--transport`` chooses how batches reach them:
zero-copy shared memory or pickled queues), and ``--checkpoint`` /
``--checkpoint-every`` /
``--resume`` snapshot and restore estimator state so a long run can be
killed and continued bit-identically. Multiprocess runs are supervised:
``--max-restarts`` / ``--worker-deadline`` respawn crashed or hung
workers from in-memory snapshots with bounded replay (results stay
bit-identical), and ``--fault-plan`` injects deterministic faults to
drill those paths. ``watch`` is the live surface:
it follows a *growing* file (or stdin) and emits a snapshot of every
estimator's current results each ``--every`` batches while the stream
keeps flowing, with the same checkpoint/resume knobs. ``check`` is the
repo's own static analyzer: it runs the :mod:`repro.analysis` rules
(checkpoint completeness, RNG discipline, backend parity, resource
lifecycle, iteration determinism, registry conformance) over source
trees and exits nonzero on findings.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from collections.abc import Sequence

import numpy as np

from .baselines.exact_stream import ExactStreamingCounter
from .core.backend import set_backend
from .core.transitivity import TransitivityEstimator
from .core.triangle_count import TriangleCounter
from .core.triangle_sample import TriangleSampler
from .errors import InvalidParameterError, ReproError
from .streaming import (
    DEFAULT_SEGMENT_BYTES,
    ENGINES,
    ESTIMATORS,
    FSYNC_POLICIES,
    FaultPlan,
    FileSource,
    FollowSource,
    LineSource,
    Pipeline,
    ShardedPipeline,
    faults,
)

__all__ = ["main"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="edge-list file")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--batch-size", type=_positive_int, default=65_536, help="edges per batch"
    )
    parser.add_argument(
        "--dedup",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="drop repeated edges on the fly so the stream is a simple "
        "graph's, as the paper assumes (default; costs O(distinct edges) "
        "memory). Pass --no-dedup for constant-memory streaming of inputs "
        "that are already simple. Incompatible with --signed, where "
        "repeats are re-inserts and deletions",
    )
    parser.add_argument(
        "--signed",
        action="store_true",
        help="treat the input as a fully-dynamic (turnstile) stream: "
        "each line is 'u v' plus a +1/-1 third column (or a +/- prefix) "
        "marking insertion vs deletion. Requires deletion-capable "
        "estimators (triest-fd, dynamic-sampler)",
    )
    _add_backend(parser)


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "numba"),
        default=None,
        help="kernel backend: 'numba' JIT-compiles the hot kernels "
        "(bit-identical results, needs numba installed), 'numpy' is the "
        "pure-NumPy reference, 'auto' picks numba when importable "
        "(default: $REPRO_BACKEND, then auto)",
    )


def _add_journal(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="write-ahead journal DIR: every batch is durably appended "
        "before any estimator sees it, checkpoints record the journal "
        "position, and a --resume replays the journal instead of "
        "re-reading the input -- exactly-once even for stdin/sockets",
    )
    parser.add_argument(
        "--journal-fsync",
        choices=FSYNC_POLICIES,
        default="batch",
        help="journal durability: 'always' fsyncs every append "
        "(power-loss safe), 'batch' fsyncs at checkpoints/rotation "
        "(default; kill -9 safe), 'off' never fsyncs (still kill -9 "
        "safe -- appends are flushed to the OS)",
    )
    parser.add_argument(
        "--journal-max-segment",
        type=_positive_int,
        default=DEFAULT_SEGMENT_BYTES,
        metavar="BYTES",
        help="rotate journal segment files past this size "
        f"(default: {DEFAULT_SEGMENT_BYTES})",
    )


def _source(args: argparse.Namespace) -> FileSource:
    # deduplicate=None lets FileSource pick the mode default: dedup on
    # for insert-only input, off for signed (where repeats are events).
    return FileSource(args.input, deduplicate=args.dedup, signed=args.signed)


def _stream(counter, source: FileSource, batch_size: int) -> float:
    """Drive ``counter`` over the lazy source; return elapsed seconds."""
    start = time.perf_counter()
    for batch in source.batches(batch_size):
        counter.update_batch(batch)
    return time.perf_counter() - start


def _cmd_count(args: argparse.Namespace) -> int:
    counter = TriangleCounter(args.estimators, engine=args.engine, seed=args.seed)
    elapsed = _stream(counter, _source(args), args.batch_size)
    edges = counter.edges_seen
    print(f"edges: {edges:,}")
    print(f"estimated triangles: {counter.estimate():,.1f}")
    print(f"estimators holding a triangle: {counter.fraction_holding_triangle():.2%}")
    print(f"processing time: {elapsed:.3f}s "
          f"({edges / max(elapsed, 1e-9) / 1e6:.2f}M edges/s, incl. file I/O)")
    return 0


def _cmd_transitivity(args: argparse.Namespace) -> int:
    est = TransitivityEstimator(args.estimators, args.wedge_estimators, seed=args.seed)
    elapsed = _stream(est, _source(args), args.batch_size)
    print(f"edges: {est.edges_seen:,}")
    print(f"estimated triangles: {est.triangle_estimate():,.1f}")
    print(f"estimated wedges: {est.wedge_estimate():,.1f}")
    print(f"estimated transitivity: {est.estimate():.4f}")
    print(f"processing time: {elapsed:.3f}s")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    sampler = TriangleSampler(args.estimators, seed=args.seed)
    _stream(sampler, _source(args), args.batch_size)
    triangles = sampler.sample(args.k)
    print(f"{args.k} uniform triangles (with replacement):")
    for tri in triangles:
        print(f"  {tri[0]} {tri[1]} {tri[2]}")
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    counter = ExactStreamingCounter()
    elapsed = _stream(counter, _source(args), args.batch_size)
    print(f"edges: {counter.edges_seen:,}")
    print(f"triangles: {counter.triangles:,}")
    print(f"wedges: {counter.wedges:,}")
    if counter.wedges:
        print(f"transitivity: {counter.transitivity():.4f}")
    print(f"processing time: {elapsed:.3f}s")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    # One lazy pass: per-batch degree counts come from a vectorized
    # np.unique over the columnar batch; only the (much smaller) set of
    # distinct vertices per batch touches Python. The edge list itself
    # is never materialized.
    degrees: dict[int, int] = {}
    edges = 0
    for batch in _source(args).batches(args.batch_size):
        edges += len(batch)
        verts, counts = np.unique(batch.array, return_counts=True)
        for vertex, count in zip(verts.tolist(), counts.tolist()):
            degrees[vertex] = degrees.get(vertex, 0) + count
    print(f"vertices: {len(degrees):,}")
    print(f"edges: {edges:,}")
    print(f"max degree: {max(degrees.values(), default=0):,}")
    return 0


def _install_fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    """Parse and install ``--fault-plan`` (None leaves $REPRO_FAULT_PLAN)."""
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return None
    plan = FaultPlan.parse(spec)
    faults.install(plan)
    return plan


def _cmd_watch(args: argparse.Namespace) -> int:
    """Follow a growing file (or stdin) and emit live snapshots."""
    _install_fault_plan(args)
    if args.input == "-":
        if args.resume and not args.journal:
            raise InvalidParameterError(
                "--resume needs a replayable input; stdin cannot re-serve "
                "the edges the checkpoint already consumed. Watch a file, "
                "or run with --journal so the continuation replays the "
                "durable journal instead."
            )
        if args.poll_interval is not None or args.idle_timeout is not None:
            # stdin has no poll loop (reads block until the producer
            # writes or closes); silently accepting these would leave a
            # watcher its user believes will stop on idle hanging forever.
            raise InvalidParameterError(
                "--poll-interval/--idle-timeout only apply when following "
                "a file; stdin ends when the producer closes the pipe"
            )
        source = LineSource(sys.stdin, deduplicate=args.dedup, signed=args.signed)
    else:
        source = FollowSource(
            args.input,
            deduplicate=args.dedup,
            signed=args.signed,
            poll_interval=0.2 if args.poll_interval is None else args.poll_interval,
            idle_timeout=args.idle_timeout,
        )
    names = args.estimator or ["count", "sliding-window"]
    pipeline = Pipeline.from_registry(
        names, num_estimators=args.estimators, seed=args.seed
    )
    if args.resume:
        pipeline.resume(args.resume)
    checkpoint_signal = None
    if args.checkpoint and hasattr(signal, "SIGUSR1"):
        # kill -USR1 <pid> snapshots at the next batch boundary.
        checkpoint_signal = signal.SIGUSR1
    snapshots = pipeline.snapshots(
        source,
        batch_size=args.batch_size,
        every=args.every,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_signal=checkpoint_signal,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
        journal_max_segment=args.journal_max_segment,
    )
    # Unbuffered binary append: each snapshot is one write(2) of one
    # complete line, so a concurrent reader (or a kill mid-write) never
    # sees a torn/interleaved record.
    jsonl = open(args.jsonl, "ab", buffering=0) if args.jsonl else None
    try:
        for snapshot in snapshots:
            if jsonl is not None:
                line = json.dumps(snapshot.to_dict()) + "\n"
                jsonl.write(line.encode("utf-8"))
            else:
                print(snapshot.render_line(), flush=True)
    except KeyboardInterrupt:
        # A watcher is killed, not completed; the last --checkpoint
        # snapshot (if any) is what --resume continues from.
        print("watch interrupted", file=sys.stderr)
        return 130
    finally:
        if jsonl is not None:
            jsonl.close()
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    names = args.estimator or ["count", "transitivity", "exact"]
    plan = _install_fault_plan(args)
    if args.workers > 1:
        if args.checkpoint or args.resume:
            raise InvalidParameterError(
                "--checkpoint/--resume are single-process features; "
                "run them without --workers"
            )
        sharded = ShardedPipeline(
            names,
            workers=args.workers,
            num_estimators=args.estimators,
            seed=args.seed,
            transport=args.transport,
            max_restarts=args.max_restarts,
            worker_deadline=args.worker_deadline,
            fault_plan=plan,
        )
        report = sharded.run(
            _source(args),
            batch_size=args.batch_size,
            journal_dir=args.journal,
            journal_fsync=args.journal_fsync,
            journal_max_segment=args.journal_max_segment,
        )
        print(report.render())
        return 0
    pipeline = Pipeline.from_registry(
        names, num_estimators=args.estimators, seed=args.seed
    )
    if args.resume:
        pipeline.resume(args.resume)
    checkpoint_signal = None
    if args.checkpoint and hasattr(signal, "SIGUSR1"):
        # kill -USR1 <pid> snapshots at the next batch boundary.
        checkpoint_signal = signal.SIGUSR1
    report = pipeline.run(
        _source(args),
        batch_size=args.batch_size,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_signal=checkpoint_signal,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
        journal_max_segment=args.journal_max_segment,
    )
    print(report.render())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the repo's static-analysis rules; exit 1 on findings."""
    # Imported here so ordinary streaming commands never pay for the
    # analyzer (and vice versa: `check` needs no estimator machinery).
    from .analysis import RULES, render_human, render_json, run_check

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].title}")
        return 0
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    try:
        result = run_check(paths, rules=args.rule)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_report:
        with open(args.json_report, "w", encoding="utf-8") as handle:
            handle.write(render_json(result) + "\n")
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_count = sub.add_parser("count", help="approximate triangle counting")
    _add_common(p_count)
    p_count.add_argument("--estimators", type=int, default=100_000)
    p_count.add_argument(
        "--engine", choices=ENGINES.names(), default="vectorized"
    )
    p_count.set_defaults(func=_cmd_count)

    p_trans = sub.add_parser("transitivity", help="transitivity coefficient")
    _add_common(p_trans)
    p_trans.add_argument("--estimators", type=int, default=100_000)
    p_trans.add_argument("--wedge-estimators", type=int, default=None)
    p_trans.set_defaults(func=_cmd_transitivity)

    p_sample = sub.add_parser("sample", help="uniform triangle sampling")
    _add_common(p_sample)
    p_sample.add_argument("--estimators", type=int, default=50_000)
    p_sample.add_argument("-k", type=int, default=1, help="triangles to draw")
    p_sample.set_defaults(func=_cmd_sample)

    p_pipe = sub.add_parser(
        "pipeline",
        help="fan one stream pass out to several estimators",
        description="Run any set of registered estimators over a single "
        "read of the input file, with per-estimator timing.",
    )
    _add_common(p_pipe)
    p_pipe.add_argument(
        "--estimator",
        action="append",
        choices=ESTIMATORS.names(),
        metavar="NAME",
        help="estimator to run (repeatable); choices: "
        + ", ".join(ESTIMATORS.names())
        + "; default: count, transitivity, exact",
    )
    p_pipe.add_argument(
        "--estimators",
        type=int,
        default=None,
        help="pool size for every estimator (default: per-estimator)",
    )
    p_pipe.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="shard every estimator pool across this many worker "
        "processes over one stream read (default: 1, in-process)",
    )
    p_pipe.add_argument(
        "--transport",
        choices=("auto", "shm", "queue"),
        default="auto",
        help="with --workers > 1: how batches reach the workers. 'shm' "
        "ships zero-copy shared-memory views, 'queue' pickles each batch "
        "per worker, 'auto' (default) prefers shm where the platform "
        "supports it",
    )
    p_pipe.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        metavar="N",
        help="with --workers > 1: respawn a crashed or hung worker up "
        "to N times (snapshot restore + bounded replay keeps results "
        "bit-identical). 0 disables supervision and fails the run on "
        "the first worker death (default: 2)",
    )
    p_pipe.add_argument(
        "--worker-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --workers > 1: declare a worker hung (and restart "
        "it) when it makes no progress for this long (default: wait "
        "forever)",
    )
    p_pipe.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults for recovery drills, e.g. "
        "'kill:w0@b5,source-error@r2' (also read from "
        "$REPRO_FAULT_PLAN; see repro.streaming.faults)",
    )
    p_pipe.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="snapshot estimator state into DIR: always at stream end, "
        "every --checkpoint-every batches, and on SIGUSR1",
    )
    p_pipe.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="K",
        help="with --checkpoint: also snapshot every K batches",
    )
    p_pipe.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume from a checkpoint DIR (same estimators, same input, "
        "same --batch-size) and continue bit-identically",
    )
    _add_journal(p_pipe)
    p_pipe.set_defaults(func=_cmd_pipeline)

    p_watch = sub.add_parser(
        "watch",
        help="live snapshots over a growing file or stdin",
        description="Follow an edge-list file as it grows (tail -f "
        "semantics; pass '-' to read stdin instead) and print a "
        "snapshot of every estimator's current results every --every "
        "batches. Windowed estimators pair naturally with this mode. "
        "With --checkpoint, a killed watcher restarts with --resume "
        "and continues where it stood.",
    )
    p_watch.add_argument(
        "--input", required=True, help="edge-list file to follow, or '-' for stdin"
    )
    p_watch.add_argument("--seed", type=int, default=0, help="random seed")
    p_watch.add_argument(
        "--batch-size", type=_positive_int, default=4_096,
        help="edges per batch (smaller than pipeline's default: live "
        "latency beats throughput here)",
    )
    p_watch.add_argument(
        "--dedup",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="drop repeated edges across the whole watched stream "
        "(default OFF for watch: the membership set grows forever on "
        "an unbounded stream)",
    )
    p_watch.add_argument(
        "--signed",
        action="store_true",
        help="treat the followed stream as fully-dynamic (turnstile): "
        "each line carries a +1/-1 third column or a +/- prefix marking "
        "insertion vs deletion; pair with deletion-capable estimators",
    )
    _add_backend(p_watch)
    p_watch.add_argument(
        "--estimator",
        action="append",
        choices=ESTIMATORS.names(),
        metavar="NAME",
        help="estimator to run (repeatable); choices: "
        + ", ".join(ESTIMATORS.names())
        + "; default: count, sliding-window",
    )
    p_watch.add_argument(
        "--estimators",
        type=int,
        default=None,
        help="pool size for every estimator (default: per-estimator)",
    )
    p_watch.add_argument(
        "--every", type=_positive_int, default=1, metavar="K",
        help="emit a snapshot every K batches (default: 1)",
    )
    p_watch.add_argument(
        "--poll-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between polls of an idle file (default: 0.2; "
        "file input only)",
    )
    p_watch.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="stop after the file has not grown for this long "
        "(default: follow forever; file input only)",
    )
    p_watch.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="append each snapshot as a JSON line to PATH instead of "
        "printing to stdout (one atomic write per line)",
    )
    p_watch.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults for recovery drills, e.g. "
        "'source-error@r2,ckpt-fail@s2' (also read from "
        "$REPRO_FAULT_PLAN; see repro.streaming.faults)",
    )
    p_watch.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="snapshot estimator state into DIR: every "
        "--checkpoint-every batches, on SIGUSR1, and at stream end",
    )
    p_watch.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="K",
        help="with --checkpoint: also snapshot every K batches",
    )
    p_watch.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume a killed watcher from its checkpoint DIR (same "
        "estimators, same file, same --batch-size); with --journal, "
        "works for stdin too: the journal replays the edges the "
        "checkpoint had not yet covered",
    )
    _add_journal(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_exact = sub.add_parser("exact", help="exact counts (O(m) memory)")
    _add_common(p_exact)
    p_exact.set_defaults(func=_cmd_exact)

    p_stats = sub.add_parser("stats", help="basic graph statistics")
    _add_common(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_check = sub.add_parser(
        "check",
        help="run the repo's static-analysis rules",
        description="AST-based invariant checks over Python sources: "
        "checkpoint-state completeness (R001), RNG discipline (R002), "
        "backend kernel parity (R003), resource lifecycle (R004), "
        "nondeterministic iteration (R005), and registry/protocol "
        "conformance (R006). Suppress a single line with "
        "'# repro: allow[R00x]'; unused suppressions are themselves "
        "flagged. Exits 0 when clean, 1 on findings, 2 on usage errors.",
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze "
        "(default: the installed repro package)",
    )
    p_check.add_argument(
        "--rule",
        action="append",
        metavar="R00x",
        default=None,
        help="run only this rule id (repeatable; default: all rules). "
        "Unused-suppression warnings are emitted only on full runs",
    )
    p_check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format on stdout (default: human)",
    )
    p_check.add_argument(
        "--json-report",
        metavar="PATH",
        default=None,
        help="additionally write the JSON report to PATH (any --format)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    # backend="numpy" keeps main()'s set_backend from importing numba:
    # the analyzer never executes a kernel.
    p_check.set_defaults(func=_cmd_check, backend="numpy")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Activate before any estimator is built so even construction-time
        # kernel calls go through the requested backend. An explicit
        # --backend numba on a numba-less box fails loudly here.
        set_backend(getattr(args, "backend", None))
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
