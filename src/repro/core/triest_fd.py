"""TRIÈST-FD: triangle counting over fully-dynamic (turnstile) streams.

De Stefani, Epasto, Riondato and Upfal's fully-dynamic variant of
TRIÈST (KDD 2016) adapts reservoir sampling to edge *deletions* with
random pairing (Gemulla, Lehner, Haas): a deletion is not compensated
immediately -- it is remembered in one of two counters, ``d_i`` (a
deletion of an edge that was *in* the sample) or ``d_o`` (of one that
was *out*), and a later insertion "pairs" with an uncompensated
deletion instead of running the reservoir coin:

- **deletion** of ``e``: decrement the net edge count ``s``; if ``e``
  is sampled, remove it (updating the sampled triangle count ``tau``)
  and ``d_i += 1``, else ``d_o += 1``;
- **insertion** of ``e`` with no uncompensated deletions
  (``d_i + d_o == 0``): the classic reservoir step -- add while the
  sample has room, else replace a uniform victim with probability
  ``M / s``;
- **insertion** with ``d_i + d_o > 0``: with probability
  ``d_i / (d_i + d_o)`` the arrival refills the sampled-deletion hole
  (``d_i -= 1``, ``e`` enters the sample), otherwise it is dropped
  (``d_o -= 1``).

The invariant is that the sample stays a uniform ``min(M, pop)``-subset
of the current edge *population* ``pop = s + d_i + d_o``, so with
``omega = min(M, pop)`` the sampled triangle count ``tau`` unbiases by
the probability that all three edges of a triangle are sampled:

    estimate = tau * (pop choose 3) / (omega choose 3)
             = tau / prod_{j<3} (omega - j) / (pop - j)

When ``M >= pop`` the sample is the whole graph, the correction is 1,
and ``tau`` is the exact triangle count -- the deterministic hook the
test suite pins the implementation against.

The update is inherently sequential (each decision conditions the
reservoir state), but the batch surface is columnar: an
:class:`~repro.streaming.batch.EdgeBatch` hands over its edge columns
and int8 sign column in one shot and the per-edge loop runs over plain
Python ints -- no per-edge tuple allocation, no per-edge validation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..rng import RandomSource, spawn_sources

__all__ = ["TriestFdSampler", "TriestFdCounter"]


class TriestFdSampler:
    """One TRIÈST-FD reservoir over a signed edge stream.

    Parameters
    ----------
    memory:
        The reservoir capacity ``M`` (sampled edges held at most).
    """

    def __init__(
        self,
        memory: int,
        seed: int | None = None,
        *,
        rng: RandomSource | None = None,
    ) -> None:
        if memory < 1:
            raise InvalidParameterError(f"memory must be >= 1, got {memory}")
        self.memory = memory
        self._rng = rng if rng is not None else RandomSource(seed)
        self._edges: list[tuple[int, int]] = []  # sample, in slot order
        self._slot: dict[tuple[int, int], int] = {}  # edge -> sample index
        self._adj: dict[int, set[int]] = {}  # sampled adjacency
        self.t = 0  # stream events processed (inserts + deletes)
        self.s = 0  # net edge count of the evolving graph
        self.d_i = 0  # uncompensated deletions of sampled edges
        self.d_o = 0  # uncompensated deletions of unsampled edges
        self.tau = 0  # triangles with all three edges in the sample

    # -- sample maintenance ------------------------------------------------
    def _shared(self, u: int, v: int) -> int:
        """Sampled common neighbors of ``u`` and ``v`` (triangles closed)."""
        nu = self._adj.get(u)
        nv = self._adj.get(v)
        if not nu or not nv:
            return 0
        if len(nv) < len(nu):
            nu, nv = nv, nu
        return sum(1 for w in nu if w in nv)

    def _add(self, u: int, v: int) -> None:
        self.tau += self._shared(u, v)
        self._slot[(u, v)] = len(self._edges)
        self._edges.append((u, v))
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def _remove_slot(self, idx: int) -> None:
        u, v = self._edges[idx]
        last = self._edges[-1]
        self._edges[idx] = last
        self._slot[last] = idx
        self._edges.pop()
        del self._slot[(u, v)]
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        if not self._adj[u]:
            del self._adj[u]
        if not self._adj[v]:
            del self._adj[v]
        self.tau -= self._shared(u, v)

    # -- the stream --------------------------------------------------------
    def update(self, u: int, v: int, sign: int = 1) -> None:
        """Observe one signed stream event (``u < v`` canonical)."""
        self.t += 1
        edge = (u, v)
        if sign >= 0:
            self.s += 1
            if edge in self._slot:
                return  # duplicate insert of a sampled edge: idempotent
            d = self.d_i + self.d_o
            if d == 0:
                if len(self._edges) < self.memory:
                    self._add(u, v)
                elif self._rng.coin(self.memory / self.s):
                    victim = self._rng.rand_int(0, len(self._edges) - 1)
                    self._remove_slot(victim)
                    self._add(u, v)
            elif self._rng.coin(self.d_i / d):
                self.d_i -= 1
                self._add(u, v)
            else:
                self.d_o -= 1
        else:
            self.s -= 1
            if edge in self._slot:
                self._remove_slot(self._slot[edge])
                self.d_i += 1
            else:
                self.d_o += 1

    # -- queries -----------------------------------------------------------
    def population(self) -> int:
        """``s + d_i + d_o``: the population the sample is uniform over."""
        return self.s + self.d_i + self.d_o

    def triangle_estimate(self) -> float:
        """Unbiased estimate of the current graph's triangle count."""
        pop = self.population()
        if pop < 3:
            return 0.0
        omega = min(self.memory, pop)
        if omega < 3:
            return 0.0
        p = 1.0
        for j in range(3):
            p *= (omega - j) / (pop - j)
        return self.tau / p

    # -- checkpoint/ship surface -------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot: counters, the sample in slot order, the rng state."""
        edges = np.array(self._edges, dtype=np.int64).reshape(-1, 2)
        return {
            "memory": self.memory,
            "t": self.t,
            "s": self.s,
            "d_i": self.d_i,
            "d_o": self.d_o,
            "tau": self.tau,
            "edges": edges,
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        memory = int(state["memory"])
        if memory < 1:
            raise InvalidParameterError(f"memory must be >= 1, got {memory}")
        self.memory = memory
        self.t = int(state["t"])
        self.s = int(state["s"])
        self.d_i = int(state["d_i"])
        self.d_o = int(state["d_o"])
        self.tau = int(state["tau"])
        self._edges = [tuple(row) for row in np.asarray(state["edges"]).tolist()]
        self._slot = {edge: i for i, edge in enumerate(self._edges)}
        self._adj = {}
        for u, v in self._edges:
            self._adj.setdefault(u, set()).add(v)
            self._adj.setdefault(v, set()).add(u)
        if state.get("rng") is not None:
            self._rng.setstate(state["rng"])


class TriestFdCounter:
    """A pool of independent TRIÈST-FD reservoirs, averaged.

    The registry estimator: ``num_estimators`` independent samplers
    sharing every batch, their estimates averaged -- the same pooling
    contract as every other estimator, so checkpointing, sharded
    merge-by-concatenation, and live snapshots work unchanged.
    """

    #: Turnstile-capable: honours the ``+1``/``-1`` sign column.
    supports_deletions = True

    def __init__(
        self, num_estimators: int, memory: int, *, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._samplers = [TriestFdSampler(memory, rng=src) for src in sources]
        self.memory = memory
        self.edges_seen = 0  # stream events (inserts + deletes)

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def update_batch(self, batch: Sequence) -> None:
        """Observe one batch, signed or plain.

        ``EdgeBatch`` inputs hand over their columns in one shot
        (``signs`` defaulting to all-inserts); plain sequences accept
        ``(u, v)`` pairs and ``(u, v, sign)`` triples.
        """
        rows, signs = _columnar_rows(batch)
        for sampler in self._samplers:
            update = sampler.update
            if signs is None:
                for u, v in rows:
                    update(u, v)
            else:
                for (u, v), sign in zip(rows, signs):
                    update(u, v, sign)
        self.edges_seen += len(rows)

    def state_dict(self) -> dict:
        """Snapshot: every sampler, in pool order."""
        return {
            "memory": self.memory,
            "edges_seen": self.edges_seen,
            "samplers": [s.state_dict() for s in self._samplers],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot, adopting its memory and pool wholesale."""
        samplers = []
        for sampler_state in state["samplers"]:
            sampler = TriestFdSampler(int(state["memory"]))
            sampler.load_state_dict(sampler_state)
            samplers.append(sampler)
        if not samplers:
            raise InvalidParameterError("state dict holds no samplers")
        self._samplers = samplers
        self.memory = int(state["memory"])
        self.edges_seen = int(state["edges_seen"])

    def merge(self, other: "TriestFdCounter") -> None:
        """Absorb ``other``'s sampler pool (same stream, same memory)."""
        if other.memory != self.memory:
            raise InvalidParameterError(
                f"cannot merge memory {other.memory} into memory {self.memory}"
            )
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} events vs {self.edges_seen})"
            )
        self._samplers.extend(other._samplers)

    def estimates(self) -> list[float]:
        """Per-sampler triangle estimates."""
        return [s.triangle_estimate() for s in self._samplers]

    def estimate(self) -> float:
        """The averaged triangle-count estimate for the current graph."""
        values = self.estimates()
        return sum(values) / len(values)

    def net_edges(self) -> int:
        """The evolving graph's net edge count (inserts minus deletes)."""
        return self._samplers[0].s


def _columnar_rows(batch):
    """``(rows, signs)`` from a batch: EdgeBatch columns or plain tuples.

    ``rows`` is a list of ``(u, v)`` int pairs; ``signs`` is a list of
    ints or ``None`` for an all-insert batch, so the per-edge reservoir
    loop runs over plain Python ints.
    """
    from ..streaming.batch import EdgeBatch

    if isinstance(batch, EdgeBatch):
        rows = batch.array.tolist()
        signs = None if batch.signs is None else batch.signs.tolist()
        return rows, signs
    rows = []
    signs = []
    signed = False
    for item in batch:
        if len(item) == 3:
            u, v, sign = item
            signed = True
        else:
            u, v = item
            sign = 1
        if u > v:
            u, v = v, u
        rows.append((int(u), int(v)))
        signs.append(int(sign))
    return rows, (signs if signed else None)
