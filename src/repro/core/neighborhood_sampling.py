"""Neighborhood sampling for triangles -- Algorithm 1 (NSAMP-TRIANGLE).

A single estimator maintains:

- ``r1`` -- a uniform reservoir sample over all edges seen;
- ``r2`` -- a uniform reservoir sample over ``N(r1)``, the edges
  adjacent to ``r1`` that arrive after it;
- ``c``  -- the invariant ``c = |N(r1)|`` so far;
- ``t``  -- the triangle closed by a later edge over the wedge
  ``r1 r2``, if any.

Lemma 3.1: after the whole stream, ``Pr[t = t*] = 1 / (m * C(t*))`` for
every triangle ``t*``, where ``C(t*) = c(f)`` for the triangle's first
edge ``f``. Lemma 3.2 turns this into the unbiased count estimate
``tau~ = c * m * 1[t != empty]``.

This module is the *reference* implementation: one Python object per
estimator, updated per edge, and deliberately a line-by-line transcription
of the paper's pseudocode. The production engines live in
:mod:`repro.core.bulk` (faithful batch algorithm) and
:mod:`repro.core.vectorized` (numpy array state).
"""

from __future__ import annotations

from ..graph.edge import Edge, canonical_edge, edges_adjacent, third_vertices
from ..rng import RandomSource

__all__ = ["NeighborhoodSampler"]


class NeighborhoodSampler:
    """One neighborhood-sampling estimator (Algorithm 1).

    Parameters
    ----------
    seed:
        Seed for this estimator's private random source, or an existing
        :class:`~repro.rng.RandomSource` via the ``rng`` keyword.

    Attributes
    ----------
    r1, r2:
        The level-1 and level-2 edges (``None`` while unset).
    c:
        ``|N(r1)|`` among edges seen so far.
    t:
        The sampled triangle as a sorted vertex triple, or ``None``.
    edges_seen:
        Number of stream edges observed (the paper's ``i`` / final ``m``).
    """

    __slots__ = ("_rng", "r1", "r2", "c", "t", "edges_seen", "_closing")

    def __init__(self, seed: int | None = None, *, rng: RandomSource | None = None) -> None:
        self._rng = rng if rng is not None else RandomSource(seed)
        self.r1: Edge | None = None
        self.r2: Edge | None = None
        self.c: int = 0
        self.t: tuple[int, int, int] | None = None
        self.edges_seen: int = 0
        self._closing: Edge | None = None  # the edge that would close wedge r1 r2

    def update(self, edge: tuple[int, int]) -> None:
        """Process the next stream edge (the body of Algorithm 1)."""
        e = canonical_edge(*edge)
        self.edges_seen += 1
        i = self.edges_seen
        if self._rng.coin(1.0 / i):
            # e becomes the new level-1 edge.
            self.r1 = e
            self.r2 = None
            self.t = None
            self.c = 0
            self._closing = None
            return
        if self.r1 is None or not edges_adjacent(e, self.r1):
            return
        self.c += 1
        if self._rng.coin(1.0 / self.c):
            # e becomes the new level-2 edge; remember the closing edge.
            self.r2 = e
            self.t = None
            self._closing = third_vertices(self.r1, e)
        elif self.t is None and self._closing is not None and e == self._closing:
            a, b = self._closing
            shared = self.r1[0] if self.r1[0] not in (a, b) else self.r1[1]
            self.t = tuple(sorted((a, b, shared)))  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # estimates (Lemmas 3.2 and 3.10)
    # ------------------------------------------------------------------
    def triangle_estimate(self) -> float:
        """The unbiased triangle-count estimate ``tau~`` (Lemma 3.2)."""
        if self.t is None:
            return 0.0
        return float(self.c) * self.edges_seen

    def wedge_estimate(self) -> float:
        """The unbiased wedge-count estimate ``zeta~ = m * c`` (Lemma 3.10)."""
        return float(self.c) * self.edges_seen

    def has_triangle(self) -> bool:
        """Whether the estimator currently holds a closed triangle."""
        return self.t is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NeighborhoodSampler(r1={self.r1}, r2={self.r2}, c={self.c}, "
            f"t={self.t}, edges_seen={self.edges_seen})"
        )
