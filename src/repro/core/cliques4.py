"""Counting and sampling 4-cliques (Section 5.1, Algorithm 4).

Every 4-clique is classified by its first two stream edges ``f1, f2``:

- **Type I** -- ``f1`` and ``f2`` share a vertex. Three levels of
  neighborhood sampling: ``r1`` uniform over the stream, ``r2`` uniform
  over ``N(r1)``, ``r3`` uniform over ``N(r1, r2)`` (edges adjacent to
  the wedge that extend it to a fourth vertex). The unbiased estimate is
  ``X = c1 * c2 * m`` when the held edges complete a 4-clique
  (Lemmas 5.1, 5.3).
- **Type II** -- ``f1`` and ``f2`` are vertex-disjoint. Two independent
  uniform edge samples fix all four vertices; the remaining four cross
  edges are awaited. The unbiased estimate is ``Y = m^2`` on completion
  (Lemmas 5.2, 5.4).

``tau_4(G) = E[X] + E[Y]``, so :class:`CliqueCounter4` averages a pool
of each type and adds the means (Theorem 5.5).

Implementation notes (deviations the paper leaves implicit; see
DESIGN.md section 6):

- Replacing a level's sample resets all downstream captured state, the
  same discipline Algorithm 1 applies at level 2 (``(r2, t) <- (ei, {})``).
- The level-3 sample space ``N(r1, r2)`` excludes exactly the edges
  *spanned by the wedge's vertices* (the wedge-closing edge). The
  closing edge is captured separately whenever it arrives after ``r2``
  (the "forms a triangle" branch), so every arrival order of a Type I
  clique is sampled with probability ``1/(m * c1 * c2)``, as Lemma 5.1
  requires. Edges through the shared vertex remain in the sample space:
  they extend the wedge with a fourth vertex just like edges off the
  outer vertices.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge, third_vertices
from ..rng import RandomSource, spawn_sources

__all__ = ["FourCliqueSamplerTypeI", "FourCliqueSamplerTypeII", "CliqueCounter4"]


def _edge_within(e: Edge, vertices: frozenset[int] | set[int]) -> bool:
    return e[0] in vertices and e[1] in vertices


def _edge_or_none(value) -> Edge | None:
    """Rebuild an optional edge from its JSON round-tripped form."""
    return None if value is None else (int(value[0]), int(value[1]))


def _edge_adjacent_to(e: Edge, vertices: frozenset[int] | set[int]) -> bool:
    return e[0] in vertices or e[1] in vertices


class FourCliqueSamplerTypeI:
    """One Type I estimator (Algorithm 4): wedge + extension sampling."""

    __slots__ = (
        "_rng", "edges_seen", "r1", "r2", "r3", "c1", "c2",
        "_closing", "_closing_seen", "_captured",
    )

    def __init__(self, seed: int | None = None, *, rng: RandomSource | None = None) -> None:
        self._rng = rng if rng is not None else RandomSource(seed)
        self.edges_seen = 0
        self.r1: Edge | None = None
        self.r2: Edge | None = None
        self.r3: Edge | None = None
        self.c1 = 0
        self.c2 = 0
        self._closing: Edge | None = None  # the wedge-closing edge, from r1/r2
        self._closing_seen = False
        self._captured: set[Edge] = set()  # post-r3 clique edges seen

    # -- streaming ------------------------------------------------------
    def update(self, edge: tuple[int, int]) -> None:
        e = canonical_edge(*edge)
        self.edges_seen += 1
        if self._rng.coin(1.0 / self.edges_seen):
            # New level-1 edge; reset everything downstream.
            self.r1 = e
            self.r2 = self.r3 = None
            self.c1 = self.c2 = 0
            self._closing = None
            self._closing_seen = False
            self._captured.clear()
            return
        if self.r1 is None or not _edge_adjacent_to(e, set(self.r1)):
            self._level3(e, adjacent_to_r1=False)
            return
        # e is in N(r1): level-2 reservoir.
        self.c1 += 1
        if self._rng.coin(1.0 / self.c1):
            self.r2 = e
            self.r3 = None
            self.c2 = 0
            self._closing = third_vertices(self.r1, e)
            self._closing_seen = False
            self._captured.clear()
            return
        if self.r2 is not None and e == self._closing:
            # e closes the wedge triangle; capture it outside the
            # level-3 sample space.
            self._closing_seen = True
            return
        self._level3(e, adjacent_to_r1=True)

    def _level3(self, e: Edge, *, adjacent_to_r1: bool) -> None:
        """Level-3 reservoir over N(r1, r2), plus post-r3 capture."""
        if self.r1 is None or self.r2 is None:
            return
        wedge = set(self.r1) | set(self.r2)
        if not adjacent_to_r1 and not _edge_adjacent_to(e, set(self.r2)):
            return  # not adjacent to the wedge at all
        if _edge_within(e, wedge):
            return  # only the closing edge lies within; handled above
        self.c2 += 1
        if self._rng.coin(1.0 / self.c2):
            self.r3 = e
            self._captured.clear()
            return
        if self.r3 is not None:
            four = wedge | set(self.r3)
            if _edge_within(e, four):
                self._captured.add(e)

    # -- checkpoint/ship surface ----------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot including the rng state."""
        return {
            "edges_seen": self.edges_seen,
            "r1": None if self.r1 is None else list(self.r1),
            "r2": None if self.r2 is None else list(self.r2),
            "r3": None if self.r3 is None else list(self.r3),
            "c1": self.c1,
            "c2": self.c2,
            "closing": None if self._closing is None else list(self._closing),
            "closing_seen": self._closing_seen,
            "captured": [list(e) for e in sorted(self._captured)],
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self.edges_seen = int(state["edges_seen"])
        self.r1 = _edge_or_none(state["r1"])
        self.r2 = _edge_or_none(state["r2"])
        self.r3 = _edge_or_none(state["r3"])
        self.c1 = int(state["c1"])
        self.c2 = int(state["c2"])
        self._closing = _edge_or_none(state["closing"])
        self._closing_seen = bool(state["closing_seen"])
        self._captured = {(int(u), int(v)) for u, v in state["captured"]}
        if state.get("rng") is not None:
            self._rng.setstate(state["rng"])

    # -- queries --------------------------------------------------------
    def clique_vertices(self) -> tuple[int, int, int, int] | None:
        """The four candidate vertices, once ``r1``, ``r2``, ``r3`` are held."""
        if self.r1 is None or self.r2 is None or self.r3 is None:
            return None
        vertices = set(self.r1) | set(self.r2) | set(self.r3)
        if len(vertices) != 4:
            return None
        return tuple(sorted(vertices))  # type: ignore[return-value]

    def held_clique(self) -> tuple[int, int, int, int] | None:
        """The sampled 4-clique's vertices, or ``None`` if incomplete."""
        vertices = self.clique_vertices()
        if vertices is None or not self._closing_seen:
            return None
        # Six edges total: r1, r2, r3, the closing edge, and two captured.
        if len(self._captured) != 2:
            return None
        return vertices

    def estimate(self) -> float:
        """The unbiased Type I estimate ``X = c1 * c2 * m`` (Lemma 5.3)."""
        if self.held_clique() is None:
            return 0.0
        return float(self.c1) * float(self.c2) * float(self.edges_seen)


class FourCliqueSamplerTypeII:
    """One Type II estimator: two independent uniform edges fix 4 vertices."""

    __slots__ = (
        "_rng", "edges_seen", "e1", "pos1", "e2", "pos2", "_captured",
    )

    def __init__(self, seed: int | None = None, *, rng: RandomSource | None = None) -> None:
        self._rng = rng if rng is not None else RandomSource(seed)
        self.edges_seen = 0
        self.e1: Edge | None = None
        self.pos1 = 0
        self.e2: Edge | None = None
        self.pos2 = 0
        self._captured: set[Edge] = set()

    def _active(self) -> bool:
        """Both samples held, vertex-disjoint, in arrival order."""
        return (
            self.e1 is not None
            and self.e2 is not None
            and self.pos1 < self.pos2
            and not set(self.e1) & set(self.e2)
        )

    def update(self, edge: tuple[int, int]) -> None:
        e = canonical_edge(*edge)
        self.edges_seen += 1
        i = self.edges_seen
        changed = False
        # Two independent reservoirs over the whole stream (Lemma 5.2:
        # Pr[e1 = f1] and Pr[e2 = f2] are independent, each 1/m).
        if self._rng.coin(1.0 / i):
            self.e1, self.pos1 = e, i
            changed = True
        if self._rng.coin(1.0 / i):
            self.e2, self.pos2 = e, i
            changed = True
        if changed:
            self._captured.clear()
            return
        if self._active():
            four = set(self.e1) | set(self.e2)  # type: ignore[arg-type]
            if _edge_within(e, four):
                self._captured.add(e)

    def held_clique(self) -> tuple[int, int, int, int] | None:
        """The sampled 4-clique's vertices, or ``None`` if incomplete."""
        if not self._active() or len(self._captured) != 4:
            return None
        vertices = set(self.e1) | set(self.e2)  # type: ignore[arg-type]
        return tuple(sorted(vertices))  # type: ignore[return-value]

    # -- checkpoint/ship surface ----------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot including the rng state."""
        return {
            "edges_seen": self.edges_seen,
            "e1": None if self.e1 is None else list(self.e1),
            "pos1": self.pos1,
            "e2": None if self.e2 is None else list(self.e2),
            "pos2": self.pos2,
            "captured": [list(e) for e in sorted(self._captured)],
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self.edges_seen = int(state["edges_seen"])
        self.e1 = _edge_or_none(state["e1"])
        self.pos1 = int(state["pos1"])
        self.e2 = _edge_or_none(state["e2"])
        self.pos2 = int(state["pos2"])
        self._captured = {(int(u), int(v)) for u, v in state["captured"]}
        if state.get("rng") is not None:
            self._rng.setstate(state["rng"])

    def estimate(self) -> float:
        """The unbiased Type II estimate ``Y = m^2`` (Lemma 5.4)."""
        if self.held_clique() is None:
            return 0.0
        return float(self.edges_seen) ** 2


class CliqueCounter4:
    """(eps, delta)-approximate 4-clique counting (Theorem 5.5).

    Runs ``num_estimators`` Type I and ``num_estimators`` Type II
    samplers and returns the sum of the two pool means:
    ``tau_4' = mean(X) + mean(Y)``.

    The sufficient pool size is ``r >= K * s(eps, delta) * eta /
    tau_4(G)`` with ``eta = max(m * Delta^2, m^2)``.
    """

    def __init__(self, num_estimators: int, *, seed: int | None = None) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, 2 * num_estimators)
        self._type1 = [
            FourCliqueSamplerTypeI(rng=sources[i]) for i in range(num_estimators)
        ]
        self._type2 = [
            FourCliqueSamplerTypeII(rng=sources[num_estimators + i])
            for i in range(num_estimators)
        ]
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._type1)

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge with every sampler of both types."""
        for sampler in self._type1:
            sampler.update(edge)
        for sampler in self._type2:
            sampler.update(edge)
        self.edges_seen += 1

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def state_dict(self) -> dict:
        """Snapshot: both sampler pools, in pool order."""
        return {
            "edges_seen": self.edges_seen,
            "type1": [s.state_dict() for s in self._type1],
            "type2": [s.state_dict() for s in self._type2],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Adopts the snapshot's pool sizes wholesale.
        """
        type1 = []
        for sampler_state in state["type1"]:
            sampler = FourCliqueSamplerTypeI()
            sampler.load_state_dict(sampler_state)
            type1.append(sampler)
        type2 = []
        for sampler_state in state["type2"]:
            sampler = FourCliqueSamplerTypeII()
            sampler.load_state_dict(sampler_state)
            type2.append(sampler)
        self._type1 = type1
        self._type2 = type2
        self.edges_seen = int(state["edges_seen"])

    def merge(self, other: "CliqueCounter4") -> None:
        """Absorb ``other``'s sampler pools (same stream observed)."""
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} edges vs {self.edges_seen})"
            )
        self._type1.extend(other._type1)
        self._type2.extend(other._type2)

    def type1_estimates(self) -> list[float]:
        return [s.estimate() for s in self._type1]

    def type2_estimates(self) -> list[float]:
        return [s.estimate() for s in self._type2]

    def estimate(self) -> float:
        """``tau_4' = mean(X) + mean(Y)`` (Theorem 5.5)."""
        r = self.num_estimators
        return (
            sum(self.type1_estimates()) / r + sum(self.type2_estimates()) / r
        )

    def held_cliques(self) -> list[tuple[int, int, int, int]]:
        """All 4-cliques currently held across both pools."""
        held = [s.held_clique() for s in self._type1]
        held += [s.held_clique() for s in self._type2]
        return [h for h in held if h is not None]
