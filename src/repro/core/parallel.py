"""Multicore triangle counting by estimator-pool sharding.

The paper's conclusion notes that "neighborhood sampling is amenable to
parallelization" (their follow-up implements a cache-efficient multicore
version [20]). The estimator dimension is embarrassingly parallel: every
estimator observes the whole stream independently, so ``r`` estimators
split into ``k`` pools of ``r/k``, each pool runs on its own core over
the same edges, and the final estimate is the pooled mean.

:class:`ParallelTriangleCounter` implements exactly that with
``multiprocessing``: workers build vectorized engines over the shared
edge list and return their state; the parent merges via
:func:`repro.core.checkpoint.merge_counters`. Worthwhile once the
stream x estimator volume dwarfs process start-up cost.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Sequence

from ..errors import InvalidParameterError
from .checkpoint import from_state_dict, merge_counters, to_state_dict
from .vectorized import VectorizedTriangleCounter

__all__ = ["ParallelTriangleCounter", "count_triangles_parallel"]


def _worker(args: tuple) -> dict:
    """Run one estimator shard over the full edge list (subprocess)."""
    num_estimators, seed, edges, batch_size = args
    counter = VectorizedTriangleCounter(num_estimators, seed=seed)
    for start in range(0, len(edges), batch_size):
        counter.update_batch(edges[start : start + batch_size])
    return to_state_dict(counter)


class ParallelTriangleCounter:
    """Offline parallel counting: shard estimators across processes.

    Parameters
    ----------
    num_estimators:
        Total pool size ``r`` (split as evenly as possible).
    workers:
        Number of worker processes.
    """

    def __init__(
        self, num_estimators: int, *, workers: int = 2, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.num_estimators = num_estimators
        self.workers = min(workers, num_estimators)
        self.seed = seed
        self._merged: VectorizedTriangleCounter | None = None

    def _shard_sizes(self) -> list[int]:
        base, extra = divmod(self.num_estimators, self.workers)
        return [base + (1 if i < extra else 0) for i in range(self.workers)]

    def count(
        self, edges: Sequence[tuple[int, int]], *, batch_size: int = 65_536
    ) -> float:
        """Process the whole stream across workers; return the estimate."""
        shards = self._shard_sizes()
        base_seed = 0 if self.seed is None else self.seed
        jobs = [
            (size, base_seed * 7919 + i, list(edges), batch_size)
            for i, size in enumerate(shards)
        ]
        if self.workers == 1:
            states = [_worker(jobs[0])]
        else:
            with multiprocessing.Pool(self.workers) as pool:
                states = pool.map(_worker, jobs)
        counters = [from_state_dict(s) for s in states]
        self._merged = merge_counters(counters, seed=base_seed)
        return self._merged.estimate()

    @property
    def merged(self) -> VectorizedTriangleCounter:
        """The merged counter after :meth:`count` (for further queries)."""
        if self._merged is None:
            raise InvalidParameterError("call count() first")
        return self._merged


def count_triangles_parallel(
    edges: Sequence[tuple[int, int]],
    num_estimators: int,
    *,
    workers: int = 2,
    seed: int | None = None,
    batch_size: int = 65_536,
) -> float:
    """One-call parallel triangle estimate over an edge sequence."""
    counter = ParallelTriangleCounter(num_estimators, workers=workers, seed=seed)
    return counter.count(edges, batch_size=batch_size)
