"""Multicore triangle counting by estimator-pool sharding.

The paper's conclusion notes that "neighborhood sampling is amenable to
parallelization" (their follow-up implements a cache-efficient multicore
version [20]). The estimator dimension is embarrassingly parallel: every
estimator observes the whole stream independently, so ``r`` estimators
split into ``k`` pools of ``r/k``, each pool runs on its own core over
the same edges, and the final estimate is the pooled mean.

:class:`ParallelTriangleCounter` implements that with long-lived
``multiprocessing`` workers fed batch by batch: the parent reads the
stream **once** through an :class:`~repro.streaming.source.EdgeSource`
and fans each batch out to every worker's bounded queue (an imap-style
feed), so peak memory is O(workers x batch) instead of the old
per-worker ``list(edges)`` copies (k x stream memory). Columnar batches
cross the process boundary as raw ``(w, 2)`` int64 arrays -- pickled as
flat buffers rather than per-tuple objects -- and workers feed them
straight to the vectorized engine's prepared fast path. Worker seeds are
spawned through :class:`numpy.random.SeedSequence`, whose splitting is
collision-resistant by construction -- and ``seed=None`` now means
fresh OS entropy per run rather than silently degrading to a
deterministic seed. Workers return their estimator state; the parent
merges via :func:`repro.core.checkpoint.merge_counters`.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import traceback

import numpy as np

from ..errors import InvalidParameterError, WorkerCrashedError
from ..streaming.batch import EdgeBatch
from ..streaming.shm import BatchSender, TransportFeed, check_procs_alive
from ..streaming.source import as_source
from .checkpoint import from_state_dict, merge_counters
from .vectorized import VectorizedTriangleCounter

__all__ = ["ParallelTriangleCounter", "count_triangles_parallel"]

#: Batches in flight per worker queue; bounds parent-side memory while
#: still hiding pickling latency behind worker compute.
_QUEUE_DEPTH = 4


def _worker_loop(
    in_queue,
    out_queue,
    index: int,
    num_estimators: int,
    seed_seq: np.random.SeedSequence,
    shm_client=None,
) -> None:
    """Consume batches until the ``None`` sentinel; ship back the state.

    Batches arrive through the shared transport feed -- zero-copy
    shared-memory views when the parent runs the shm ring, pickled
    arrays otherwise -- already wrapped as canonical, validated
    :class:`EdgeBatch` columns that go straight to the engine's
    prepared fast path. On a worker-side exception the error is shipped
    back instead of the state, and the input queue is drained to its
    sentinel first (releasing any ring slots) -- the parent writes to
    bounded queues, so a worker that stopped consuming would deadlock
    it. The original traceback text rides along as the result's third
    element, captured *before* the pickle probe so even an unpicklable
    exception reports its own failure site.
    """
    feed = TransportFeed(in_queue, shm_client)
    try:
        counter = VectorizedTriangleCounter(num_estimators, seed=seed_seq)
        for batch in feed:
            if isinstance(batch, EdgeBatch):
                counter.update_prepared(batch)
            else:
                counter.update_batch(batch)
        result = ("ok", counter.state_dict(), None)
    except Exception as exc:
        tb = traceback.format_exc()
        feed.drain()
        try:
            pickle.dumps(exc)
            result = ("error", exc, tb)
        except Exception:  # pragma: no cover - unpicklable exception
            result = ("error", RuntimeError(tb), tb)
    finally:
        if shm_client is not None:
            shm_client.close()
    out_queue.put((index, result))


def _put_alive(queue, item, proc, index: int) -> None:
    """``queue.put`` that notices a dead consumer instead of blocking.

    The batch queues are bounded, so a worker killed abnormally (OOM,
    segfault) would otherwise wedge the parent forever once its queue
    filled.
    """
    while True:
        try:
            queue.put(item, timeout=1.0)
            return
        except queue_module.Full:
            if not proc.is_alive():
                raise WorkerCrashedError(
                    f"worker {index} died (exitcode {proc.exitcode}) "
                    "without reporting a result"
                ) from None


#: Consecutive empty polls tolerated for a worker that exited with code
#: 0 before its result surfaces (a queue feeder may still be flushing).
_CLEAN_EXIT_GRACE_POLLS = 3


def _collect_results(out_queue, procs) -> list:
    """Gather one result per worker, raising if any died silently.

    *Any* dead worker that has not reported is treated as crashed --
    including exitcode 0. A worker can exit "cleanly" without posting
    its result (an ``os._exit(0)`` deep in a library, a failed queue
    feeder), and waiting only on nonzero exit codes would leave this
    loop polling forever. Zero-exit workers get a few grace polls
    first, because a result written just before exit can still be in
    the queue's feeder pipe.
    """
    indexed: list = []
    misses: dict[int, int] = {}
    while len(indexed) < len(procs):
        try:
            indexed.append(out_queue.get(timeout=1.0))
            continue
        except queue_module.Empty:
            pass
        reported = {i for i, _ in indexed}
        for i, proc in enumerate(procs):
            if i in reported or proc.is_alive():
                continue
            if proc.exitcode != 0:
                raise WorkerCrashedError(
                    f"worker {i} died (exitcode {proc.exitcode}) "
                    "without reporting a result"
                ) from None
            misses[i] = misses.get(i, 0) + 1
            if misses[i] >= _CLEAN_EXIT_GRACE_POLLS:
                raise WorkerCrashedError(
                    f"worker {i} exited cleanly (exitcode 0) without "
                    "reporting a result"
                ) from None
    return indexed


class ParallelTriangleCounter:
    """Parallel counting: shard estimators across processes, stream once.

    Parameters
    ----------
    num_estimators:
        Total pool size ``r`` (split as evenly as possible).
    workers:
        Number of worker processes.
    seed:
        Root seed; worker pools run on independent
        ``SeedSequence.spawn`` children. ``None`` draws OS entropy.
    transport:
        How batches reach the workers: ``"shm"`` (one copy into a
        shared-memory ring, zero-copy worker views), ``"queue"``
        (per-worker pickled copies), or ``"auto"`` (shm when the
        platform supports it). Results are bit-identical across
        transports.
    max_restarts:
        Per-worker respawn budget. ``0`` (the default) keeps the legacy
        fail-fast path; any other value routes the run through the
        self-healing :class:`~repro.streaming.supervisor.ShardSupervisor`
        (snapshots, bounded replay, restarts), bit-identical to an
        uninterrupted run under a fixed seed.
    worker_deadline:
        Seconds of no progress before a live-but-stuck worker is
        treated as hung and recovered (``None`` disables the watchdog;
        setting it implies the supervised path).
    snapshot_every:
        Supervised-path snapshot cadence in batches.
    restart_backoff:
        First respawn delay, doubled per consecutive restart.
    fault_plan:
        A :class:`~repro.streaming.faults.FaultPlan` injected into the
        run (implies the supervised path).
    """

    def __init__(
        self,
        num_estimators: int,
        *,
        workers: int = 2,
        seed: int | None = None,
        transport: str = "auto",
        max_restarts: int = 0,
        worker_deadline: float | None = None,
        snapshot_every: int = 32,
        restart_backoff: float = 0.1,
        fault_plan=None,
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if transport.strip().lower() not in ("auto", "shm", "queue"):
            raise InvalidParameterError(
                f"unknown transport {transport!r}; choose shm, queue, or auto"
            )
        if max_restarts < 0:
            raise InvalidParameterError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if worker_deadline is not None and worker_deadline <= 0:
            raise InvalidParameterError(
                f"worker_deadline must be positive, got {worker_deadline}"
            )
        self.num_estimators = num_estimators
        self.workers = min(workers, num_estimators)
        self.seed = seed
        self.transport = transport
        self.max_restarts = max_restarts
        self.worker_deadline = worker_deadline
        self.snapshot_every = snapshot_every
        self.restart_backoff = restart_backoff
        self.fault_plan = fault_plan
        self.last_restarts: list[int] = []
        self._merged: VectorizedTriangleCounter | None = None

    @property
    def _supervised(self) -> bool:
        return (
            self.max_restarts > 0
            or self.worker_deadline is not None
            or self.fault_plan is not None
        )

    def _shard_sizes(self) -> list[int]:
        from ..streaming.sharded import shard_sizes

        return shard_sizes(self.num_estimators, self.workers)

    def count(self, edges, *, batch_size: int = 65_536) -> float:
        """Process the whole stream across workers; return the estimate.

        ``edges`` is anything :func:`~repro.streaming.source.as_source`
        accepts -- an in-memory sequence, a file path, an
        ``EdgeSource``, or a one-shot generator (the stream is read
        exactly once either way).
        """
        shards = self._shard_sizes()
        # workers + 1 children: one per worker pool plus a dedicated
        # child for the merged counter's fresh generator. Reusing the
        # root seed for the merged state would correlate its future
        # draws with the sequences the workers were spawned from.
        seed_seqs = np.random.SeedSequence(self.seed).spawn(self.workers + 1)
        merged_seed_seq = seed_seqs[-1]
        source = as_source(edges)

        if self.workers == 1:
            counter = VectorizedTriangleCounter(shards[0], seed=seed_seqs[0])
            for batch in source.batches(batch_size):
                counter.update_batch(batch)
            states = [counter.state_dict()]
        elif self._supervised:
            from ..streaming.supervisor import (
                CounterShardProgram,
                ShardSupervisor,
                Supervision,
            )

            ctx = multiprocessing.get_context()
            supervisor = ShardSupervisor(
                ctx,
                [
                    CounterShardProgram(shards[i], seed_seqs[i])
                    for i in range(self.workers)
                ],
                transport=self.transport,
                batch_size=batch_size,
                queue_depth=_QUEUE_DEPTH,
                policy=Supervision(
                    max_restarts=self.max_restarts,
                    worker_deadline=self.worker_deadline,
                    snapshot_every=self.snapshot_every,
                    backoff=self.restart_backoff,
                ),
                fault_plan=self.fault_plan,
            )
            states = supervisor.run(source.batches(batch_size))
            self.last_restarts = supervisor.restarts
        else:
            ctx = multiprocessing.get_context()
            sender = BatchSender(
                ctx,
                transport=self.transport,
                consumers=self.workers,
                batch_size=batch_size,
                queue_depth=_QUEUE_DEPTH,
            )
            in_queues = [ctx.Queue(maxsize=_QUEUE_DEPTH) for _ in range(self.workers)]
            out_queue = ctx.Queue()
            procs = [
                ctx.Process(
                    target=_worker_loop,
                    args=(
                        in_queues[i], out_queue, i, shards[i], seed_seqs[i],
                        sender.client(i),
                    ),
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for proc in procs:
                proc.start()
            try:
                try:
                    for batch in source.batches(batch_size):
                        # Columnar batches cross the process boundary
                        # once: as a shared-memory descriptor when the
                        # ring runs, else as a raw int64 array (pickled
                        # as a flat buffer, far cheaper than a list of
                        # Python tuples); workers rebuild the EdgeBatch
                        # without re-validating.
                        payload = sender.payload(
                            batch, lambda: check_procs_alive(procs)
                        )
                        for i, queue in enumerate(in_queues):
                            _put_alive(queue, payload, procs[i], i)
                finally:
                    # Always send the sentinel, even when the source
                    # raises mid-stream -- workers block on get otherwise.
                    # Best effort: a wedged queue is abandoned (its
                    # worker is dead or will be terminated below).
                    for queue in in_queues:
                        try:
                            queue.put(None, timeout=5.0)
                        except queue_module.Full:  # pragma: no cover
                            pass
                indexed = _collect_results(out_queue, procs)
            finally:
                for proc in procs:
                    proc.join(timeout=30)
                    if proc.is_alive():  # pragma: no cover - defensive
                        proc.terminate()
                # After the join: frees the ring blocks (workers have
                # detached) and removes every named segment even on the
                # crash path.
                sender.close()
            states = []
            for _, (status, payload, tb) in sorted(indexed):
                if status == "error":
                    if tb:
                        payload.add_note(f"worker traceback:\n{tb}")
                    raise payload
                states.append(payload)

        counters = [from_state_dict(s) for s in states]
        self._merged = merge_counters(counters, seed=merged_seed_seq)
        return self._merged.estimate()

    @property
    def merged(self) -> VectorizedTriangleCounter:
        """The merged counter after :meth:`count` (for further queries)."""
        if self._merged is None:
            raise InvalidParameterError("call count() first")
        return self._merged


def count_triangles_parallel(
    edges,
    num_estimators: int,
    *,
    workers: int = 2,
    seed: int | None = None,
    batch_size: int = 65_536,
) -> float:
    """One-call parallel triangle estimate over any edge source."""
    counter = ParallelTriangleCounter(num_estimators, workers=workers, seed=seed)
    return counter.count(edges, batch_size=batch_size)
