"""Time-based sliding windows: triangles among edges newer than a horizon.

Section 5.2 treats *sequence-based* windows (the last ``w`` edges). The
natural practical variant keys expiry on timestamps instead: at query
time ``t`` the graph of interest is every edge with
``timestamp > t - horizon``. The chain-sampling construction carries
over unchanged -- the chain is still the suffix minima of the
priorities, expiry just pops by timestamp rather than position -- and
the estimate scales by the *current* window size, which the counter
tracks exactly with a timestamp deque.

Timestamps must be non-decreasing (a stream, not a log replay).
"""

from __future__ import annotations

from collections import deque

from ..errors import InvalidParameterError
from ..graph.edge import canonical_edge
from ..rng import RandomSource, spawn_sources
from .sliding_window import _ChainLink

__all__ = ["TimedWindowSampler", "TimedWindowTriangleCounter"]


class TimedWindowSampler:
    """One estimator over a timestamped stream with a time horizon."""

    def __init__(
        self,
        horizon: float,
        seed: int | None = None,
        *,
        rng: RandomSource | None = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self.horizon = horizon
        self._rng = rng if rng is not None else RandomSource(seed)
        self._chain: deque[_ChainLink] = deque()
        self._timestamps: deque[float] = deque()  # all in-window arrival times
        self.edges_seen = 0
        self.now = float("-inf")

    def update(self, edge: tuple[int, int], timestamp: float) -> None:
        """Observe one edge at ``timestamp`` (non-decreasing)."""
        if timestamp < self.now:
            raise InvalidParameterError(
                f"timestamps must be non-decreasing, got {timestamp} after {self.now}"
            )
        e = canonical_edge(*edge)
        self.now = timestamp
        self.edges_seen += 1
        self._expire(timestamp)
        for link in self._chain:
            link.observe(e, self._rng)
        rho = self._rng.random()
        while self._chain and self._chain[-1].rho >= rho:
            self._chain.pop()
        self._chain.append(_ChainLink(e, self.edges_seen, rho))
        self._timestamps.append(timestamp)

    def _expire(self, timestamp: float) -> None:
        cutoff = timestamp - self.horizon
        while self._timestamps and self._timestamps[0] <= cutoff:
            self._timestamps.popleft()
        # Chain links store arrival positions; the surviving old edges
        # are the last len(self._timestamps) arrivals before the current
        # one (edges_seen already counts the incoming edge), i.e.
        # positions >= edges_seen - len(self._timestamps).
        alive_from = self.edges_seen - len(self._timestamps)
        while self._chain and self._chain[0].pos < alive_from:
            self._chain.popleft()

    def window_size(self) -> int:
        """Number of edges currently inside the horizon."""
        return len(self._timestamps)

    def triangle_estimate(self) -> float:
        """Unbiased estimate of the window's triangle count."""
        if not self._chain:
            return 0.0
        head = self._chain[0]
        if head.t is None:
            return 0.0
        return float(head.c) * self.window_size()

    def chain_length(self) -> int:
        return len(self._chain)


class TimedWindowTriangleCounter:
    """``r`` independent :class:`TimedWindowSampler` s, averaged."""

    def __init__(
        self, num_estimators: int, horizon: float, *, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._samplers = [TimedWindowSampler(horizon, rng=src) for src in sources]
        self.horizon = horizon
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def update(self, edge: tuple[int, int], timestamp: float) -> None:
        for sampler in self._samplers:
            sampler.update(edge, timestamp)
        self.edges_seen += 1

    def update_batch(self, timed_edges) -> None:
        """Observe ``(edge, timestamp)`` pairs in order."""
        for edge, timestamp in timed_edges:
            self.update(edge, timestamp)

    def window_size(self) -> int:
        return self._samplers[0].window_size()

    def estimate(self) -> float:
        values = [s.triangle_estimate() for s in self._samplers]
        return sum(values) / len(values)
