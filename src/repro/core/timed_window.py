"""Time-based sliding windows: triangles among edges newer than a horizon.

Section 5.2 treats *sequence-based* windows (the last ``w`` edges). The
natural practical variant keys expiry on timestamps instead: at query
time ``t`` the graph of interest is every edge with
``timestamp > t - horizon``. The chain-sampling construction carries
over unchanged -- the chain is still the suffix minima of the
priorities, expiry just pops by timestamp rather than position -- and
the estimate scales by the *current* window size, which the counter
tracks exactly with a timestamp deque.

Timestamps must be non-decreasing (a stream, not a log replay).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import InvalidParameterError
from ..graph.edge import canonical_edge
from ..rng import RandomSource, spawn_sources
from .sliding_window import _ChainLink

__all__ = ["TimedWindowSampler", "TimedWindowTriangleCounter"]


class TimedWindowSampler:
    """One estimator over a timestamped stream with a time horizon."""

    def __init__(
        self,
        horizon: float,
        seed: int | None = None,
        *,
        rng: RandomSource | None = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self.horizon = horizon
        self._rng = rng if rng is not None else RandomSource(seed)
        self._chain: deque[_ChainLink] = deque()
        self._timestamps: deque[float] = deque()  # all in-window arrival times
        self.edges_seen = 0
        self.now = float("-inf")

    def update(self, edge: tuple[int, int], timestamp: float) -> None:
        """Observe one edge at ``timestamp`` (non-decreasing)."""
        if timestamp < self.now:
            raise InvalidParameterError(
                f"timestamps must be non-decreasing, got {timestamp} after {self.now}"
            )
        e = canonical_edge(*edge)
        self.now = timestamp
        self.edges_seen += 1
        self._expire(timestamp)
        for link in self._chain:
            link.observe(e, self._rng)
        rho = self._rng.random()
        while self._chain and self._chain[-1].rho >= rho:
            self._chain.pop()
        self._chain.append(_ChainLink(e, self.edges_seen, rho))
        self._timestamps.append(timestamp)

    def _expire(self, timestamp: float) -> None:
        cutoff = timestamp - self.horizon
        while self._timestamps and self._timestamps[0] <= cutoff:
            self._timestamps.popleft()
        # Chain links store arrival positions; the surviving old edges
        # are the last len(self._timestamps) arrivals before the current
        # one (edges_seen already counts the incoming edge), i.e.
        # positions >= edges_seen - len(self._timestamps).
        alive_from = self.edges_seen - len(self._timestamps)
        while self._chain and self._chain[0].pos < alive_from:
            self._chain.popleft()

    def state_dict(self) -> dict:
        """Snapshot: the chain, in-window timestamps, and rng state.

        Timestamps are stored as a float64 array (they can number up to
        the window size), so the on-disk checkpoint keeps them in the
        npz member rather than the JSON manifest.
        """
        return {
            "horizon": self.horizon,
            "edges_seen": self.edges_seen,
            "now": self.now,
            "chain": [link.state_dict() for link in self._chain],
            "timestamps": np.asarray(self._timestamps, dtype=np.float64),
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        horizon = float(state["horizon"])
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self.horizon = horizon
        self.edges_seen = int(state["edges_seen"])
        self.now = float(state["now"])
        self._chain = deque(
            _ChainLink.from_state_dict(link) for link in state["chain"]
        )
        self._timestamps = deque(float(t) for t in state["timestamps"])
        if state.get("rng") is not None:
            self._rng.setstate(state["rng"])

    def window_size(self) -> int:
        """Number of edges currently inside the horizon."""
        return len(self._timestamps)

    def triangle_estimate(self) -> float:
        """Unbiased estimate of the window's triangle count."""
        if not self._chain:
            return 0.0
        head = self._chain[0]
        if head.t is None:
            return 0.0
        return float(head.c) * self.window_size()

    def chain_length(self) -> int:
        return len(self._chain)


class TimedWindowTriangleCounter:
    """``r`` independent :class:`TimedWindowSampler` s, averaged."""

    def __init__(
        self, num_estimators: int, horizon: float, *, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._samplers = [TimedWindowSampler(horizon, rng=src) for src in sources]
        self.horizon = horizon
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def update(self, edge: tuple[int, int], timestamp: float) -> None:
        for sampler in self._samplers:
            sampler.update(edge, timestamp)
        self.edges_seen += 1

    def update_batch(self, timed_edges) -> None:
        """Observe ``(edge, timestamp)`` pairs in order."""
        for edge, timestamp in timed_edges:
            self.update(edge, timestamp)

    def window_size(self) -> int:
        return self._samplers[0].window_size()

    def estimate(self) -> float:
        values = [s.triangle_estimate() for s in self._samplers]
        return sum(values) / len(values)

    def state_dict(self) -> dict:
        """Snapshot: every timed sampler, in pool order."""
        return {
            "horizon": self.horizon,
            "edges_seen": self.edges_seen,
            "samplers": [s.state_dict() for s in self._samplers],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Adopts the snapshot's horizon and pool size wholesale.
        """
        samplers = []
        for sampler_state in state["samplers"]:
            sampler = TimedWindowSampler(float(state["horizon"]))
            sampler.load_state_dict(sampler_state)
            samplers.append(sampler)
        if not samplers:
            raise InvalidParameterError("state dict holds no samplers")
        self._samplers = samplers
        self.horizon = float(state["horizon"])
        self.edges_seen = int(state["edges_seen"])

    def merge(self, other: "TimedWindowTriangleCounter") -> None:
        """Absorb ``other``'s sampler pool (same stream, same horizon)."""
        if other.horizon != self.horizon:
            raise InvalidParameterError(
                f"cannot merge horizon {other.horizon} into {self.horizon}"
            )
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} edges vs {self.edges_seen})"
            )
        self._samplers.extend(other._samplers)
