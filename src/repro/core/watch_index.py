"""Persistent inverted watch indexes for the output-sensitive engine.

The paper's per-edge cost argument (Section 3.3) is that an arriving
edge only does work proportional to the number of estimators it
actually *affects*: the level-1 reservoir slots it resamples, the
``r1`` endpoints it is incident on (table ``L``/``P``), and the open
wedges it closes (table ``Q``). The vectorized engine historically paid
``Theta(r)`` per batch anyway, because it recomputed every estimator's
view of every batch. :class:`WatchIndex` is the structure that makes
the engine output-sensitive: a persistent ``int64 key -> estimator
slot`` inverted index, maintained incrementally across batches, that
the engine intersects with the batch's unique vertices (vertex index
over ``r1`` endpoints) or unique edge keys (closing-edge index over
open wedges) to find the touched slots in ``O(w log r)``.

Design, in the classic LSM spirit -- three tiers plus lazy deletion:

- a **sorted base** (binary-searchable; held as packed
  ``(key << slot_bits) | slot`` int64 values whenever they fit, so one
  ``np.sort`` builds it and range queries need no gather indirection).
  For compact key spaces (vertex watches) the base also carries dense
  CSR offsets -- a range lookup is then two gathers -- and a
  **membership bitmap** over the key space, incrementally updated by
  ``add``, that prefilters query keys to the watched ones before any
  per-key work happens;
- a **sorted run**: recent additions, kept sorted and binary-searched
  like the base, re-sorted only when the unsorted tail spills into it;
- an **unsorted tail** of the newest entries, probed linearly --
  ``add`` is O(1) amortized, so maintenance costs are proportional to
  the number of *replacements*, never to ``r``;
- deletions are lazy: a replaced or retired entry simply becomes
  *stale* (a tombstone that is never materialized -- the caller
  re-derives liveness from the estimator state, so a stale hit is a
  false positive that costs a little work, never a wrong answer), and
  :meth:`note_stale` just counts it toward the compaction budget. When
  total churn (run + tail + stale entries) passes the caller's
  threshold, the caller rebuilds from its authoritative state via
  :meth:`rebuild`, which resets all counters. Amortized maintenance is
  therefore ``O(replacements * log r)``, not ``O(r)`` per batch.

The index never appears in checkpoints: it is derived state, rebuilt
from the estimator arrays after ``load_state_dict`` or ``merge`` (see
:class:`~repro.core.vectorized.VectorizedTriangleCounter`).
"""

from __future__ import annotations

import numpy as np

from .backend import active as _kernel_backend

__all__ = ["WatchIndex"]

_EMPTY = np.empty(0, dtype=np.int64)


def _sort_pairs(keys: np.ndarray, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``(key, slot)`` pairs by key (ties by slot order)."""
    if keys.shape[0] == 0:
        return _EMPTY, _EMPTY
    key_bits = int(keys.max()).bit_length()
    slot_bits = max(int(slots.max()).bit_length(), 1)
    if key_bits + slot_bits <= 63:
        shift = np.int64(slot_bits)
        packed = _kernel_backend().pack_sort_pairs(keys, slots, shift)
        return packed >> shift, packed & ((np.int64(1) << shift) - 1)
    order = np.argsort(keys, kind="stable")
    return keys[order], slots[order]


def _expand_ranges(
    lo: np.ndarray, hi: np.ndarray, query_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-query ranges into (positions, query indices).

    Concatenates ``arange(lo[i], hi[i])`` for every query and pairs each
    produced position with ``query_idx[i]``.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    nonempty = counts > 0
    if not nonempty.all():
        lo = lo[nonempty]
        counts = counts[nonempty]
        query_idx = query_idx[nonempty]
    starts = np.cumsum(counts) - counts
    positions = np.repeat(lo - starts, counts) + np.arange(total, dtype=np.int64)
    return positions, np.repeat(query_idx, counts)


class WatchIndex:
    """A persistent ``int64 key -> estimator slot`` inverted index.

    Contract: the owner guarantees that every *live* subscription has an
    entry (``add`` on creation, :meth:`rebuild` after wholesale state
    changes) and re-checks liveness on every hit; the index may contain
    stale entries (lazy deletion) and therefore over-report candidates,
    but never under-report. Arrays passed to :meth:`add`/:meth:`rebuild`
    are kept by reference and must not be mutated afterwards. Keys and
    slots must be non-negative.
    """

    __slots__ = ("_packed", "_shift", "_base_keys", "_base_slots", "_offsets",
                 "_offsets_hi", "_bitmap", "_run_keys", "_run_slots",
                 "_tail_keys", "_tail_slots", "_tail_size", "_stale")

    #: Merge the unsorted tail into the sorted run once it exceeds this
    #: (linear probes stay cheap; the run re-sort amortizes).
    _TAIL_MAX = 4096
    #: Build dense per-key offsets and the membership bitmap when the
    #: key space is at most this factor of the entry count...
    _DENSE_OFFSETS_FACTOR = 8
    #: ...or at most this absolute size, whichever is larger.
    _DENSE_OFFSETS_MIN = 65_536
    # (delta_size / nbytes / consolidate are introspection surface for
    # tests and capacity accounting; the engine compacts via rebuild.)

    def __init__(self) -> None:
        # Base: either packed (key << shift | slot) in _packed, or
        # parallel _base_keys/_base_slots when a pair does not fit one
        # int64. Dense offsets/bitmap only for compact key spaces.
        self._packed = _EMPTY
        self._shift = np.int64(0)
        self._base_keys = _EMPTY
        self._base_slots = _EMPTY
        self._offsets: np.ndarray | None = None
        self._offsets_hi = 0
        self._bitmap: np.ndarray | None = None
        self._run_keys = _EMPTY
        self._run_slots = _EMPTY
        self._tail_keys: list[np.ndarray] = []
        self._tail_slots: list[np.ndarray] = []
        self._tail_size = 0
        self._stale = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def add(self, keys: np.ndarray, slots: np.ndarray) -> None:
        """Append new live entries (O(1) amortized, tail-buffered)."""
        n = keys.shape[0]
        if n == 0:
            return
        self._tail_keys.append(keys)
        self._tail_slots.append(slots)
        self._tail_size += n
        if self._bitmap is not None:
            if bool((keys <= self._offsets_hi).all()):
                self._bitmap[keys] = True
            else:
                # A key beyond the bitmap's span cannot be prefiltered:
                # drop the bitmap until the next rebuild re-spans it.
                self._bitmap = None
        if self._tail_size > self._TAIL_MAX:
            self._merge_tail_into_run()

    def note_stale(self, count: int) -> None:
        """Record ``count`` entries going stale (lazy tombstones)."""
        self._stale += int(count)

    def rebuild(self, keys: np.ndarray, slots: np.ndarray) -> None:
        """Replace everything with the authoritative live entries."""
        self._set_base(keys, slots)
        self._run_keys = _EMPTY
        self._run_slots = _EMPTY
        self._tail_keys = []
        self._tail_slots = []
        self._tail_size = 0
        self._stale = 0

    def consolidate(self) -> None:
        """Merge run and tail into the sorted base (stales remain)."""
        if self._tail_size == 0 and self._run_keys.shape[0] == 0:
            return
        parts_k = [self._base_keys_view(), self._run_keys, *self._tail_keys]
        parts_s = [self._base_slots_view(), self._run_slots, *self._tail_slots]
        self._set_base(
            np.concatenate([p for p in parts_k if p.shape[0]] or [_EMPTY]),
            np.concatenate([p for p in parts_s if p.shape[0]] or [_EMPTY]),
        )
        self._run_keys = _EMPTY
        self._run_slots = _EMPTY
        self._tail_keys = []
        self._tail_slots = []
        self._tail_size = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, query_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Entries whose key is in ``query_keys``: (slots, query indices).

        ``query_keys`` must be sorted and unique (duplicate query keys
        would be answered inconsistently across tiers: the sorted tiers
        report every duplicate position, the tail probe only the
        leftmost); the second array maps each returned slot to the
        position in ``query_keys`` its key matched. The result may
        contain duplicate slots and stale slots -- callers deduplicate
        and re-check liveness against the estimator state.
        """
        q = query_keys.shape[0]
        if q == 0 or self.size == 0:
            return _EMPTY, _EMPTY
        query_idx = None
        if self._bitmap is not None:
            watched = self._bitmap[np.minimum(query_keys, self._offsets_hi)]
            if not watched.all():
                query_idx = np.flatnonzero(watched)
                query_keys = query_keys[query_idx]
                q = query_keys.shape[0]
                if q == 0:
                    return _EMPTY, _EMPTY
        kb = _kernel_backend()
        slot_parts = []
        query_parts = []
        self._lookup_base(query_keys, slot_parts, query_parts)
        if self._run_keys.shape[0]:
            span, idx = kb.sorted_range_lookup(self._run_keys, query_keys)
            if span.shape[0]:
                slot_parts.append(self._run_slots[span])
                query_parts.append(idx)
        if self._tail_size:
            tail_keys, tail_slots = self._tail_arrays()
            tail_idx, pos_hit = kb.tail_probe(query_keys, tail_keys)
            if tail_idx.shape[0]:
                slot_parts.append(tail_slots[tail_idx])
                query_parts.append(pos_hit)
        if not slot_parts:
            return _EMPTY, _EMPTY
        slots = (
            slot_parts[0]
            if len(slot_parts) == 1
            else np.concatenate(slot_parts)
        )
        idx = (
            query_parts[0]
            if len(query_parts) == 1
            else np.concatenate(query_parts)
        )
        if query_idx is not None:
            idx = query_idx[idx]
        return slots, idx

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def churn(self) -> int:
        """Additions plus stale entries: the compaction budget spent."""
        return self._run_keys.shape[0] + self._tail_size + self._stale

    @property
    def delta_size(self) -> int:
        """Entries not yet merged into the base (run + tail)."""
        return self._run_keys.shape[0] + self._tail_size

    @property
    def size(self) -> int:
        """Total entries held (live and stale, all tiers)."""
        return self._base_size() + self._run_keys.shape[0] + self._tail_size

    def nbytes(self) -> int:
        return int(
            self._packed.nbytes
            + self._base_keys.nbytes
            + self._base_slots.nbytes
            + (self._offsets.nbytes if self._offsets is not None else 0)
            + (self._bitmap.nbytes if self._bitmap is not None else 0)
            + self._run_keys.nbytes
            + self._run_slots.nbytes
            + sum(a.nbytes for a in self._tail_keys)
            + sum(a.nbytes for a in self._tail_slots)
        )

    def __repr__(self) -> str:
        return (
            f"WatchIndex(base={self._base_size()}, "
            f"run={self._run_keys.shape[0]}, tail={self._tail_size}, "
            f"stale={self._stale})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _lookup_base(
        self, query_keys: np.ndarray, slot_parts: list, query_parts: list
    ) -> None:
        kb = _kernel_backend()
        if self._offsets is not None:
            clipped = np.minimum(query_keys, self._offsets_hi)
            span, idx = kb.expand_ranges(
                self._offsets[clipped], self._offsets[clipped + 1]
            )
        elif self._packed.shape[0]:
            slots, idx = kb.packed_range_lookup(
                self._packed, self._shift, query_keys
            )
            if slots.shape[0]:
                slot_parts.append(slots)
                query_parts.append(idx)
            return
        elif self._base_keys.shape[0]:
            span, idx = kb.sorted_range_lookup(self._base_keys, query_keys)
        else:
            return
        if span.shape[0] == 0:
            return
        if self._packed.shape[0]:
            slot_parts.append(self._packed[span] & ((np.int64(1) << self._shift) - 1))
        else:
            slot_parts.append(self._base_slots[span])
        query_parts.append(idx)

    def _set_base(self, keys: np.ndarray, slots: np.ndarray) -> None:
        n = keys.shape[0]
        if n == 0:
            self._packed = _EMPTY
            self._base_keys = _EMPTY
            self._base_slots = _EMPTY
            self._offsets = None
            self._bitmap = None
            return
        key_max = int(keys.max())
        key_bits = key_max.bit_length()
        slot_bits = max(int(slots.max()).bit_length(), 1)
        if key_bits + slot_bits <= 63:
            # One sort over packed values, no gather, and range lookups
            # search the packed array directly.
            shift = np.int64(slot_bits)
            self._packed = _kernel_backend().pack_sort_pairs(keys, slots, shift)
            self._shift = shift
            self._base_keys = _EMPTY
            self._base_slots = _EMPTY
        else:
            order = np.argsort(keys, kind="stable")
            self._packed = _EMPTY
            self._base_keys = keys[order]
            self._base_slots = slots[order]
        if key_max <= max(self._DENSE_OFFSETS_MIN, self._DENSE_OFFSETS_FACTOR * n):
            # Compact key space (vertex watches): dense CSR offsets turn
            # a range lookup into two gathers, and the bitmap prefilters
            # query keys to watched ones before any per-key work.
            counts = np.bincount(keys, minlength=key_max + 1)
            offsets = np.zeros(key_max + 3, dtype=np.int64)
            np.cumsum(counts, out=offsets[1 : key_max + 2])
            offsets[key_max + 2] = n
            self._offsets = offsets
            self._offsets_hi = key_max + 1
            bitmap = np.zeros(key_max + 2, dtype=bool)
            bitmap[:-1] = counts > 0
            self._bitmap = bitmap
        else:
            self._offsets = None
            self._bitmap = None

    def _base_size(self) -> int:
        return self._packed.shape[0] or self._base_keys.shape[0]

    def _base_keys_view(self) -> np.ndarray:
        if self._packed.shape[0]:
            return self._packed >> self._shift
        return self._base_keys

    def _base_slots_view(self) -> np.ndarray:
        if self._packed.shape[0]:
            return self._packed & ((np.int64(1) << self._shift) - 1)
        return self._base_slots

    def _merge_tail_into_run(self) -> None:
        tail_keys, tail_slots = self._tail_arrays()
        if self._run_keys.shape[0]:
            keys = np.concatenate([self._run_keys, tail_keys])
            slots = np.concatenate([self._run_slots, tail_slots])
        else:
            keys, slots = tail_keys, tail_slots
        self._run_keys, self._run_slots = _sort_pairs(keys, slots)
        self._tail_keys = []
        self._tail_slots = []
        self._tail_size = 0

    def _tail_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if len(self._tail_keys) > 1:
            self._tail_keys = [np.concatenate(self._tail_keys)]
            self._tail_slots = [np.concatenate(self._tail_slots)]
        return self._tail_keys[0], self._tail_slots[0]
