"""Counting and sampling ``K_l`` for any constant ``l >= 3`` (Theorem 5.6/5.7).

The paper gives full details only for ``l in {3, 4}`` and states the
general bounds ("we omit details"). This module implements the natural
generalization, documented in DESIGN.md section 6:

**Discovery patterns.** Stream a clique's edges in arrival order and
record how each edge grows the set of *known* vertices: the first edge
discovers 2 vertices; each later edge discovers 2 (vertex-disjoint from
everything known -- a "pair" step), 1 (adjacent -- a "single" step), or
0 (an *interior* edge within known vertices). The sequence of 2s and 1s
is the clique's pattern; e.g. triangles are ``(2, 1)``, Type I 4-cliques
are ``(2, 1, 1)`` and Type II are ``(2, 2)``. Every clique has exactly
one pattern, so ``tau_l = sum over patterns of tau_pattern``.

**Per-pattern sampler.** Level ``j`` of the sampler holds an edge
``g_j``:

- pair levels run an independent uniform reservoir over the whole
  stream (probability ``1/m`` each, as in Lemma 5.2);
- single levels run a reservoir over ``N_j`` -- edges adjacent to (but
  not within) the known vertex set of earlier levels, arriving after
  ``g_{j-1}`` -- with a counter ``c_j = |N_j|`` (as in Lemma 5.1);
- interior edges are captured when they arrive inside the known vertex
  set; replacing level ``j`` evicts all capture/locale state at levels
  ``>= j`` (the downstream-reset discipline of Algorithm 1).

A pattern-``p`` sampler produces a specific clique with probability
``1 / (m^alpha * prod_j c_j)`` where ``alpha`` is the number of pair
levels, so ``X = m^alpha * prod_j c_j`` on completion is unbiased for
``tau_pattern``. The number of single levels is ``l - 2 alpha``, and
``c_j <= (l - 1) * Delta``, recovering the paper's space parameter
``eta_l = max_alpha m^alpha Delta^(l - 2 alpha)``.

Unbiasedness of every pattern sampler is validated empirically by
Monte-Carlo tests against exact clique counts, and the ``(2, 1)``
pattern is cross-checked against Algorithm 1 and the ``(2, 1, 1)`` /
``(2, 2)`` patterns against the dedicated Algorithm 4 implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import InsufficientSampleError, InvalidParameterError
from ..graph.edge import Edge, canonical_edge
from ..rng import RandomSource, spawn_sources

__all__ = ["CliqueCounter", "CliqueSampler", "PatternSampler", "clique_patterns"]

Pattern = tuple[int, ...]


def clique_patterns(size: int) -> list[Pattern]:
    """All discovery patterns for ``K_size``: compositions of ``size``
    into parts of 1 and 2 whose first part is 2.

    >>> clique_patterns(3)
    [(2, 1)]
    >>> clique_patterns(4)
    [(2, 1, 1), (2, 2)]
    """
    if size < 3:
        raise InvalidParameterError(f"clique size must be >= 3, got {size}")

    def compositions(remaining: int) -> list[tuple[int, ...]]:
        if remaining == 0:
            return [()]
        result = [(1,) + rest for rest in compositions(remaining - 1)]
        if remaining >= 2:
            result.extend((2,) + rest for rest in compositions(remaining - 2))
        return result

    return [(2,) + rest for rest in compositions(size - 2)]


class PatternSampler:
    """One multi-level neighborhood-sampling estimator for one pattern."""

    def __init__(
        self,
        pattern: Pattern,
        seed: int | None = None,
        *,
        rng: RandomSource | None = None,
    ) -> None:
        if not pattern or pattern[0] != 2 or any(s not in (1, 2) for s in pattern):
            raise InvalidParameterError(
                f"pattern must start with 2 and contain only 1s and 2s, got {pattern}"
            )
        self.pattern = pattern
        self.size = sum(pattern)
        self._rng = rng if rng is not None else RandomSource(seed)
        self.edges_seen = 0
        k = len(pattern)
        self._g: list[Edge | None] = [None] * k
        self._pos = [0] * k
        self._c = [0] * k  # used by single levels only
        self._captured: dict[Edge, int] = {}  # interior edge -> tag level

    # -- level bookkeeping ---------------------------------------------
    def _reset_below(self, level: int) -> None:
        """Evict state invalidated by a change at ``level``."""
        for j in range(level + 1, len(self.pattern)):
            if self.pattern[j] == 1:
                self._g[j] = None
                self._pos[j] = 0
                self._c[j] = 0
        self._captured = {
            e: tag for e, tag in self._captured.items() if tag < level
        }

    def _known_vertices(self, upto: int) -> frozenset[int] | None:
        """Vertices of levels ``0..upto`` if that prefix is valid, else None.

        Valid means: all levels set, positions strictly increasing, pair
        levels vertex-disjoint from earlier vertices, single levels
        adding exactly one vertex.
        """
        known: set[int] = set()
        last_pos = 0
        for j in range(upto + 1):
            g = self._g[j]
            if g is None or self._pos[j] <= last_pos:
                return None
            last_pos = self._pos[j]
            new = set(g) - known
            if self.pattern[j] == 2 and len(new) != 2:
                return None
            if self.pattern[j] == 1 and len(new) != 1:
                return None
            known |= new
        return frozenset(known)

    # -- streaming -------------------------------------------------------
    def update(self, edge: tuple[int, int]) -> None:
        e = canonical_edge(*edge)
        self.edges_seen += 1
        i = self.edges_seen
        # Pair levels: independent uniform reservoirs over the stream.
        lowest_changed: int | None = None
        for j, step in enumerate(self.pattern):
            if step == 2 and self._rng.coin(1.0 / i):
                self._g[j] = e
                self._pos[j] = i
                if lowest_changed is None:
                    lowest_changed = j
        if lowest_changed is not None:
            self._reset_below(lowest_changed)
            return
        self._cascade_single_levels(e, i)

    def _cascade_single_levels(self, e: Edge, i: int) -> None:
        """Walk single levels top-down; count, sample, or capture ``e``."""
        for j, step in enumerate(self.pattern):
            if step != 1:
                continue
            known = self._known_vertices(j - 1)
            if known is None:
                return  # prefix incomplete/invalid; lower levels even more so
            inside = e[0] in known and e[1] in known
            if inside:
                self._capture(e, known)
                return
            adjacent = e[0] in known or e[1] in known
            if not adjacent:
                continue  # may interact with a deeper level's larger set
            self._c[j] += 1
            if self._rng.coin(1.0 / self._c[j]):
                self._g[j] = e
                self._pos[j] = i
                self._reset_below(j)
                return
        # Fell through every level: may be an interior edge of the full set.
        known = self._known_vertices(len(self.pattern) - 1)
        if known is not None and e[0] in known and e[1] in known:
            self._capture(e, known)

    def _capture(self, e: Edge, known: frozenset[int]) -> None:
        """Record an interior edge, tagged by its newest endpoint's level."""
        tag = 0
        cumulative: set[int] = set()
        for j, g in enumerate(self._g):
            if g is None:
                break
            new = set(g) - cumulative
            cumulative |= new
            if e[0] in new or e[1] in new:
                tag = j
        self._captured[e] = tag

    # -- checkpoint/ship surface -----------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of all levels plus the rng state."""
        return {
            "pattern": list(self.pattern),
            "edges_seen": self.edges_seen,
            "g": [None if g is None else [g[0], g[1]] for g in self._g],
            "pos": list(self._pos),
            "c": list(self._c),
            "captured": [
                [e[0], e[1], tag] for e, tag in self._captured.items()
            ],
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        pattern = tuple(int(s) for s in state["pattern"])
        if not pattern or pattern[0] != 2 or any(s not in (1, 2) for s in pattern):
            raise InvalidParameterError(f"invalid pattern in state: {pattern}")
        self.pattern = pattern
        self.size = sum(pattern)
        self.edges_seen = int(state["edges_seen"])
        self._g = [None if g is None else (int(g[0]), int(g[1])) for g in state["g"]]
        self._pos = [int(p) for p in state["pos"]]
        self._c = [int(c) for c in state["c"]]
        self._captured = {
            (int(u), int(v)): int(tag) for u, v, tag in state["captured"]
        }
        if state.get("rng") is not None:
            self._rng.setstate(state["rng"])

    # -- queries ---------------------------------------------------------
    def held_clique(self) -> tuple[int, ...] | None:
        """The sampled ``K_size``'s vertices, or ``None`` if incomplete."""
        known = self._known_vertices(len(self.pattern) - 1)
        if known is None or len(known) != self.size:
            return None
        needed = self.size * (self.size - 1) // 2 - len(self.pattern)
        if len(self._captured) != needed:
            return None
        return tuple(sorted(known))

    def weight(self) -> float:
        """``m^alpha * prod c_j`` -- the inverse sampling probability."""
        alpha = sum(1 for s in self.pattern if s == 2)
        value = float(self.edges_seen) ** alpha
        for j, step in enumerate(self.pattern):
            if step == 1:
                value *= self._c[j]
        return value

    def estimate(self) -> float:
        """Unbiased estimate of this pattern's clique count."""
        if self.held_clique() is None:
            return 0.0
        return self.weight()


class CliqueCounter:
    """(eps, delta)-approximate ``K_size`` counting (Theorem 5.6).

    Runs ``num_estimators`` :class:`PatternSampler` s for *every*
    discovery pattern of ``K_size`` and sums the per-pattern pool means.
    For ``size = 3`` this is exactly triangle counting; for ``size = 4``
    it reproduces Algorithm 4 + the Type II sampler.
    """

    def __init__(
        self, size: int, num_estimators: int, *, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        self.size = size
        self.patterns = clique_patterns(size)
        sources = spawn_sources(seed, len(self.patterns) * num_estimators)
        self._pools: dict[Pattern, list[PatternSampler]] = {}
        k = 0
        for pattern in self.patterns:
            pool = []
            for _ in range(num_estimators):
                pool.append(PatternSampler(pattern, rng=sources[k]))
                k += 1
            self._pools[pattern] = pool
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(next(iter(self._pools.values())))

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge with every sampler of every pattern."""
        for pool in self._pools.values():
            for sampler in pool:
                sampler.update(edge)
        self.edges_seen += 1

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def state_dict(self) -> dict:
        """Snapshot: one entry per pattern pool, in pattern order."""
        return {
            "size": self.size,
            "edges_seen": self.edges_seen,
            "pools": [
                {
                    "pattern": list(pattern),
                    "samplers": [s.state_dict() for s in self._pools[pattern]],
                }
                for pattern in self.patterns
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Adopts the snapshot's clique size and pool sizes wholesale.
        """
        size = int(state["size"])
        patterns = clique_patterns(size)
        pools_state = state["pools"]
        if [tuple(p["pattern"]) for p in pools_state] != patterns:
            raise InvalidParameterError(
                f"state pools do not match the patterns of K_{size}"
            )
        self.size = size
        self.patterns = patterns
        self._pools = {}
        for entry in pools_state:
            pattern = tuple(entry["pattern"])
            pool = []
            for sampler_state in entry["samplers"]:
                sampler = PatternSampler(pattern)
                sampler.load_state_dict(sampler_state)
                pool.append(sampler)
            self._pools[pattern] = pool
        self.edges_seen = int(state["edges_seen"])

    def merge(self, other: "CliqueCounter") -> None:
        """Absorb ``other``'s per-pattern pools (same stream observed)."""
        if other.size != self.size:
            raise InvalidParameterError(
                f"cannot merge K_{other.size} into K_{self.size} counter"
            )
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} edges vs {self.edges_seen})"
            )
        for pattern in self.patterns:
            self._pools[pattern].extend(other._pools[pattern])

    def pattern_estimate(self, pattern: Pattern) -> float:
        """Mean estimate of one pattern's pool."""
        pool = self._pools[pattern]
        return sum(s.estimate() for s in pool) / len(pool)

    def estimate(self) -> float:
        """``tau_size' = sum over patterns of the pool means``."""
        return sum(self.pattern_estimate(p) for p in self.patterns)

    def held_cliques(self) -> list[tuple[int, ...]]:
        """All complete cliques currently held across every pool."""
        held = []
        for pool in self._pools.values():
            for sampler in pool:
                clique = sampler.held_clique()
                if clique is not None:
                    held.append(clique)
        return held


class CliqueSampler:
    """Near-uniform ``K_size`` sampling (Theorem 5.7).

    Wraps a :class:`CliqueCounter` and rejection-normalizes each held
    clique: a pattern-``p`` clique held with probability
    ``1/(m^alpha prod c_j)`` is released with probability
    ``(m^alpha prod c_j) / (m^amax ((size-1) Delta)^(size-2))``, making
    every released clique equally likely regardless of pattern
    (the ``l``-clique analogue of Lemma 3.7's ``c / 2 Delta`` trick).

    ``max_degree`` must be a valid upper bound on ``Delta``; the release
    probabilities are clamped defensively if it is not.
    """

    def __init__(
        self,
        size: int,
        num_estimators: int,
        *,
        max_degree: int,
        seed: int | None = None,
    ) -> None:
        if max_degree < 1:
            raise InvalidParameterError(f"max_degree must be >= 1, got {max_degree}")
        self._counter = CliqueCounter(size, num_estimators, seed=seed)
        self._rng = RandomSource(None if seed is None else seed + 1)
        self._max_degree = max_degree

    @property
    def edges_seen(self) -> int:
        return self._counter.edges_seen

    def update(self, edge: tuple[int, int]) -> None:
        self._counter.update(edge)

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        self._counter.update_batch(batch)

    def _released(self) -> list[tuple[int, ...]]:
        size = self._counter.size
        m = float(self._counter.edges_seen)
        alpha_max = size // 2
        ceiling = (m**alpha_max) * ((size - 1) * self._max_degree) ** (size - 2)
        released = []
        for pool in self._counter._pools.values():
            for sampler in pool:
                if sampler.held_clique() is None:
                    continue
                accept = min(1.0, sampler.weight() / ceiling)
                if self._rng.coin(accept):
                    released.append(sampler.held_clique())
        return [c for c in released if c is not None]

    def sample(self, k: int = 1) -> list[tuple[int, ...]]:
        """``k`` uniformly sampled ``K_size`` cliques (with replacement).

        Raises
        ------
        InsufficientSampleError
            If fewer than ``k`` samplers released a clique; enlarge the
            pool per Theorem 5.7's ``r ~ eta_l / tau_l log(1/delta)``.
        """
        released = self._released()
        if len(released) < k:
            raise InsufficientSampleError(
                f"only {len(released)} samplers released a clique; need {k}"
            )
        picked = [
            released[self._rng.rand_int(0, len(released) - 1)] for _ in range(k)
        ]
        return picked
