"""Bulk processing of neighborhood-sampling estimators (Section 3.3).

``bulkTC`` advances all ``r`` estimators over a batch ``B`` of ``w``
newly-arrived edges in ``O(r + w)`` time and space (Theorem 3.5), as if
the edges had been played one at a time:

- **Step 1** resamples level-1 edges: keep the current ``r1`` with
  probability ``m / (m + w)``, otherwise take a uniform edge of ``B``.
- **Step 2a** runs the degree-keeping edge iterator (``edgeIter``,
  Algorithm 2) over ``B`` once, using the inverted index ``L`` (batch
  position -> estimators that just took that edge as ``r1``) to record
  ``beta(r1)(x)``, ``beta(r1)(y)`` -- the endpoint degrees at the moment
  ``r1`` arrived -- and obtains the final batch degrees ``degB``.
- **Step 2b** sizes each estimator's candidate set via Observation 3.6
  (``c+ = (degB(x) - beta(x)) + (degB(y) - beta(y))``), draws
  ``phi = randInt(1, c- + c+)`` and translates it into either "keep
  ``r2``" or a subscription to a specific ``EVENTB (vertex, degree)``
  (Algorithm 3).
- **Step 2c** replays ``edgeIter``; the subscription table ``P`` maps
  each fired ``EVENTB`` to the estimators that selected that edge as
  their new ``r2``.
- **Step 3** uses the closing-edge table ``Q`` to detect edges that
  close the wedge ``r1 r2`` after ``r2``'s stream position.

Following the paper's own implementation note (Section 4), Steps 2c and
3 are fused into a single pass over the batch; positions stored with
every edge make the "comes after ``r2``" check O(1).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graph.edge import Edge, canonical_edge, third_vertices
from ..rng import RandomSource
from ..streaming.batch import EdgeBatch
from ..streaming.registry import register_engine

__all__ = ["BulkEstimatorState", "BulkTriangleCounter"]


class BulkEstimatorState:
    """State of one estimator inside the bulk engine.

    Mirrors the per-edge state of Algorithm 1 plus stream positions
    (1-based), which Step 3 needs for the "closing edge arrives after
    ``r2``" check.
    """

    __slots__ = ("r1", "r1_pos", "r2", "r2_pos", "c", "t", "_beta_x", "_beta_y")

    def __init__(self) -> None:
        self.r1: Edge | None = None
        self.r1_pos: int = 0
        self.r2: Edge | None = None
        self.r2_pos: int = 0
        self.c: int = 0
        self.t: tuple[int, int, int] | None = None
        self._beta_x: int = 0
        self._beta_y: int = 0

    def closing_edge(self) -> Edge | None:
        """The edge that would close the wedge ``r1 r2``, if the wedge exists."""
        if self.r1 is None or self.r2 is None:
            return None
        return third_vertices(self.r1, self.r2)

    def triangle_from_closing(self) -> tuple[int, int, int]:
        """Vertices of the triangle closed over the current wedge."""
        assert self.r1 is not None and self.r2 is not None
        closing = self.closing_edge()
        assert closing is not None
        a, b = closing
        shared = self.r1[0] if self.r1[0] not in (a, b) else self.r1[1]
        return tuple(sorted((a, b, shared)))  # type: ignore[return-value]


@register_engine("bulk")
class BulkTriangleCounter:
    """``r`` neighborhood-sampling estimators with batch updates.

    This is the faithful, table-driven implementation of Section 3.3:
    pure Python, explicit ``L`` / ``P`` / ``Q`` tables, one combined
    ``edgeIter`` replay. Distributionally equivalent to feeding the
    same edges one at a time to ``r`` copies of
    :class:`~repro.core.neighborhood_sampling.NeighborhoodSampler`.

    Parameters
    ----------
    num_estimators:
        The number of parallel estimators ``r``.
    seed:
        Seed for the engine's random source.
    """

    #: This engine consumes the batch's tuple view only; a pipeline
    #: fan-out need not build the shared array index on its account.
    uses_batch_context = False

    def __init__(self, num_estimators: int, *, seed: int | None = None) -> None:
        if num_estimators < 1:
            raise ValueError(f"num_estimators must be >= 1, got {num_estimators}")
        self._rng = RandomSource(seed)
        self._states = [BulkEstimatorState() for _ in range(num_estimators)]
        self.edges_seen = 0

    # ------------------------------------------------------------------
    # public protocol shared by all engines
    # ------------------------------------------------------------------
    @property
    def num_estimators(self) -> int:
        return len(self._states)

    def update(self, edge: tuple[int, int]) -> None:
        """Process one edge (a batch of size one)."""
        self.update_batch([canonical_edge(*edge)])

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        """Process a batch of ``w`` edges in O(r + w) time (Theorem 3.5)."""
        if isinstance(batch, EdgeBatch):
            # Already canonical; the tuple list is cached on the batch
            # and shared with every other per-edge consumer.
            self._update_canonical(batch.tuples())
        else:
            self._update_canonical([canonical_edge(*e) for e in batch])

    def update_prepared(self, batch: EdgeBatch) -> None:
        """Columnar fast path: reuse the batch's cached canonical tuples."""
        self._update_canonical(batch.tuples())

    def _update_canonical(self, edges: list[Edge]) -> None:
        if not edges:
            return
        table_l = self._step1_resample_level1(edges)
        deg_b = self._step2a_betas(edges, table_l)
        table_p = self._step2b_choose_level2(edges, deg_b)
        self._step2c_and_3_replay(edges, table_p)
        self.edges_seen += len(edges)

    def estimates(self) -> list[float]:
        """Per-estimator unbiased triangle estimates ``tau~`` (Lemma 3.2)."""
        m = float(self.edges_seen)
        return [s.c * m if s.t is not None else 0.0 for s in self._states]

    def estimate(self) -> float:
        """Mean of the per-estimator estimates (Theorem 3.3 aggregation)."""
        values = self.estimates()
        return sum(values) / len(values)

    def wedge_estimates(self) -> list[float]:
        """Per-estimator unbiased wedge estimates ``m * c`` (Lemma 3.10)."""
        m = float(self.edges_seen)
        return [s.c * m for s in self._states]

    def states(self) -> list[BulkEstimatorState]:
        """The raw estimator states (read-only by convention)."""
        return self._states

    # ------------------------------------------------------------------
    # Step 1: level-1 resampling
    # ------------------------------------------------------------------
    def _step1_resample_level1(self, batch: Sequence[Edge]) -> dict[int, list[int]]:
        """Reservoir-resample ``r1`` for every estimator over ``old + B``.

        Also builds and stores the inverted index ``L`` (batch position
        -> estimator indices) used by Step 2a.
        """
        m, w = self.edges_seen, len(batch)
        table_l: dict[int, list[int]] = {}
        for idx, state in enumerate(self._states):
            draw = self._rng.rand_int(1, m + w)
            if draw <= m:
                continue  # keep the current level-1 edge
            j = draw - m - 1  # 0-based batch position of the new r1
            state.r1 = batch[j]
            state.r1_pos = m + j + 1
            state.r2 = None
            state.r2_pos = 0
            state.c = 0
            state.t = None
            table_l.setdefault(j, []).append(idx)
        return table_l

    # ------------------------------------------------------------------
    # Step 2a: edgeIter pass recording beta values (Algorithm 2, EVENTA)
    # ------------------------------------------------------------------
    def _step2a_betas(
        self, batch: Sequence[Edge], table_l: dict[int, list[int]]
    ) -> dict[int, int]:
        """One ``edgeIter`` pass: record ``beta`` values, return ``degB``.

        ``beta(r1)(x)`` is the batch-degree of endpoint ``x`` at the
        moment ``r1`` was added (0 for estimators whose ``r1`` predates
        the batch) -- Observation 3.6.
        """
        for state in self._states:
            state._beta_x = 0
            state._beta_y = 0
        deg: dict[int, int] = {}
        for j, (x, y) in enumerate(batch):
            deg[x] = deg.get(x, 0) + 1
            deg[y] = deg.get(y, 0) + 1
            # EVENTA(j, {x, y}, deg): estimators in L[j] snapshot their betas.
            for idx in table_l.get(j, ()):
                state = self._states[idx]
                state._beta_x = deg[x]
                state._beta_y = deg[y]
        return deg

    # ------------------------------------------------------------------
    # Step 2b: translate phi into keep / EVENTB subscription (Algorithm 3)
    # ------------------------------------------------------------------
    def _step2b_choose_level2(
        self, batch: Sequence[Edge], deg_b: dict[int, int]
    ) -> dict[tuple[int, int], list[int]]:
        """Choose each estimator's level-2 action; build table ``P``.

        Returns ``P``: (vertex, degree) -> estimators subscribing to the
        ``EVENTB`` that fires when that vertex reaches that batch degree.
        """
        table_p: dict[tuple[int, int], list[int]] = {}
        for idx, state in enumerate(self._states):
            if state.r1 is None:
                continue
            x, y = state.r1
            a = deg_b.get(x, 0) - state._beta_x
            b = deg_b.get(y, 0) - state._beta_y
            c_minus, c_plus = state.c, a + b
            if c_plus == 0:
                continue  # no new candidates; r2 (and t) unchanged
            phi = self._rng.rand_int(1, c_minus + c_plus)
            state.c = c_minus + c_plus
            if phi <= c_minus:
                continue  # keep existing r2
            if phi <= c_minus + a:
                key = (x, state._beta_x + (phi - c_minus))
            else:
                key = (y, state._beta_y + (phi - c_minus - a))
            state.r2 = None  # will be filled when the event fires
            state.r2_pos = 0
            state.t = None
            table_p.setdefault(key, []).append(idx)
        return table_p

    # ------------------------------------------------------------------
    # Steps 2c + 3 fused: replay edgeIter, assign r2, close wedges
    # ------------------------------------------------------------------
    def _step2c_and_3_replay(
        self, batch: Sequence[Edge], table_p: dict[tuple[int, int], list[int]]
    ) -> None:
        """Second ``edgeIter`` pass: fire EVENTBs (table ``P``) and close
        wedges (table ``Q``) in one sweep, per the paper's optimization."""
        # Pre-populate Q with estimators that keep an open wedge from
        # before this batch: their closing edge may arrive anywhere in B.
        table_q: dict[Edge, list[int]] = {}
        for idx, state in enumerate(self._states):
            if state.t is None and state.r2 is not None:
                closing = state.closing_edge()
                if closing is not None:
                    table_q.setdefault(closing, []).append(idx)

        m = self.edges_seen
        deg: dict[int, int] = {}
        for j, edge in enumerate(batch):
            x, y = edge
            pos = m + j + 1
            # EVENTB(j, {x,y}, x, deg[x]) and (…, y, deg[y]): new r2 assignments.
            for v in (x, y):
                deg[v] = deg.get(v, 0) + 1
                for idx in table_p.get((v, deg[v]), ()):
                    state = self._states[idx]
                    state.r2 = edge
                    state.r2_pos = pos
                    closing = state.closing_edge()
                    if closing is not None:
                        table_q.setdefault(closing, []).append(idx)
            # Step 3: does this edge close any subscribed wedge?
            for idx in table_q.get(edge, ()):
                state = self._states[idx]
                if state.t is None and state.r2 is not None and state.r2_pos < pos:
                    if state.closing_edge() == edge:
                        state.t = state.triangle_from_closing()
