"""Wedge counting and the transitivity coefficient (Section 3.5).

The transitivity coefficient is ``kappa(G) = 3 tau(G) / zeta(G)`` where
``zeta(G)`` counts connected triples (wedges). Claim 3.9 shows
``zeta(G) = sum_e c(e)``, so the very counter ``c`` that neighborhood
sampling already maintains yields an unbiased wedge estimate
``zeta~ = m * c`` (Lemma 3.10).

Following Theorem 3.12, :class:`TransitivityEstimator` runs the triangle
counting algorithm and the wedge estimator simultaneously on independent
estimator pools and returns ``kappa' = 3 tau' / zeta'``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import EmptyStreamError, InvalidParameterError
from .triangle_count import TriangleCounter, aggregate_mean
from .vectorized import VectorizedTriangleCounter

__all__ = ["WedgeCounter", "TransitivityEstimator"]


class WedgeCounter:
    """(eps, delta)-approximate wedge counting (Lemma 3.11).

    Runs ``r`` neighborhood-sampling states and averages
    ``zeta~ = m * c``. Only the level-1 edge and its neighborhood
    counter matter for this estimate; the engine's level-2 machinery
    rides along at no asymptotic cost.
    """

    def __init__(self, num_estimators: int, *, seed: int | None = None) -> None:
        self._engine = VectorizedTriangleCounter(num_estimators, seed=seed)

    @property
    def num_estimators(self) -> int:
        return self._engine.num_estimators

    @property
    def edges_seen(self) -> int:
        return self._engine.edges_seen

    def update(self, edge: tuple[int, int]) -> None:
        self._engine.update(edge)

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        self._engine.update_batch(batch)

    def update_prepared(self, batch) -> None:
        """Columnar fast path (shared prepared ``EdgeBatch``)."""
        self._engine.update_prepared(batch)

    def estimates(self) -> np.ndarray:
        """Per-estimator unbiased wedge estimates ``m * c``."""
        return self._engine.wedge_estimates()

    def estimate(self) -> float:
        """The averaged wedge-count estimate ``zeta'``."""
        return aggregate_mean(self.estimates())

    def state_dict(self) -> dict:
        """The engine's snapshot (checkpoint/ship surface)."""
        return self._engine.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore an engine snapshot in place."""
        self._engine.load_state_dict(state)

    def merge(self, other: "WedgeCounter") -> None:
        """Absorb ``other``'s estimator pool (same stream observed)."""
        self._engine.merge(other._engine)


class TransitivityEstimator:
    """(eps, delta)-approximate transitivity coefficient (Theorem 3.12).

    Parameters
    ----------
    num_triangle_estimators:
        Pool size for the triangle count ``tau'`` (Theorem 3.3 sizing
        with accuracy ``eps/3, delta/2`` per the paper's composition).
    num_wedge_estimators:
        Pool size for the wedge count ``zeta'`` (Lemma 3.11 sizing). If
        omitted, uses the triangle pool size. Wedges are usually far
        more plentiful than triangles, so a much smaller pool suffices.
    seed:
        Seed for reproducibility; the two pools draw independent
        sub-seeds.
    """

    def __init__(
        self,
        num_triangle_estimators: int,
        num_wedge_estimators: int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if num_triangle_estimators < 1:
            raise InvalidParameterError(
                f"num_triangle_estimators must be >= 1, got {num_triangle_estimators}"
            )
        wedge_r = num_wedge_estimators or num_triangle_estimators
        tau_seed = None if seed is None else seed * 2
        zeta_seed = None if seed is None else seed * 2 + 1
        self._triangles = TriangleCounter(num_triangle_estimators, seed=tau_seed)
        self._wedges = WedgeCounter(wedge_r, seed=zeta_seed)

    @property
    def edges_seen(self) -> int:
        return self._triangles.edges_seen

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge with both pools."""
        self._triangles.update(edge)
        self._wedges.update(edge)

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        """Observe a batch of stream edges with both pools."""
        self._triangles.update_batch(batch)
        self._wedges.update_batch(batch)

    def update_prepared(self, batch) -> None:
        """Columnar fast path: both pools share the prepared batch."""
        self._triangles.update_prepared(batch)
        self._wedges.update_prepared(batch)

    def state_dict(self) -> dict:
        """Both pools' snapshots (checkpoint/ship surface)."""
        return {
            "triangles": self._triangles.state_dict(),
            "wedges": self._wedges.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        if "triangles" not in state or "wedges" not in state:
            raise InvalidParameterError(
                "state dict missing fields: need 'triangles' and 'wedges'"
            )
        self._triangles.load_state_dict(state["triangles"])
        self._wedges.load_state_dict(state["wedges"])

    def merge(self, other: "TransitivityEstimator") -> None:
        """Absorb ``other``'s two pools (same stream observed)."""
        self._triangles.merge(other._triangles)
        self._wedges.merge(other._wedges)

    def triangle_estimate(self) -> float:
        """The pool's triangle count estimate ``tau'``."""
        return self._triangles.estimate()

    def wedge_estimate(self) -> float:
        """The pool's wedge count estimate ``zeta'``."""
        return self._wedges.estimate()

    def estimate(self) -> float:
        """``kappa' = 3 tau' / zeta'``.

        Raises
        ------
        EmptyStreamError
            If the wedge estimate is zero (the coefficient is undefined
            on graphs without wedges).
        """
        zeta = self.wedge_estimate()
        if zeta <= 0.0:
            raise EmptyStreamError(
                "transitivity undefined: wedge estimate is zero"
            )
        return 3.0 * self.triangle_estimate() / zeta
