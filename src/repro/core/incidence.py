"""Triangle counting in the *incidence stream* model (Sections 1.2, 3.6).

In an incidence stream all edges incident to a vertex arrive together
(each edge therefore appears twice, once per endpoint). The paper
contrasts this easier model with its adjacency model: incidence streams
admit triangle counting in ``O(s(eps, delta) * (1 + T2/tau))`` space
[Buriol et al.], while Theorem 3.13 proves that bound *impossible* for
adjacency streams. This module implements the incidence-model algorithm
so the separation is executable, not just cited:

- every vertex arrival with degree ``d`` reveals ``C(d, 2)`` new wedges
  centered there; a weighted reservoir keeps one wedge uniform over all
  ``zeta(G)`` wedges seen;
- a held wedge centered at ``v`` with outer endpoints ``a, b`` is
  *closed* if the edge ``{a, b}`` shows up at a later vertex's list.
  For each triangle exactly two of its three wedge centers precede the
  closing edge's later appearance (all centers except the triangle's
  last-arriving vertex), so ``E[1_closed] = 2 tau / zeta`` and
  ``zeta/2 * 1_closed`` is unbiased.

Each estimator stores O(1) words; ``r ~ s(eps, delta) * zeta / tau =
s(eps, delta) * (3 + T2/tau)`` estimators give an (eps, delta)-
approximation -- the bound the adjacency model cannot have.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge
from ..graph.static_graph import StaticGraph
from ..rng import RandomSource, spawn_sources

__all__ = [
    "IncidenceStream",
    "IncidenceWedgeSampler",
    "IncidenceTriangleCounter",
    "incidence_estimators_needed",
]


def incidence_estimators_needed(
    eps: float, delta: float, *, wedges: int, triangles: int
) -> int:
    """Sufficient estimators in the incidence model.

    A held wedge closes with probability ``p = 2 tau / zeta``; a
    Chernoff bound on the Bernoulli average gives
    ``r >= (3 / eps^2) * (zeta / (2 tau)) * log(2 / delta)`` -- i.e.
    ``O(s(eps, delta) * (1 + T2/tau))`` since ``zeta = 3 tau + T2``.
    """
    if not 0.0 < eps <= 1.0 or not 0.0 < delta < 1.0:
        raise InvalidParameterError("need 0 < eps <= 1 and 0 < delta < 1")
    if wedges <= 0 or triangles <= 0:
        raise InvalidParameterError("wedges and triangles must be positive")
    return math.ceil(
        3.0 / (eps * eps) * (wedges / (2.0 * triangles)) * math.log(2.0 / delta)
    )


class IncidenceStream:
    """A graph presented vertex-by-vertex: ``(v, neighbors)`` items.

    Each edge appears exactly twice across the stream, once in each
    endpoint's list, as the incidence model requires.
    """

    def __init__(self, items: Sequence[tuple[int, tuple[int, ...]]]) -> None:
        self._items = list(items)

    @classmethod
    def from_graph(
        cls,
        graph: StaticGraph | Iterable[tuple[int, int]],
        *,
        order: str = "sorted",
        seed: int | None = None,
    ) -> "IncidenceStream":
        """Group a graph's edges by vertex in the chosen vertex order."""
        if not isinstance(graph, StaticGraph):
            graph = StaticGraph(graph, strict=False)
        vertices = sorted(graph.vertices())
        if order == "random":
            RandomSource(seed).shuffle(vertices)
        elif order != "sorted":
            raise InvalidParameterError(f"unknown order {order!r}")
        items = [(v, tuple(sorted(graph.neighbors(v)))) for v in vertices]
        return cls(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        return iter(self._items)


def _unrank_pair(k: int, d: int) -> tuple[int, int]:
    """The k-th pair (i < j) of ``range(d)`` in lexicographic order."""
    i = 0
    remaining = k
    while remaining >= d - 1 - i:
        remaining -= d - 1 - i
        i += 1
    return i, i + 1 + remaining


class IncidenceWedgeSampler:
    """One incidence-model estimator: uniform wedge + closure bit."""

    __slots__ = ("_rng", "total_wedges", "center", "closing", "closed")

    def __init__(self, seed: int | None = None, *, rng: RandomSource | None = None) -> None:
        self._rng = rng if rng is not None else RandomSource(seed)
        self.total_wedges = 0
        self.center: int | None = None
        self.closing: Edge | None = None
        self.closed = False

    def observe(self, vertex: int, neighbors: tuple[int, ...]) -> None:
        """Process one vertex arrival (its full edge list)."""
        # 1. Closure check against the wedge held *before* this vertex:
        #    the closing edge {a, b} appears in a's and b's lists.
        if self.closing is not None and not self.closed and vertex in self.closing:
            other = self.closing[0] if self.closing[1] == vertex else self.closing[1]
            if other in neighbors:
                self.closed = True
        # 2. Weighted reservoir over the C(d, 2) new wedges at `vertex`.
        d = len(neighbors)
        new_wedges = d * (d - 1) // 2
        if new_wedges == 0:
            return
        self.total_wedges += new_wedges
        if self._rng.coin(new_wedges / self.total_wedges):
            i, j = _unrank_pair(self._rng.rand_int(0, new_wedges - 1), d)
            self.center = vertex
            self.closing = canonical_edge(neighbors[i], neighbors[j])
            self.closed = False

    def estimate(self) -> float:
        """Unbiased triangle estimate ``(zeta / 2) * 1[closed]``."""
        if not self.closed:
            return 0.0
        return self.total_wedges / 2.0


class IncidenceTriangleCounter:
    """``r`` incidence-model estimators, averaged.

    This achieves the ``O(1 + T2/tau)``-per-accuracy-unit space profile
    that Theorem 3.13 rules out for adjacency streams -- run it on the
    lower-bound graphs to see the separation concretely.
    """

    def __init__(self, num_estimators: int, *, seed: int | None = None) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._samplers = [IncidenceWedgeSampler(rng=src) for src in sources]
        self.vertices_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def observe(self, vertex: int, neighbors: tuple[int, ...]) -> None:
        for sampler in self._samplers:
            sampler.observe(vertex, neighbors)
        self.vertices_seen += 1

    def consume(self, stream: IncidenceStream) -> None:
        """Process a whole incidence stream."""
        for vertex, neighbors in stream:
            self.observe(vertex, neighbors)

    def estimates(self) -> list[float]:
        return [s.estimate() for s in self._samplers]

    def estimate(self) -> float:
        values = self.estimates()
        return sum(values) / len(values)

    def wedge_count(self) -> int:
        """The exact wedge count zeta (tracked deterministically)."""
        return self._samplers[0].total_wedges if self._samplers else 0
