"""Uniform triangle sampling from a graph stream (Section 3.4).

Neighborhood sampling alone returns triangle ``t*`` with probability
``1/(m * C(t*))`` -- biased toward triangles whose first edge has a
small neighborhood. Lemma 3.7 removes the bias with one rejection step:
release the held triangle with probability ``c / (2 * Delta)``
(``c = C(t*) <= 2 Delta``), making every triangle equally likely
(``1 / (2 m Delta)`` each), so *some* triangle is released with
probability at least ``tau / (2 m Delta)``.

:class:`TriangleSampler` runs ``r`` such samplers (Theorem 3.8 sizes
``r`` so that ``k`` uniform-with-replacement triangles are produced with
probability ``1 - delta``) on top of the vectorized engine.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import EmptyStreamError, InsufficientSampleError, InvalidParameterError
from .vectorized import VectorizedTriangleCounter

__all__ = ["TriangleSampler"]

Triangle = tuple[int, int, int]


class TriangleSampler:
    """Maintain ``k``-sampleable uniform triangles over an edge stream.

    Parameters
    ----------
    num_estimators:
        Number of parallel ``unifTri`` samplers ``r``. Size with
        :func:`repro.core.accuracy.estimators_needed_sampling`.
    max_degree:
        A known upper bound on the maximum degree ``Delta``. If
        ``None`` (default), the sampler tracks vertex degrees of the
        stream itself and uses the observed ``Delta`` at query time;
        this costs ``O(n)`` extra memory, exactly like any consumer that
        must supply the paper's assumed ``Delta`` bound.
    seed:
        Seed for reproducibility.
    """

    def __init__(
        self,
        num_estimators: int,
        *,
        max_degree: int | None = None,
        seed: int | None = None,
    ) -> None:
        self._engine = VectorizedTriangleCounter(num_estimators, seed=seed)
        self._rng = np.random.default_rng(None if seed is None else seed + 1)
        self._fixed_delta = max_degree
        self._degrees: dict[int, int] | None = None if max_degree is not None else {}

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    @property
    def num_estimators(self) -> int:
        return self._engine.num_estimators

    @property
    def edges_seen(self) -> int:
        return self._engine.edges_seen

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge."""
        self.update_batch([edge])

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        """Observe a batch of stream edges."""
        self._engine.update_batch(batch)
        self._track_degrees(batch)

    def update_prepared(self, batch) -> None:
        """Columnar fast path (shared prepared ``EdgeBatch``)."""
        self._engine.update_prepared(batch)
        if self._degrees is not None:
            # Vectorized degree accumulation: only the (much smaller)
            # set of distinct batch vertices touches the Python dict.
            verts, counts = np.unique(batch.array, return_counts=True)
            degrees = self._degrees
            for vertex, count in zip(verts.tolist(), counts.tolist()):
                degrees[vertex] = degrees.get(vertex, 0) + count

    def _track_degrees(self, batch: Sequence[tuple[int, int]]) -> None:
        if self._degrees is not None:
            for u, v in batch:
                self._degrees[u] = self._degrees.get(u, 0) + 1
                self._degrees[v] = self._degrees.get(v, 0) + 1

    # ------------------------------------------------------------------
    # checkpoint/ship surface
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot: engine state, rejection rng, and tracked degrees."""
        state = {
            "engine": self._engine.state_dict(),
            "rng": self._rng.bit_generator.state,
            "max_degree": self._fixed_delta,
        }
        if self._degrees is None:
            state["degree_vertices"] = None
        else:
            verts = np.fromiter(self._degrees.keys(), dtype=np.int64, count=len(self._degrees))
            counts = np.fromiter(self._degrees.values(), dtype=np.int64, count=len(self._degrees))
            state["degree_vertices"] = verts
            state["degree_counts"] = counts
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        if "engine" not in state:
            raise InvalidParameterError("state dict missing fields: ['engine']")
        self._engine.load_state_dict(state["engine"])
        rng_state = state.get("rng")
        if rng_state is not None:
            self._rng = np.random.default_rng()
            self._rng.bit_generator.state = rng_state
        fixed = state.get("max_degree")
        self._fixed_delta = None if fixed is None else int(fixed)
        verts = state.get("degree_vertices")
        if verts is None:
            self._degrees = None if self._fixed_delta is not None else {}
        else:
            counts = state["degree_counts"]
            self._degrees = dict(
                zip(np.asarray(verts).tolist(), np.asarray(counts).tolist())
            )

    def merge(self, other: "TriangleSampler") -> None:
        """Absorb ``other``'s sampler pool (same stream observed).

        Both samplers tracked the same stream, so the degree state is
        identical by construction; the merged sampler keeps this one's.
        """
        if (self._fixed_delta is None) != (other._fixed_delta is None):
            raise InvalidParameterError(
                "cannot merge samplers with different max_degree tracking modes"
            )
        self._engine.merge(other._engine)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def current_max_degree(self) -> int:
        """The ``Delta`` used for normalization at this point."""
        if self._fixed_delta is not None:
            return self._fixed_delta
        assert self._degrees is not None
        return max(self._degrees.values(), default=0)

    def _released_triangles(self) -> list[Triangle]:
        """Run Lemma 3.7's rejection step over every held triangle."""
        if self._engine.edges_seen == 0:
            raise EmptyStreamError("no edges observed yet")
        delta = self.current_max_degree()
        if delta == 0:
            return []
        held = self._engine.tset
        if not held.any():
            return []
        accept_prob = self._engine.c[held].astype(np.float64) / (2.0 * delta)
        accepted = self._rng.random(accept_prob.shape[0]) < accept_prob
        idx = np.nonzero(held)[0][accepted]
        return [
            (
                int(self._engine.ta[i]),
                int(self._engine.tb[i]),
                int(self._engine.tc[i]),
            )
            for i in idx
        ]

    def sample_one(self) -> Triangle | None:
        """One uniform triangle, or ``None`` if no sampler released one.

        Success probability per sampler is at least ``tau / (2 m Delta)``
        (Lemma 3.7); conditioned on success the triangle is uniform over
        ``T(G)``.
        """
        released = self._released_triangles()
        if not released:
            return None
        return released[int(self._rng.integers(0, len(released)))]

    def sample(self, k: int) -> list[Triangle]:
        """``k`` uniform triangles with replacement (Theorem 3.8).

        Raises
        ------
        InsufficientSampleError
            If fewer than ``k`` samplers released a triangle. Theorem
            3.8 guarantees this happens with probability at most
            ``delta`` when ``r >= 4 m k Delta ln(e/delta) / tau``.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        released = self._released_triangles()
        if len(released) < k:
            raise InsufficientSampleError(
                f"only {len(released)} of {self.num_estimators} samplers "
                f"released a triangle; need at least {k}. "
                "Increase the number of estimators (Theorem 3.8)."
            )
        chosen = self._rng.choice(len(released), size=k, replace=False)
        return [released[int(i)] for i in chosen]

    def success_fraction(self) -> float:
        """Fraction of samplers currently holding any triangle (pre-rejection)."""
        return float(self._engine.tset.mean())

    def estimate(self) -> float:
        """The underlying pool's triangle-count estimate (Theorem 3.3).

        The sampler's estimators are ordinary neighborhood samplers, so
        the count estimate comes for free -- and it completes the
        :class:`~repro.streaming.protocol.StreamingEstimator` surface.
        """
        return self._engine.estimate()
