"""Vertex-subsampled triangle counting for fully-dynamic streams.

Bulteau, Froese, Kutzkov and Pagh (arXiv:1404.4696) count triangles in
a turnstile stream by *vertex* subsampling: a pairwise-independent hash
keeps each vertex with probability ``p``, the stream is filtered down
to edges whose **both** endpoints survive, and the exact triangle count
``tau`` of the sampled subgraph unbiases as ``tau / p^3`` (a triangle
survives iff its three vertices do, each independently enough under
the pairwise hash).

The crucial property for turnstile streams is that membership is a
*deterministic function of the vertex id*: a deletion hashes to exactly
the same decision as the insertion it cancels, so the sampled subgraph
tracks the evolving graph with no per-event randomness at all. All
randomness is spent once, at construction, drawing the hash
coefficients -- which is also what makes checkpoint/resume and sharded
replicas trivially bit-stable.

The hash is the classic multiply-shift ``h(v) = (a*v + b) mod 2^64``
with ``a`` odd; ``v`` survives when ``h(v) < p * 2^64``. Batches
prefilter both endpoint columns in one vectorized pass (uint64
arithmetic wraps mod ``2^64`` natively), so at small ``p`` almost all
events die before the per-edge loop.

``p = 1.0`` keeps every vertex and makes the estimator exact -- the
deterministic hook the tests pin against.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..rng import RandomSource, spawn_sources

__all__ = ["DynamicGraphSampler", "DynamicSamplerCounter"]

_WORD = 1 << 64


class DynamicGraphSampler:
    """One vertex-subsampled subgraph over a signed edge stream.

    Parameters
    ----------
    p:
        Vertex sampling probability in ``(0, 1]``. ``1.0`` keeps the
        whole graph (exact counting).
    """

    def __init__(
        self,
        p: float,
        seed: int | None = None,
        *,
        rng: RandomSource | None = None,
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"p must be in (0, 1], got {p}")
        self.p = float(p)
        source = rng if rng is not None else RandomSource(seed)
        # All randomness up front: the multiply-shift coefficients.
        self.a = source.rand_int(0, (1 << 63) - 1) * 2 + 1  # odd
        self.b = source.rand_int(0, _WORD - 1)
        self._threshold = _WORD if self.p >= 1.0 else int(self.p * _WORD)
        self._edges: set[tuple[int, int]] = set()  # sampled subgraph
        self._adj: dict[int, set[int]] = {}
        self.t = 0  # stream events processed (inserts + deletes)
        self.s = 0  # net edge count of the evolving graph
        self.tau = 0  # exact triangles of the sampled subgraph

    def keeps(self, vertex: int) -> bool:
        """Whether the hash retains ``vertex`` (deterministic)."""
        return (self.a * vertex + self.b) % _WORD < self._threshold

    def _keep_mask(self, column: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`keeps` over an int64 vertex column."""
        if self._threshold >= _WORD:
            return np.ones(len(column), dtype=bool)
        hashed = (
            np.uint64(self.a % _WORD) * column.astype(np.uint64)
            + np.uint64(self.b)
        )
        return hashed < np.uint64(self._threshold)

    def _shared(self, u: int, v: int) -> int:
        nu = self._adj.get(u)
        nv = self._adj.get(v)
        if not nu or not nv:
            return 0
        if len(nv) < len(nu):
            nu, nv = nv, nu
        return sum(1 for w in nu if w in nv)

    def update(self, u: int, v: int, sign: int = 1) -> None:
        """Observe one signed stream event (``u < v`` canonical)."""
        self.t += 1
        self.s += 1 if sign >= 0 else -1
        if not (self.keeps(u) and self.keeps(v)):
            return
        self._apply(u, v, sign)

    def _apply(self, u: int, v: int, sign: int) -> None:
        """Apply an event whose endpoints already passed the hash."""
        edge = (u, v)
        if sign >= 0:
            if edge in self._edges:
                return  # duplicate insert: idempotent
            self.tau += self._shared(u, v)
            self._edges.add(edge)
            self._adj.setdefault(u, set()).add(v)
            self._adj.setdefault(v, set()).add(u)
        else:
            if edge not in self._edges:
                return  # deletion of an unsampled (or absent) edge
            self._edges.discard(edge)
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            if not self._adj[u]:
                del self._adj[u]
            if not self._adj[v]:
                del self._adj[v]
            self.tau -= self._shared(u, v)

    def update_columns(
        self, array: np.ndarray, signs: np.ndarray | None
    ) -> None:
        """Observe a whole edge block, prefiltering by the hash."""
        rows = len(array)
        if rows == 0:
            return
        self.t += rows
        if signs is None:
            self.s += rows
        else:
            self.s += int(signs.astype(np.int64).sum())
        mask = self._keep_mask(array[:, 0]) & self._keep_mask(array[:, 1])
        if not mask.any():
            return
        kept = array[mask].tolist()
        kept_signs = None if signs is None else signs[mask].tolist()
        if kept_signs is None:
            for u, v in kept:
                self._apply(u, v, 1)
        else:
            for (u, v), sign in zip(kept, kept_signs):
                self._apply(u, v, sign)

    def triangle_estimate(self) -> float:
        """``tau / p^3``: unbiased for the current graph's triangles."""
        return self.tau / (self.p**3)

    def state_dict(self) -> dict:
        """Snapshot: hash coefficients, counters, the sampled subgraph."""
        edges = np.array(sorted(self._edges), dtype=np.int64).reshape(-1, 2)
        return {
            "p": self.p,
            "a": self.a,
            "b": self.b,
            "t": self.t,
            "s": self.s,
            "tau": self.tau,
            "edges": edges,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        p = float(state["p"])
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"p must be in (0, 1], got {p}")
        self.p = p
        self.a = int(state["a"])
        self.b = int(state["b"])
        self._threshold = _WORD if p >= 1.0 else int(p * _WORD)
        self.t = int(state["t"])
        self.s = int(state["s"])
        self.tau = int(state["tau"])
        self._edges = {tuple(row) for row in np.asarray(state["edges"]).tolist()}
        self._adj = {}
        for u, v in self._edges:
            self._adj.setdefault(u, set()).add(v)
            self._adj.setdefault(v, set()).add(u)


class DynamicSamplerCounter:
    """A pool of independent vertex-subsampled counters, averaged.

    The registry estimator: ``num_estimators`` independent hash draws
    sharing every batch, their ``tau / p^3`` estimates averaged. The
    pooling contract matches every other estimator, so checkpointing,
    sharded merge-by-concatenation, and live snapshots work unchanged.
    """

    #: Turnstile-capable: honours the ``+1``/``-1`` sign column.
    supports_deletions = True

    def __init__(
        self, num_estimators: int, p: float, *, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._samplers = [DynamicGraphSampler(p, rng=src) for src in sources]
        self.p = float(p)
        self.edges_seen = 0  # stream events (inserts + deletes)

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def update_batch(self, batch: Sequence) -> None:
        """Observe one batch, signed or plain.

        ``EdgeBatch`` inputs go through the vectorized hash prefilter;
        plain sequences accept ``(u, v)`` pairs and ``(u, v, sign)``
        triples.
        """
        from ..streaming.batch import EdgeBatch

        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch.from_edges(batch)
        for sampler in self._samplers:
            sampler.update_columns(batch.array, batch.signs)
        self.edges_seen += len(batch)

    def state_dict(self) -> dict:
        """Snapshot: every sampler, in pool order."""
        return {
            "p": self.p,
            "edges_seen": self.edges_seen,
            "samplers": [s.state_dict() for s in self._samplers],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot, adopting its ``p`` and pool wholesale."""
        samplers = []
        for sampler_state in state["samplers"]:
            sampler = DynamicGraphSampler(float(state["p"]))
            sampler.load_state_dict(sampler_state)
            samplers.append(sampler)
        if not samplers:
            raise InvalidParameterError("state dict holds no samplers")
        self._samplers = samplers
        self.p = float(state["p"])
        self.edges_seen = int(state["edges_seen"])

    def merge(self, other: "DynamicSamplerCounter") -> None:
        """Absorb ``other``'s sampler pool (same stream, same ``p``)."""
        if other.p != self.p:
            raise InvalidParameterError(
                f"cannot merge p={other.p} into p={self.p}"
            )
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} events vs {self.edges_seen})"
            )
        self._samplers.extend(other._samplers)

    def estimates(self) -> list[float]:
        """Per-sampler triangle estimates."""
        return [s.triangle_estimate() for s in self._samplers]

    def estimate(self) -> float:
        """The averaged triangle-count estimate for the current graph."""
        values = self.estimates()
        return sum(values) / len(values)

    def net_edges(self) -> int:
        """The evolving graph's net edge count (inserts minus deletes)."""
        return self._samplers[0].s
