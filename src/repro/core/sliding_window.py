"""Triangle counting over sequence-based sliding windows (Section 5.2).

The window of interest is the most recent ``w`` edges. Neighborhood
sampling needs ``r1`` uniform over the *window*, which plain reservoir
sampling cannot provide under expiry; the paper uses the chain-sampling
idea of Babcock, Datar and Motwani [2]:

- every arriving edge gets an independent priority ``rho ~ U[0, 1)``;
- the estimator keeps the *chain* ``e_l1, e_l2, ...`` where ``e_l1``
  minimizes ``rho`` over the window and each ``e_li`` minimizes ``rho``
  over the positions after ``l_{i-1}``. Equivalently, the chain is the
  set of suffix minima of ``rho`` -- maintainable as a monotone deque
  with expected length ``O(log w)``.
- ``r1`` is the head of the chain (uniform over the window, since the
  minimum of i.i.d. priorities is uniformly located); when it expires,
  the next chain element takes over seamlessly.

Each chain element carries its own level-2 state (reservoir over its
neighborhood, counter ``c``, closed triangle ``t``), because any of
them may become ``r1`` later. Edges adjacent to a chain element arrive
after it, hence always lie inside the window while the element does --
so level-2 needs no expiry logic of its own.

Total expected space is ``O(r log w)`` and the estimate
``tau~ = c * |window| * 1[t held]`` is unbiased for the number of
triangles among the window's edges (Theorem 5.8).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from ..errors import InvalidParameterError
from ..graph.edge import Edge, canonical_edge, edges_adjacent, third_vertices
from ..rng import RandomSource, spawn_sources

__all__ = ["ChainedWindowSampler", "SlidingWindowTriangleCounter"]


class _ChainLink:
    """One chain element: a window edge plus its level-2 sampling state."""

    __slots__ = ("edge", "pos", "rho", "r2", "c", "t", "closing")

    def __init__(self, edge: Edge, pos: int, rho: float) -> None:
        self.edge = edge
        self.pos = pos
        self.rho = rho
        self.r2: Edge | None = None
        self.c = 0
        self.t: tuple[int, int, int] | None = None
        self.closing: Edge | None = None

    def observe(self, e: Edge, rng: RandomSource) -> None:
        """Level-2 update: reservoir over N(edge), then wedge closing."""
        if not edges_adjacent(e, self.edge):
            return
        self.c += 1
        if rng.coin(1.0 / self.c):
            self.r2 = e
            self.t = None
            self.closing = third_vertices(self.edge, e)
        elif self.t is None and self.closing is not None and e == self.closing:
            a, b = self.closing
            shared = self.edge[0] if self.edge[0] not in (a, b) else self.edge[1]
            self.t = tuple(sorted((a, b, shared)))  # type: ignore[assignment]

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of this chain element."""
        return {
            "edge": list(self.edge),
            "pos": self.pos,
            "rho": self.rho,
            "r2": None if self.r2 is None else list(self.r2),
            "c": self.c,
            "t": None if self.t is None else list(self.t),
            "closing": None if self.closing is None else list(self.closing),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "_ChainLink":
        link = cls(
            (int(state["edge"][0]), int(state["edge"][1])),
            int(state["pos"]),
            float(state["rho"]),
        )
        r2 = state["r2"]
        link.r2 = None if r2 is None else (int(r2[0]), int(r2[1]))
        link.c = int(state["c"])
        t = state["t"]
        link.t = None if t is None else tuple(int(x) for x in t)
        closing = state["closing"]
        link.closing = None if closing is None else (int(closing[0]), int(closing[1]))
        return link


class ChainedWindowSampler:
    """One sliding-window neighborhood-sampling estimator.

    Parameters
    ----------
    window:
        The window length ``w`` in edges.
    """

    def __init__(
        self,
        window: int,
        seed: int | None = None,
        *,
        rng: RandomSource | None = None,
    ) -> None:
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.window = window
        self._rng = rng if rng is not None else RandomSource(seed)
        self._chain: deque[_ChainLink] = deque()
        self.edges_seen = 0

    def update(self, edge: tuple[int, int]) -> None:
        e = canonical_edge(*edge)
        self.edges_seen += 1
        pos = self.edges_seen
        # Expire chain elements that fell out of the window.
        while self._chain and self._chain[0].pos <= pos - self.window:
            self._chain.popleft()
        # Level-2 updates happen against the chain as it stood before e.
        for link in self._chain:
            link.observe(e, self._rng)
        # Monotone-deque maintenance of the suffix minima of rho.
        rho = self._rng.random()
        while self._chain and self._chain[-1].rho >= rho:
            self._chain.pop()
        self._chain.append(_ChainLink(e, pos, rho))

    # -- checkpoint/ship surface ------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot: the chain plus the rng state."""
        return {
            "window": self.window,
            "edges_seen": self.edges_seen,
            "chain": [link.state_dict() for link in self._chain],
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        window = int(state["window"])
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.window = window
        self.edges_seen = int(state["edges_seen"])
        self._chain = deque(
            _ChainLink.from_state_dict(link) for link in state["chain"]
        )
        if state.get("rng") is not None:
            self._rng.setstate(state["rng"])

    # -- queries ---------------------------------------------------------
    def window_size(self) -> int:
        """The number of edges currently in the window."""
        return min(self.edges_seen, self.window)

    def chain_length(self) -> int:
        """Current chain length (expected O(log w))."""
        return len(self._chain)

    def head(self) -> _ChainLink | None:
        """The chain head: ``r1`` uniform over the current window."""
        return self._chain[0] if self._chain else None

    def triangle_estimate(self) -> float:
        """Unbiased estimate of the window's triangle count."""
        link = self.head()
        if link is None or link.t is None:
            return 0.0
        return float(link.c) * self.window_size()

    def held_triangle(self) -> tuple[int, int, int] | None:
        """The triangle held by the head estimator, if any."""
        link = self.head()
        return link.t if link is not None else None


class SlidingWindowTriangleCounter:
    """(eps, delta)-approximate triangle counting over a sliding window.

    Runs ``num_estimators`` independent :class:`ChainedWindowSampler` s
    and averages their estimates (Theorem 5.8: ``O(r log w)`` space with
    the same ``r`` sizing as Theorem 3.4).
    """

    def __init__(
        self, num_estimators: int, window: int, *, seed: int | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        sources = spawn_sources(seed, num_estimators)
        self._samplers = [
            ChainedWindowSampler(window, rng=src) for src in sources
        ]
        self.window = window
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge with every estimator."""
        for sampler in self._samplers:
            sampler.update(edge)
        self.edges_seen += 1

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def state_dict(self) -> dict:
        """Snapshot: every chained sampler, in pool order."""
        return {
            "window": self.window,
            "edges_seen": self.edges_seen,
            "samplers": [s.state_dict() for s in self._samplers],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Adopts the snapshot's window length and pool size wholesale.
        """
        samplers = []
        for sampler_state in state["samplers"]:
            sampler = ChainedWindowSampler(int(state["window"]))
            sampler.load_state_dict(sampler_state)
            samplers.append(sampler)
        if not samplers:
            raise InvalidParameterError("state dict holds no samplers")
        self._samplers = samplers
        self.window = int(state["window"])
        self.edges_seen = int(state["edges_seen"])

    def merge(self, other: "SlidingWindowTriangleCounter") -> None:
        """Absorb ``other``'s sampler pool (same stream, same window)."""
        if other.window != self.window:
            raise InvalidParameterError(
                f"cannot merge window {other.window} into window {self.window}"
            )
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} edges vs {self.edges_seen})"
            )
        self._samplers.extend(other._samplers)

    def estimates(self) -> list[float]:
        """Per-estimator window triangle estimates."""
        return [s.triangle_estimate() for s in self._samplers]

    def estimate(self) -> float:
        """The averaged window triangle-count estimate."""
        values = self.estimates()
        return sum(values) / len(values)

    def mean_chain_length(self) -> float:
        """Average chain length across estimators (should be ~ln w)."""
        lengths = [s.chain_length() for s in self._samplers]
        return sum(lengths) / len(lengths)
