"""Checkpointing and merging of vectorized estimator state.

Two practical capabilities the paper's deployment story needs:

- **checkpoint/restore** -- the estimator state is the *entire* message
  a streaming node must persist or ship (it is literally the message
  Alice sends Bob in the Theorem 3.13 protocol). ``to_state_dict`` /
  ``from_state_dict`` round-trip every array of a
  :class:`~repro.core.vectorized.VectorizedTriangleCounter`.
- **merge** -- estimators are independent, so pools built over the
  *same* stream on different cores/machines combine by concatenation;
  this is what makes the algorithm embarrassingly parallel in the
  estimator dimension (cf. the parallel follow-up work the paper's
  conclusion cites). :func:`merge_counters` checks stream-position
  agreement and concatenates.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .vectorized import STATE_FIELDS as _ARRAY_FIELDS
from .vectorized import VectorizedTriangleCounter

__all__ = ["to_state_dict", "from_state_dict", "merge_counters"]


def to_state_dict(counter: VectorizedTriangleCounter) -> dict:
    """Serialize a counter's estimator state to plain numpy arrays.

    The random generator state is *not* captured: a restored counter
    continues with a fresh generator (pass ``seed`` to
    :func:`from_state_dict`), which preserves correctness -- reservoir
    decisions are memoryless -- but not bit-exact replay.
    """
    return counter.state_dict()


def from_state_dict(state: dict, *, seed: int | None = None) -> VectorizedTriangleCounter:
    """Rebuild a counter from :func:`to_state_dict` output."""
    missing = [k for k in (*_ARRAY_FIELDS, "edges_seen") if k not in state]
    if missing:
        raise InvalidParameterError(f"state dict missing fields: {missing}")
    num = int(np.asarray(state["r1u"]).shape[0])
    counter = VectorizedTriangleCounter(num, seed=seed)
    for name in _ARRAY_FIELDS:
        arr = np.asarray(state[name])
        if arr.shape[0] != num:
            raise InvalidParameterError(
                f"field {name} has {arr.shape[0]} entries, expected {num}"
            )
        getattr(counter, name)[:] = arr
    counter.edges_seen = int(state["edges_seen"])
    return counter


def merge_counters(
    counters: list[VectorizedTriangleCounter], *, seed: int | None = None
) -> VectorizedTriangleCounter:
    """Concatenate estimator pools that observed the same stream.

    All inputs must agree on ``edges_seen``; the merged counter holds
    the union of estimators and can keep streaming (with a fresh
    generator under ``seed``).
    """
    if not counters:
        raise InvalidParameterError("need at least one counter to merge")
    m = counters[0].edges_seen
    for c in counters[1:]:
        if c.edges_seen != m:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({c.edges_seen} edges vs {m})"
            )
    total = sum(c.num_estimators for c in counters)
    merged = VectorizedTriangleCounter(total, seed=seed)
    offset = 0
    for c in counters:
        n = c.num_estimators
        for name in _ARRAY_FIELDS:
            getattr(merged, name)[offset : offset + n] = getattr(c, name)
        offset += n
    merged.edges_seen = m
    return merged
