"""Checkpointing and merging of vectorized estimator state (legacy API).

These helpers predate the generic
:class:`~repro.streaming.protocol.CheckpointableEstimator` protocol and
survive as thin wrappers over it for the one class they always served,
:class:`~repro.core.vectorized.VectorizedTriangleCounter`. New code
should use the protocol methods directly (``state_dict`` /
``load_state_dict`` / ``merge`` on any registered estimator) and the
versioned on-disk format in :mod:`repro.streaming.checkpoint`;
pipeline-level snapshots go through
:meth:`~repro.streaming.pipeline.Pipeline.checkpoint` /
:meth:`~repro.streaming.pipeline.Pipeline.resume`, and multicore
sharding through :class:`~repro.streaming.sharded.ShardedPipeline`.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .vectorized import VectorizedTriangleCounter

__all__ = ["to_state_dict", "from_state_dict", "merge_counters"]


def to_state_dict(counter: VectorizedTriangleCounter) -> dict:
    """Serialize a counter's estimator state to plain numpy arrays.

    Equivalent to ``counter.state_dict()``; the generator state rides
    along under ``"rng"`` so a restore can be bit-exact.
    """
    return counter.state_dict()


def from_state_dict(
    state: dict, *, seed: int | np.random.SeedSequence | None = None
) -> VectorizedTriangleCounter:
    """Rebuild a counter from :func:`to_state_dict` output.

    With ``seed=None`` (default) and a state that carries the generator
    snapshot, the restored counter continues bit-identically to the
    original. Passing an explicit ``seed`` discards the snapshot's
    generator and restarts from that seed instead (the historical
    behaviour, still correct because reservoir decisions are
    memoryless).
    """
    counter = VectorizedTriangleCounter(1, seed=seed)
    if seed is not None and "rng" in state:
        state = {k: v for k, v in state.items() if k != "rng"}
    counter.load_state_dict(state)
    return counter


def merge_counters(
    counters: list[VectorizedTriangleCounter],
    *,
    seed: int | np.random.SeedSequence | None = None,
) -> VectorizedTriangleCounter:
    """Concatenate estimator pools that observed the same stream.

    All inputs must agree on ``edges_seen``; the merged counter holds
    the union of estimators and can keep streaming with a fresh
    generator under ``seed`` (derive a dedicated seed for it -- e.g. an
    extra ``SeedSequence.spawn`` child -- rather than reusing a seed
    some input pool already consumed).
    """
    if not counters:
        raise InvalidParameterError("need at least one counter to merge")
    merged = VectorizedTriangleCounter(1, seed=seed)
    first = {k: v for k, v in counters[0].state_dict().items() if k != "rng"}
    merged.load_state_dict(first)
    for counter in counters[1:]:
        merged.merge(counter)
    return merged
