"""Vectorized (numpy) implementation of bulk neighborhood sampling.

Same sampling semantics as :class:`repro.core.bulk.BulkTriangleCounter`
-- the three conceptual steps of Section 3.3 -- but with all ``r``
estimator states held in flat numpy arrays and each step expressed as
array operations. This is the engine that makes paper-scale estimator
counts (``r`` in the hundreds of thousands) practical in Python.

Correspondence to the paper's tables:

- table ``L`` (estimators whose ``r1`` is batch edge ``j``) becomes a
  gather of per-edge running degrees at the estimators' ``r1``
  positions;
- table ``P`` (EVENTB subscriptions) becomes an index computation: the
  ``d``-th batch edge incident on vertex ``v`` is found by binary search
  over the batch's endpoint-event array sorted by (vertex, time);
- table ``Q`` (closing-edge watch) becomes a binary search of each
  estimator's closing edge key in the sorted batch edge keys, plus a
  position comparison.

**Output sensitivity.** The paper's cost argument is that an arriving
edge only does work proportional to the estimators it actually affects;
the engine realizes it with two persistent
:class:`~repro.core.watch_index.WatchIndex` structures maintained
incrementally across batches:

- a *vertex watch*: ``r1`` endpoint -> slot, the inverted form of
  tables ``L``/``P``. Intersecting the batch's unique vertices against
  it yields exactly the slots that can gain level-2 candidates;
- a *wedge watch*: closing-edge key -> slot over open wedges, the
  inverted form of table ``Q``. Intersecting the batch's unique edge
  keys against it yields exactly the wedges this batch can close.

Steps 2-3 then compute betas, candidate counts, phi draws, and closings
only for the touched subset, so per-batch cost is ``O(touched + w log
r)`` instead of ``Theta(r)``; index maintenance is O(replacements),
amortized by churn-triggered compaction. When a batch is cheaper to
scan densely (small pools, or heavy-resample batches early in a
stream), the engine falls back to full-pool scans of the *same*
arithmetic -- the touched-set computation recovers exactly the dense
path's active set and consumes the generator in the same slot order,
so both query strategies (and ``sparse=False``, the retained dense
reference path) are bit-identical.

Triangle identities are retained (not just a "closed" bit), so the
sampling algorithms of Section 3.4 can run on this engine too.

The per-batch tables live in :class:`repro.streaming.batch.BatchContext`
(hoisted out of this module so a :class:`~repro.streaming.pipeline.Pipeline`
fan-out builds them once per batch for all estimators) -- including the
unique-vertex / unique-edge-key intersection views the watch indexes
query, so ``n`` fanned-out estimators share one intersection
precomputation per batch; this engine implements the
:class:`~repro.streaming.protocol.PreparedEstimator` fast path, and
``update_batch`` remains the compatibility entry point with
bit-identical randomness consumption.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..streaming.batch import BatchContext, EdgeBatch
from ..streaming.registry import register_engine
from .backend import active as _kernel_backend
from .watch_index import WatchIndex

__all__ = ["STATE_FIELDS", "VectorizedTriangleCounter"]

#: The per-estimator state arrays, in checkpoint order. The single
#: source of truth shared by :meth:`VectorizedTriangleCounter.state_dict`,
#: :meth:`~VectorizedTriangleCounter.state_nbytes`, and
#: :mod:`repro.core.checkpoint`'s restore/merge. The watch indexes are
#: deliberately NOT here: they are derived state, rebuilt from these
#: arrays after ``load_state_dict``/``merge``.
STATE_FIELDS = (
    "r1u", "r1v", "r1pos", "r2u", "r2v", "r2pos", "c", "tset", "ta", "tb", "tc",
)


@register_engine("vectorized")
class VectorizedTriangleCounter:
    """``r`` neighborhood-sampling estimators in numpy arrays.

    Parameters
    ----------
    num_estimators:
        The number of parallel estimators ``r``.
    seed:
        Seed for the numpy ``Generator``; anything
        :func:`numpy.random.default_rng` accepts (an ``int``, a
        ``SeedSequence`` -- as the parallel counter's spawned worker
        seeds are -- or ``None`` for OS entropy).
    sparse:
        ``True`` (default) maintains the persistent watch indexes and
        drives steps 2-3 output-sensitively; ``False`` is the dense
        reference path (every batch scans all ``r`` slots). Both paths
        are bit-identical under the same seed -- the property the test
        suite asserts -- so the flag is a pure performance choice.

    Notes
    -----
    Unset edges are stored as ``-1``. All vertex ids must be in
    ``[0, 2^31)`` so an edge packs into one ``int64`` key. The state
    arrays (:data:`STATE_FIELDS`) must not be mutated externally in
    ``sparse`` mode: the watch indexes are derived from them and are
    only rebuilt on :meth:`load_state_dict`/:meth:`merge`.
    """

    #: Scan the full pool in step 2 when ``r`` is at most this fraction
    #: of the batch's unique vertices (index intersection costs more
    #: than it saves), and likewise in step 3 against the batch width.
    _SCAN_FRACTION = 4
    #: Resampling at least ``r / 2**_SCAN_CHURN_SHIFT`` slots in one
    #: batch means most of the pool is touched anyway -- scan.
    _SCAN_CHURN_SHIFT = 3
    #: Watch indexes are compacted when their churn (delta + stale
    #: entries) exceeds ``max(_COMPACT_MIN, r)``.
    _COMPACT_MIN = 2048

    def __init__(
        self,
        num_estimators: int,
        *,
        seed: int | np.random.SeedSequence | None = None,
        sparse: bool = True,
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        r = num_estimators
        self._rng = np.random.default_rng(seed)
        self.edges_seen = 0
        self.r1u = np.full(r, -1, dtype=np.int64)
        self.r1v = np.full(r, -1, dtype=np.int64)
        self.r1pos = np.zeros(r, dtype=np.int64)
        self.r2u = np.full(r, -1, dtype=np.int64)
        self.r2v = np.full(r, -1, dtype=np.int64)
        self.r2pos = np.zeros(r, dtype=np.int64)
        self.c = np.zeros(r, dtype=np.int64)
        self.tset = np.zeros(r, dtype=bool)
        # Triangle vertices (sorted), for the sampling algorithms.
        self.ta = np.full(r, -1, dtype=np.int64)
        self.tb = np.full(r, -1, dtype=np.int64)
        self.tc = np.full(r, -1, dtype=np.int64)
        # Performance mode, not state: sparse and reference scans are
        # bit-identical, so checkpoints deliberately omit the flag.
        self._sparse = bool(sparse)  # repro: derived
        # Derived watch indexes (sparse mode): None means "rebuild from
        # the state arrays before next use".
        self._vertex_watch: WatchIndex | None = None
        self._wedge_watch: WatchIndex | None = None

    # ------------------------------------------------------------------
    # public protocol shared by all engines
    # ------------------------------------------------------------------
    @property
    def num_estimators(self) -> int:
        return self.r1u.shape[0]

    def update(self, edge: tuple[int, int]) -> None:
        """Process one edge (a batch of size one)."""
        self.update_batch([edge])

    def update_batch(
        self, batch: Sequence[tuple[int, int]] | np.ndarray | EdgeBatch
    ) -> None:
        """Process a batch of ``w`` edges (Section 3.3 semantics).

        The compatibility entry point: coerces ``batch`` to an
        :class:`~repro.streaming.batch.EdgeBatch` (validation and
        canonicalization as always) and defers to
        :meth:`update_prepared`. Randomness consumption is identical
        on both paths.
        """
        self.update_prepared(EdgeBatch.from_edges(batch))

    def update_prepared(self, batch: EdgeBatch) -> None:
        """Columnar fast path: consume a prepared, validated batch.

        Skips conversion and validation and reuses ``batch.context``
        (the per-batch index), which a pipeline fan-out builds exactly
        once and shares across all estimators -- including the
        unique-vertex and unique-edge-key views the watch indexes
        intersect against, so the intersection precomputation is also
        shared.
        """
        w = len(batch)
        if w == 0:
            return
        bu, bv = batch.u, batch.v
        base = self.edges_seen
        ctx = batch.context
        if not self._sparse or self.num_estimators <= w // self._SCAN_FRACTION:
            # Reference mode, or a pool small against the batch: full
            # scans win outright and index maintenance would cost more
            # than it saves. The indexes are dropped and lazily rebuilt
            # if a later (smaller) batch flips back to index queries.
            new_mask, new_j = self._step1(bu, bv, w)
            self._step2(ctx, new_mask, new_j, base)
            self._step3(ctx, base)
            self.edges_seen += w
            self._vertex_watch = None
            self._wedge_watch = None
            return
        if base:
            # A fresh pool (base == 0) always resamples every slot in
            # step 1, which resets the indexes wholesale -- skip the
            # rebuild entirely in that case.
            if self._vertex_watch is None:
                self._rebuild_vertex_watch()
            if self._wedge_watch is None:
                self._rebuild_wedge_watch()
        new_idx, new_j = self._step1_sparse(bu, bv, w)
        cand_info = self._candidate_slots(ctx, new_idx)
        self._step2_sparse(ctx, cand_info, new_idx, new_j, base)
        self._step3_sparse(ctx, base)
        self.edges_seen += w
        self._maybe_compact()

    def estimates(self) -> np.ndarray:
        """Per-estimator unbiased triangle estimates ``tau~`` (Lemma 3.2)."""
        m = float(self.edges_seen)
        return np.where(self.tset, self.c.astype(np.float64) * m, 0.0)

    def estimate(self) -> float:
        """Mean of the per-estimator estimates (Theorem 3.3 aggregation)."""
        return float(self.estimates().mean())

    def wedge_estimates(self) -> np.ndarray:
        """Per-estimator unbiased wedge estimates ``m * c`` (Lemma 3.10)."""
        return self.c.astype(np.float64) * float(self.edges_seen)

    def triangles_held(self) -> list[tuple[int, int, int]]:
        """The distinct-slot triangles currently held (for sampling)."""
        idx = np.nonzero(self.tset)[0]
        return [
            (int(self.ta[i]), int(self.tb[i]), int(self.tc[i])) for i in idx
        ]

    def state_dict(self) -> dict:
        """Serializable snapshot of the estimator state.

        The :class:`~repro.streaming.protocol.CheckpointableEstimator`
        surface; see :mod:`repro.streaming.checkpoint` for the on-disk
        format. The generator state rides along under ``"rng"`` so
        :meth:`load_state_dict` resumes the random stream bit-exactly
        (reservoir decisions are memoryless, so consumers that drop the
        key -- e.g. a restore under a fresh seed -- remain correct,
        just not bit-identical). The watch indexes are derived state
        and never serialized.
        """
        state = {name: getattr(self, name).copy() for name in STATE_FIELDS}
        state["edges_seen"] = self.edges_seen
        state["rng"] = self._rng.bit_generator.state
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Adopts the snapshot's pool size wholesale (the arrays are
        replaced, not copied into); when the snapshot carries a
        ``"rng"`` entry the generator state is restored too, making a
        resumed run bit-identical to an uninterrupted one. The watch
        indexes are dropped and rebuilt from the restored arrays on the
        next batch.
        """
        missing = [k for k in (*STATE_FIELDS, "edges_seen") if k not in state]
        if missing:
            raise InvalidParameterError(f"state dict missing fields: {missing}")
        r = int(np.asarray(state["r1u"]).shape[0])
        for name in STATE_FIELDS:
            arr = np.asarray(state[name])
            if arr.shape[0] != r:
                raise InvalidParameterError(
                    f"field {name} has {arr.shape[0]} entries, expected {r}"
                )
            template = getattr(self, name)
            setattr(self, name, arr.astype(template.dtype, copy=True))
        self.edges_seen = int(state["edges_seen"])
        rng_state = state.get("rng")
        if rng_state is not None:
            self._rng = np.random.default_rng()
            self._rng.bit_generator.state = rng_state
        self._vertex_watch = None
        self._wedge_watch = None

    def merge(self, other: "VectorizedTriangleCounter") -> None:
        """Absorb ``other``'s estimator pool (same stream observed).

        Estimators are independent, so pools built over the same stream
        on different cores combine by concatenation; the merged counter
        keeps this counter's generator and can continue streaming. Slot
        numbers shift for the absorbed pool, so the watch indexes are
        dropped and rebuilt from the merged arrays on the next batch.
        """
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} edges vs {self.edges_seen})"
            )
        for name in STATE_FIELDS:
            setattr(
                self,
                name,
                np.concatenate([getattr(self, name), getattr(other, name)]),
            )
        self._vertex_watch = None
        self._wedge_watch = None

    def state_nbytes(self) -> int:
        """Total bytes of estimator state (the paper's memory table, 4.3)."""
        return int(sum(getattr(self, name).nbytes for name in STATE_FIELDS))

    # ------------------------------------------------------------------
    # dense reference path (bit-identical to the sparse path)
    # ------------------------------------------------------------------
    def _step1(
        self, bu: np.ndarray, bv: np.ndarray, w: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Level-1 reservoir resampling over ``m`` old + ``w`` new edges."""
        m = self.edges_seen
        draw = self._rng.integers(1, m + w + 1, size=self.num_estimators)
        new_mask = draw > m
        new_j = draw[new_mask] - m - 1
        self.r1u[new_mask] = bu[new_j]
        self.r1v[new_mask] = bv[new_j]
        self.r1pos[new_mask] = m + new_j + 1
        self.r2u[new_mask] = -1
        self.r2v[new_mask] = -1
        self.r2pos[new_mask] = 0
        self.c[new_mask] = 0
        self.tset[new_mask] = False
        return new_mask, new_j

    def _step2(
        self,
        ctx: BatchContext,
        new_mask: np.ndarray,
        new_j: np.ndarray,
        base: int,
    ) -> None:
        """Level-2 selection: betas, candidate counts, event decoding.

        ``base`` is the stream position before this batch (the context
        itself is position-free so it can be shared across estimators).
        """
        r = self.num_estimators
        # beta values: batch-degrees of r1's endpoints at r1's arrival
        # (0 for estimators whose r1 predates this batch) -- Obs. 3.6.
        beta_x = np.zeros(r, dtype=np.int64)
        beta_y = np.zeros(r, dtype=np.int64)
        beta_x[new_mask] = ctx.deg_at_edge_u[new_j]
        beta_y[new_mask] = ctx.deg_at_edge_v[new_j]

        kb = _kernel_backend()
        c_minus = self.c
        a, c_plus, total = kb.step2_totals(
            ctx.final_degree(self.r1u),
            ctx.final_degree(self.r1v),
            beta_x,
            beta_y,
            c_minus,
        )

        active = c_plus > 0
        phi = np.ones(r, dtype=np.int64)
        if active.any():
            # randInt(1, c- + c+) per estimator with new candidates; the
            # kernel clamps the float-rounding hole where random() close
            # to 1 against a large total rounds the product up to total
            # itself, which would push phi one past the contract.
            phi[active] = kb.phi_from_draws(
                self._rng.random(int(active.sum())), total[active]
            )
        self.c = total
        replace = active & (phi > c_minus)
        if not replace.any():
            return

        # Algorithm 3: translate phi into an EVENTB (vertex, degree) pair.
        use_x = replace & (phi <= c_minus + a)
        use_y = replace & ~use_x
        target_v = np.where(use_x, self.r1u, self.r1v)
        target_d = np.where(
            use_x, beta_x + phi - c_minus, beta_y + phi - c_minus - a
        )
        j = ctx.event_edge_index(target_v[replace], target_d[replace])
        self.r2u[replace] = ctx.bu[j]
        self.r2v[replace] = ctx.bv[j]
        self.r2pos[replace] = base + j + 1
        self.tset[replace] = False

    def _step3(self, ctx: BatchContext, base: int) -> np.ndarray | None:
        """Close wedges: find each open wedge's closing edge in the batch.

        Returns the closed slot indices (``None`` when nothing closed)
        so the sparse driver can account wedge-watch staleness when it
        delegates a dense-direction scan here.
        """
        open_wedge = (~self.tset) & (self.r2u >= 0) & (self.r1u >= 0)
        if not open_wedge.any():
            return None
        r1u, r1v = self.r1u[open_wedge], self.r1v[open_wedge]
        r2u, r2v = self.r2u[open_wedge], self.r2v[open_wedge]
        # Shared vertex of the wedge; outer endpoints form the closing edge.
        shared, out1, out2, keys = _kernel_backend().wedge_geometry(
            r1u, r1v, r2u, r2v
        )
        local = ctx.position_in_batch_keys(keys)
        closed = (local > 0) & (base + local > self.r2pos[open_wedge])
        if not closed.any():
            return None
        idx = np.nonzero(open_wedge)[0][closed]
        tri = np.sort(
            np.stack([shared[closed], out1[closed], out2[closed]], axis=1), axis=1
        )
        self.ta[idx] = tri[:, 0]
        self.tb[idx] = tri[:, 1]
        self.tc[idx] = tri[:, 2]
        self.tset[idx] = True
        return idx

    # ------------------------------------------------------------------
    # output-sensitive path (watch-index driven)
    # ------------------------------------------------------------------
    def _step1_sparse(
        self, bu: np.ndarray, bv: np.ndarray, w: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Step 1 with vertex-watch maintenance; returns (slots, edges).

        Identical draws and state transitions to :meth:`_step1`; the
        resampled slots come back as a sorted index array (the form the
        candidate machinery consumes) instead of a mask.
        """
        m = self.edges_seen
        r = self.num_estimators
        draw = self._rng.integers(1, m + w + 1, size=r)
        new_mask = draw > m
        k = int(np.count_nonzero(new_mask))
        if k == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if k == r:
            # Wholesale resample (always the case on a fresh pool): the
            # previous subscriptions are all void, so start both indexes
            # over. The vertex index build is deferred -- a stream that
            # ends here (one huge batch) never needs it.
            new_j = draw - (m + 1)
            self.r1u = bu[new_j]
            self.r1v = bv[new_j]
            self.r1pos = draw  # m + new_j + 1 == draw, and draw is ours
            self.r2u.fill(-1)
            self.r2v.fill(-1)
            self.r2pos.fill(0)
            self.c.fill(0)
            self.tset.fill(False)
            self._vertex_watch = None
            self._wedge_watch = WatchIndex()
            return np.arange(r, dtype=np.int64), new_j
        idx = np.flatnonzero(new_mask)
        new_j = draw[idx] - m - 1
        had_wedge = int(np.count_nonzero((self.r2u[idx] >= 0) & ~self.tset[idx]))
        new_u = bu[new_j]
        new_v = bv[new_j]
        self.r1u[idx] = new_u
        self.r1v[idx] = new_v
        self.r1pos[idx] = m + new_j + 1
        self.r2u[idx] = -1
        self.r2v[idx] = -1
        self.r2pos[idx] = 0
        self.c[idx] = 0
        self.tset[idx] = False
        self._vertex_watch.add(
            np.concatenate([new_u, new_v]), np.concatenate([idx, idx])
        )
        self._vertex_watch.note_stale(2 * k)
        if had_wedge:
            self._wedge_watch.note_stale(had_wedge)
        return idx, new_j

    def _candidate_slots(
        self, ctx: BatchContext, new_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Step-2 candidates ``(slots, deg_bx, deg_by)``; ``None``: scan all.

        The slots are sorted and form a superset of the dense path's
        ``active`` set: resampled slots plus every slot holding a
        vertex-watch subscription on a batch vertex (stale
        subscriptions over-report, which costs a little work but never
        changes the result -- liveness is re-derived from the state
        arrays). Each hit also knows *which* unique batch vertex it
        matched, so the candidates' endpoint batch degrees
        (``final_degree`` of ``r1u``/``r1v``) are assembled from the
        context's per-unique-vertex counts for free; endpoints without
        a matching live entry are not in the batch and keep degree 0.
        Scanning the whole pool is chosen when it is cheaper than
        intersecting (small pools, heavy-resample batches).
        """
        r = self.num_estimators
        k = new_idx.shape[0]
        if k >= max(1, r >> self._SCAN_CHURN_SHIFT):
            return None
        if r <= ctx.unique_vertices.shape[0] // self._SCAN_FRACTION:
            return None
        hits, qidx = self._vertex_watch.lookup(ctx.unique_vertices)
        if hits.shape[0] == 0:
            cand = new_idx
        elif k == 0:
            cand = np.unique(hits)
        else:
            cand = np.unique(np.concatenate([new_idx, hits]))
        n_c = cand.shape[0]
        deg_bx = np.zeros(n_c, dtype=np.int64)
        deg_by = np.zeros(n_c, dtype=np.int64)
        if hits.shape[0]:
            pos = np.searchsorted(cand, hits)
            verts_h = ctx.unique_vertices[qidx]
            counts_h = ctx.unique_vertex_counts[qidx]
            is_u = verts_h == self.r1u[hits]
            deg_bx[pos[is_u]] = counts_h[is_u]
            is_v = verts_h == self.r1v[hits]
            deg_by[pos[is_v]] = counts_h[is_v]
        return cand, deg_bx, deg_by

    def _step2_sparse(
        self,
        ctx: BatchContext,
        cand_info: tuple[np.ndarray, np.ndarray, np.ndarray] | None,
        new_idx: np.ndarray,
        new_j: np.ndarray,
        base: int,
    ) -> None:
        """Step 2 restricted to the candidates (``None``: whole pool).

        Consumes the generator exactly as :meth:`_step2` does: the
        active subset of the candidates equals the dense path's active
        set, in the same ascending slot order, so the ``random(n)``
        draw is identical.
        """
        r = self.num_estimators
        k = new_idx.shape[0]
        if k == r and 2 * r >= ctx.bu.shape[0]:
            # Wholesale resample with a pool at least batch-sized: the
            # per-edge gather formulation wins. (For r << w the general
            # full scan below is cheaper than building O(w) tables.)
            self._step2_fresh(ctx, new_j, base)
            return
        full = cand_info is None
        if full:
            cand = None
            n_c = r
            r1u_c, r1v_c = self.r1u, self.r1v
            c_minus = self.c
        else:
            cand, deg_bx_c, deg_by_c = cand_info
            n_c = cand.shape[0]
            if n_c == 0:
                return
            r1u_c = self.r1u[cand]
            r1v_c = self.r1v[cand]
            c_minus = self.c[cand]
        kb = _kernel_backend()
        beta_x = np.zeros(n_c, dtype=np.int64)
        beta_y = np.zeros(n_c, dtype=np.int64)
        if k:
            pos = new_idx if full else np.searchsorted(cand, new_idx)
            beta_x[pos] = ctx.deg_at_edge_u[new_j]
            beta_y[pos] = ctx.deg_at_edge_v[new_j]
        if full:
            deg_bx_c = ctx.final_degree(r1u_c)
            deg_by_c = ctx.final_degree(r1v_c)
        # On the candidate path the endpoint batch degrees came for free
        # with the watch hits.
        a, c_plus, total = kb.step2_totals(
            deg_bx_c, deg_by_c, beta_x, beta_y, c_minus
        )
        if full:
            self.c = total
        else:
            self.c[cand] = total
        active = np.flatnonzero(c_plus > 0)
        n = active.shape[0]
        if n == 0:
            return
        phi = kb.phi_from_draws(self._rng.random(n), total[active])
        replace = np.flatnonzero(phi > c_minus[active])
        if replace.shape[0] == 0:
            return
        sel = active[replace]
        phi_r = phi[replace]
        cm_r = c_minus[sel]
        beta_x_r = beta_x[sel]
        beta_y_r = beta_y[sel]
        slots = sel if full else cand[sel]
        a_r = a[sel]
        r1u_r = r1u_c[sel]
        r1v_r = r1v_c[sel]
        use_x = phi_r <= cm_r + a_r
        target_v = np.where(use_x, r1u_r, r1v_r)
        target_d = np.where(
            use_x, beta_x_r + phi_r - cm_r, beta_y_r + phi_r - cm_r - a_r
        )
        # The candidate path already holds the endpoints' batch degrees
        # (assembled with the watch hits): hand them to the decode guard
        # so it needs no lookup of its own.
        target_degrees = (
            None if full else np.where(use_x, deg_bx_c[sel], deg_by_c[sel])
        )
        j = ctx.event_edge_index(target_v, target_d, target_degrees)
        new_r2u = ctx.bu[j]
        new_r2v = ctx.bv[j]
        had_wedge = int(
            np.count_nonzero((self.r2u[slots] >= 0) & ~self.tset[slots])
        )
        self.r2u[slots] = new_r2u
        self.r2v[slots] = new_r2v
        self.r2pos[slots] = base + j + 1
        self.tset[slots] = False
        # Subscribe the fresh wedges' closing edges in the wedge watch.
        # The shared vertex is the EVENTB target; the outer endpoints
        # are the two non-shared ones.
        out1 = np.where(use_x, r1v_r, r1u_r)
        out2 = new_r2u + new_r2v - target_v
        self._wedge_watch.add(kb.pack_edge_keys(out1, out2), slots)
        if had_wedge:
            self._wedge_watch.note_stale(had_wedge)

    def _step2_fresh(self, ctx: BatchContext, new_j: np.ndarray, base: int) -> None:
        """Step 2 for a wholesale-resampled pool (every slot is new).

        Every per-slot quantity is a per-edge quantity gathered through
        ``new_j``: candidate counts come from the context's
        remaining-degree table and the EVENTB decode from its per-edge
        base offsets, with ``c_minus`` identically zero (so every
        active slot replaces). Consumes the generator exactly as the
        general path does.
        """
        kb = _kernel_backend()
        remaining_u, remaining_v = ctx.remaining_degrees
        a = remaining_u[new_j]
        c_plus = a + remaining_v[new_j]
        self.c = c_plus
        active = np.flatnonzero(c_plus > 0)
        n = active.shape[0]
        if n == 0:
            return
        phi = kb.phi_from_draws(self._rng.random(n), c_plus[active])
        # phi in [1, a]: the u-side EVENTB run; else the v-side run.
        new_j_a = new_j[active]
        a_r = a[active]
        use_x = phi <= a_r
        base_u, base_v = ctx.event_decode_bases
        event_pos = np.where(use_x, base_u[new_j_a], base_v[new_j_a]) + phi
        j = ctx.event_order[event_pos] >> 1
        new_r2u = ctx.bu[j]
        new_r2v = ctx.bv[j]
        self.r2u[active] = new_r2u
        self.r2v[active] = new_r2v
        self.r2pos[active] = base + j + 1
        # tset is already all-False after the wholesale resample.
        r1u_a = ctx.bu[new_j_a]
        r1v_a = ctx.bv[new_j_a]
        shared = np.where(use_x, r1u_a, r1v_a)
        out1 = np.where(use_x, r1v_a, r1u_a)
        out2 = new_r2u + new_r2v - shared
        self._wedge_watch.add(kb.pack_edge_keys(out1, out2), active)

    def _step3_sparse(self, ctx: BatchContext, base: int) -> None:
        """Step 3 via the wedge watch (or a dense scan when cheaper).

        The index direction costs ``O(w log size)``; the dense scan
        ``O(r + size log w)``. Scan when the pool is small against the
        batch or the batch's key set outweighs the watched wedges.
        """
        w = ctx.bu.shape[0]
        if (
            self.num_estimators <= w // self._SCAN_FRACTION
            or self._wedge_watch.size <= w
        ):
            closed = self._step3(ctx, base)
            if closed is not None:
                self._wedge_watch.note_stale(closed.shape[0])
            return
        slots, qidx = self._wedge_watch.lookup(ctx.unique_edge_keys)
        if slots.shape[0] == 0:
            return
        # Duplicate candidates (a live entry plus stale ones for the
        # same slot) are tolerated rather than deduplicated: the close
        # below recomputes from current state and writes identical
        # values, so repeats are idempotent.
        alive = (~self.tset[slots]) & (self.r2u[slots] >= 0) & (self.r1u[slots] >= 0)
        slots = slots[alive]
        if slots.shape[0] == 0:
            return
        qidx = qidx[alive]
        r1u, r1v = self.r1u[slots], self.r1v[slots]
        r2u, r2v = self.r2u[slots], self.r2v[slots]
        shared, out1, out2, keys = _kernel_backend().wedge_geometry(
            r1u, r1v, r2u, r2v
        )
        # A hit is real when the slot's *current* closing key still is
        # the matched batch key (a stale entry's slot re-derives a
        # different key -- or the same one via its own live entry); the
        # closing position is then the matched key's first occurrence.
        local = ctx.unique_edge_key_positions[qidx]
        closed = (keys == ctx.unique_edge_keys[qidx]) & (
            base + local > self.r2pos[slots]
        )
        if not closed.any():
            return
        idx = slots[closed]
        tri = np.sort(
            np.stack([shared[closed], out1[closed], out2[closed]], axis=1), axis=1
        )
        self.ta[idx] = tri[:, 0]
        self.tb[idx] = tri[:, 1]
        self.tc[idx] = tri[:, 2]
        self.tset[idx] = True
        self._wedge_watch.note_stale(idx.shape[0])

    # ------------------------------------------------------------------
    # watch-index maintenance
    # ------------------------------------------------------------------
    def _rebuild_vertex_watch(self) -> None:
        live = np.flatnonzero(self.r1u >= 0)
        watch = WatchIndex()
        watch.rebuild(
            np.concatenate([self.r1u[live], self.r1v[live]]),
            np.concatenate([live, live]),
        )
        self._vertex_watch = watch

    def _rebuild_wedge_watch(self) -> None:
        open_slots = np.flatnonzero(
            (~self.tset) & (self.r2u >= 0) & (self.r1u >= 0)
        )
        watch = WatchIndex()
        watch.rebuild(self._closing_keys(open_slots), open_slots)
        self._wedge_watch = watch

    def _closing_keys(self, slots: np.ndarray) -> np.ndarray:
        """Packed closing-edge keys of the open wedges at ``slots``."""
        return _kernel_backend().wedge_geometry(
            self.r1u[slots], self.r1v[slots], self.r2u[slots], self.r2v[slots]
        )[3]

    def _maybe_compact(self) -> None:
        limit = max(self._COMPACT_MIN, self.num_estimators)
        if self._vertex_watch is not None and self._vertex_watch.churn > limit:
            self._rebuild_vertex_watch()
        if self._wedge_watch is not None and self._wedge_watch.churn > limit:
            self._rebuild_wedge_watch()
