"""Vectorized (numpy) implementation of bulk neighborhood sampling.

Same sampling semantics as :class:`repro.core.bulk.BulkTriangleCounter`
-- the three conceptual steps of Section 3.3 -- but with all ``r``
estimator states held in flat numpy arrays and each step expressed as
array operations. This is the engine that makes paper-scale estimator
counts (``r`` in the hundreds of thousands) practical in Python; the
per-batch cost is ``O((r + w) log w)`` array work with tiny constants.

Correspondence to the paper's tables:

- table ``L`` (estimators whose ``r1`` is batch edge ``j``) becomes a
  gather of per-edge running degrees at the estimators' ``r1``
  positions;
- table ``P`` (EVENTB subscriptions) becomes an index computation: the
  ``d``-th batch edge incident on vertex ``v`` is found by binary search
  over the batch's endpoint-event array sorted by (vertex, time);
- table ``Q`` (closing-edge watch) becomes a binary search of each
  estimator's closing edge key in the sorted batch edge keys, plus a
  position comparison.

Triangle identities are retained (not just a "closed" bit), so the
sampling algorithms of Section 3.4 can run on this engine too.

The per-batch tables live in :class:`repro.streaming.batch.BatchContext`
(hoisted out of this module so a :class:`~repro.streaming.pipeline.Pipeline`
fan-out builds them once per batch for all estimators); this engine
implements the :class:`~repro.streaming.protocol.PreparedEstimator`
fast path, and ``update_batch`` remains the compatibility entry point
with bit-identical randomness consumption.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..streaming.batch import BatchContext, EdgeBatch
from ..streaming.registry import register_engine

__all__ = ["STATE_FIELDS", "VectorizedTriangleCounter"]

#: The per-estimator state arrays, in checkpoint order. The single
#: source of truth shared by :meth:`VectorizedTriangleCounter.state_dict`,
#: :meth:`~VectorizedTriangleCounter.state_nbytes`, and
#: :mod:`repro.core.checkpoint`'s restore/merge.
STATE_FIELDS = (
    "r1u", "r1v", "r1pos", "r2u", "r2v", "r2pos", "c", "tset", "ta", "tb", "tc",
)


@register_engine("vectorized")
class VectorizedTriangleCounter:
    """``r`` neighborhood-sampling estimators in numpy arrays.

    Parameters
    ----------
    num_estimators:
        The number of parallel estimators ``r``.
    seed:
        Seed for the numpy ``Generator``; anything
        :func:`numpy.random.default_rng` accepts (an ``int``, a
        ``SeedSequence`` -- as the parallel counter's spawned worker
        seeds are -- or ``None`` for OS entropy).

    Notes
    -----
    Unset edges are stored as ``-1``. All vertex ids must be in
    ``[0, 2^31)`` so an edge packs into one ``int64`` key.
    """

    def __init__(
        self, num_estimators: int, *, seed: int | np.random.SeedSequence | None = None
    ) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        r = num_estimators
        self._rng = np.random.default_rng(seed)
        self.edges_seen = 0
        self.r1u = np.full(r, -1, dtype=np.int64)
        self.r1v = np.full(r, -1, dtype=np.int64)
        self.r1pos = np.zeros(r, dtype=np.int64)
        self.r2u = np.full(r, -1, dtype=np.int64)
        self.r2v = np.full(r, -1, dtype=np.int64)
        self.r2pos = np.zeros(r, dtype=np.int64)
        self.c = np.zeros(r, dtype=np.int64)
        self.tset = np.zeros(r, dtype=bool)
        # Triangle vertices (sorted), for the sampling algorithms.
        self.ta = np.full(r, -1, dtype=np.int64)
        self.tb = np.full(r, -1, dtype=np.int64)
        self.tc = np.full(r, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # public protocol shared by all engines
    # ------------------------------------------------------------------
    @property
    def num_estimators(self) -> int:
        return self.r1u.shape[0]

    def update(self, edge: tuple[int, int]) -> None:
        """Process one edge (a batch of size one)."""
        self.update_batch([edge])

    def update_batch(
        self, batch: Sequence[tuple[int, int]] | np.ndarray | EdgeBatch
    ) -> None:
        """Process a batch of ``w`` edges (Section 3.3 semantics).

        The compatibility entry point: coerces ``batch`` to an
        :class:`~repro.streaming.batch.EdgeBatch` (validation and
        canonicalization as always) and defers to
        :meth:`update_prepared`. Randomness consumption is identical
        on both paths.
        """
        self.update_prepared(EdgeBatch.from_edges(batch))

    def update_prepared(self, batch: EdgeBatch) -> None:
        """Columnar fast path: consume a prepared, validated batch.

        Skips conversion and validation and reuses ``batch.context``
        (the per-batch index), which a pipeline fan-out builds exactly
        once and shares across all estimators.
        """
        w = len(batch)
        if w == 0:
            return
        bu, bv = batch.u, batch.v
        new_mask, new_j = self._step1(bu, bv, w)
        ctx = batch.context
        self._step2(ctx, new_mask, new_j, self.edges_seen)
        self._step3(ctx, self.edges_seen)
        self.edges_seen += w

    def estimates(self) -> np.ndarray:
        """Per-estimator unbiased triangle estimates ``tau~`` (Lemma 3.2)."""
        m = float(self.edges_seen)
        return np.where(self.tset, self.c.astype(np.float64) * m, 0.0)

    def estimate(self) -> float:
        """Mean of the per-estimator estimates (Theorem 3.3 aggregation)."""
        return float(self.estimates().mean())

    def wedge_estimates(self) -> np.ndarray:
        """Per-estimator unbiased wedge estimates ``m * c`` (Lemma 3.10)."""
        return self.c.astype(np.float64) * float(self.edges_seen)

    def triangles_held(self) -> list[tuple[int, int, int]]:
        """The distinct-slot triangles currently held (for sampling)."""
        idx = np.nonzero(self.tset)[0]
        return [
            (int(self.ta[i]), int(self.tb[i]), int(self.tc[i])) for i in idx
        ]

    def state_dict(self) -> dict:
        """Serializable snapshot of the estimator state.

        The :class:`~repro.streaming.protocol.CheckpointableEstimator`
        surface; see :mod:`repro.streaming.checkpoint` for the on-disk
        format. The generator state rides along under ``"rng"`` so
        :meth:`load_state_dict` resumes the random stream bit-exactly
        (reservoir decisions are memoryless, so consumers that drop the
        key -- e.g. a restore under a fresh seed -- remain correct,
        just not bit-identical).
        """
        state = {name: getattr(self, name).copy() for name in STATE_FIELDS}
        state["edges_seen"] = self.edges_seen
        state["rng"] = self._rng.bit_generator.state
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Adopts the snapshot's pool size wholesale (the arrays are
        replaced, not copied into); when the snapshot carries a
        ``"rng"`` entry the generator state is restored too, making a
        resumed run bit-identical to an uninterrupted one.
        """
        missing = [k for k in (*STATE_FIELDS, "edges_seen") if k not in state]
        if missing:
            raise InvalidParameterError(f"state dict missing fields: {missing}")
        r = int(np.asarray(state["r1u"]).shape[0])
        for name in STATE_FIELDS:
            arr = np.asarray(state[name])
            if arr.shape[0] != r:
                raise InvalidParameterError(
                    f"field {name} has {arr.shape[0]} entries, expected {r}"
                )
            template = getattr(self, name)
            setattr(self, name, arr.astype(template.dtype, copy=True))
        self.edges_seen = int(state["edges_seen"])
        rng_state = state.get("rng")
        if rng_state is not None:
            self._rng = np.random.default_rng()
            self._rng.bit_generator.state = rng_state

    def merge(self, other: "VectorizedTriangleCounter") -> None:
        """Absorb ``other``'s estimator pool (same stream observed).

        Estimators are independent, so pools built over the same stream
        on different cores combine by concatenation; the merged counter
        keeps this counter's generator and can continue streaming.
        """
        if other.edges_seen != self.edges_seen:
            raise InvalidParameterError(
                "cannot merge counters that observed different streams "
                f"({other.edges_seen} edges vs {self.edges_seen})"
            )
        for name in STATE_FIELDS:
            setattr(
                self,
                name,
                np.concatenate([getattr(self, name), getattr(other, name)]),
            )

    def state_nbytes(self) -> int:
        """Total bytes of estimator state (the paper's memory table, 4.3)."""
        return int(sum(getattr(self, name).nbytes for name in STATE_FIELDS))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _step1(
        self, bu: np.ndarray, bv: np.ndarray, w: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Level-1 reservoir resampling over ``m`` old + ``w`` new edges."""
        m = self.edges_seen
        draw = self._rng.integers(1, m + w + 1, size=self.num_estimators)
        new_mask = draw > m
        new_j = draw[new_mask] - m - 1
        self.r1u[new_mask] = bu[new_j]
        self.r1v[new_mask] = bv[new_j]
        self.r1pos[new_mask] = m + new_j + 1
        self.r2u[new_mask] = -1
        self.r2v[new_mask] = -1
        self.r2pos[new_mask] = 0
        self.c[new_mask] = 0
        self.tset[new_mask] = False
        return new_mask, new_j

    def _step2(
        self,
        ctx: BatchContext,
        new_mask: np.ndarray,
        new_j: np.ndarray,
        base: int,
    ) -> None:
        """Level-2 selection: betas, candidate counts, event decoding.

        ``base`` is the stream position before this batch (the context
        itself is position-free so it can be shared across estimators).
        """
        r = self.num_estimators
        # beta values: batch-degrees of r1's endpoints at r1's arrival
        # (0 for estimators whose r1 predates this batch) -- Obs. 3.6.
        beta_x = np.zeros(r, dtype=np.int64)
        beta_y = np.zeros(r, dtype=np.int64)
        beta_x[new_mask] = ctx.deg_at_edge_u[new_j]
        beta_y[new_mask] = ctx.deg_at_edge_v[new_j]

        deg_bx = ctx.final_degree(self.r1u)
        deg_by = ctx.final_degree(self.r1v)
        a = deg_bx - beta_x
        b = deg_by - beta_y
        c_plus = a + b
        c_minus = self.c
        total = c_minus + c_plus

        active = c_plus > 0
        phi = np.ones(r, dtype=np.int64)
        if active.any():
            # randInt(1, c- + c+) per estimator with new candidates.
            phi[active] = 1 + (
                self._rng.random(int(active.sum())) * total[active]
            ).astype(np.int64)
        self.c = total
        replace = active & (phi > c_minus)
        if not replace.any():
            return

        # Algorithm 3: translate phi into an EVENTB (vertex, degree) pair.
        use_x = replace & (phi <= c_minus + a)
        use_y = replace & ~use_x
        target_v = np.where(use_x, self.r1u, self.r1v)
        target_d = np.where(
            use_x, beta_x + phi - c_minus, beta_y + phi - c_minus - a
        )
        j = ctx.event_edge_index(target_v[replace], target_d[replace])
        self.r2u[replace] = ctx.bu[j]
        self.r2v[replace] = ctx.bv[j]
        self.r2pos[replace] = base + j + 1
        self.tset[replace] = False

    def _step3(self, ctx: BatchContext, base: int) -> None:
        """Close wedges: find each open wedge's closing edge in the batch."""
        open_wedge = (~self.tset) & (self.r2u >= 0) & (self.r1u >= 0)
        if not open_wedge.any():
            return
        r1u, r1v = self.r1u[open_wedge], self.r1v[open_wedge]
        r2u, r2v = self.r2u[open_wedge], self.r2v[open_wedge]
        # Shared vertex of the wedge; outer endpoints form the closing edge.
        shared = np.where((r1u == r2u) | (r1u == r2v), r1u, r1v)
        out1 = r1u + r1v - shared
        out2 = r2u + r2v - shared
        cu = np.minimum(out1, out2)
        cv = np.maximum(out1, out2)
        local = ctx.position_in_batch(cu, cv)
        closed = (local > 0) & (base + local > self.r2pos[open_wedge])
        if not closed.any():
            return
        idx = np.nonzero(open_wedge)[0][closed]
        tri = np.sort(
            np.stack([shared[closed], out1[closed], out2[closed]], axis=1), axis=1
        )
        self.ta[idx] = tri[:, 0]
        self.tb[idx] = tri[:, 1]
        self.tc[idx] = tri[:, 2]
        self.tset[idx] = True
