"""Estimator-count sizing and error bounds (Theorems 3.3, 3.4, 3.8; Lemma 3.11).

The paper writes ``s(eps, delta) = (1/eps^2) * log(1/delta)`` and sizes
the number of parallel estimators ``r`` in terms of it. These helpers
compute each theorem's sufficient ``r``, and the inverse map from a given
``r`` back to the guaranteed relative error -- the "bound" curves in the
right panel of Figure 5.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError

__all__ = [
    "s_eps_delta",
    "estimators_needed",
    "estimators_needed_tangle",
    "estimators_needed_sampling",
    "estimators_needed_wedges",
    "error_bound",
]


def _check_eps_delta(eps: float, delta: float) -> None:
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    if not 0.0 < delta < 1.0:
        raise InvalidParameterError(f"delta must be in (0, 1), got {delta}")


def _check_graph_stats(m: int, max_degree: int, triangles: int) -> None:
    if m <= 0:
        raise InvalidParameterError(f"m must be positive, got {m}")
    if max_degree <= 0:
        raise InvalidParameterError(f"max_degree must be positive, got {max_degree}")
    if triangles <= 0:
        raise InvalidParameterError(
            f"triangles must be positive for a relative-error bound, got {triangles}"
        )


def s_eps_delta(eps: float, delta: float) -> float:
    """The paper's shorthand ``s(eps, delta) = (1/eps^2) log(1/delta)``."""
    _check_eps_delta(eps, delta)
    return math.log(1.0 / delta) / (eps * eps)


def estimators_needed(
    eps: float, delta: float, *, m: int, max_degree: int, triangles: int
) -> int:
    """Sufficient ``r`` for an (eps, delta) triangle count (Theorem 3.3).

    ``r >= (6 / eps^2) * (m * Delta / tau) * log(2 / delta)``.
    """
    _check_eps_delta(eps, delta)
    _check_graph_stats(m, max_degree, triangles)
    return math.ceil(
        6.0 / (eps * eps) * (m * max_degree / triangles) * math.log(2.0 / delta)
    )


def estimators_needed_tangle(
    eps: float, delta: float, *, m: int, tangle: float, triangles: int
) -> int:
    """Sufficient ``r`` under the tangle-coefficient bound (Theorem 3.4).

    ``r >= (48 / eps^2) * (m * gamma / tau) * log(1 / delta)``. Since
    ``gamma <= 2 * Delta`` this is never fundamentally worse than
    Theorem 3.3, and it is much smaller on streams whose triangles are
    weakly entangled with non-triangle edges.
    """
    _check_eps_delta(eps, delta)
    if m <= 0 or triangles <= 0 or tangle <= 0:
        raise InvalidParameterError("m, triangles and tangle must all be positive")
    return math.ceil(
        48.0 / (eps * eps) * (m * tangle / triangles) * math.log(1.0 / delta)
    )


def estimators_needed_sampling(
    k: int, delta: float, *, m: int, max_degree: int, triangles: int
) -> int:
    """Sufficient ``r`` to draw ``k`` uniform triangles (Theorem 3.8).

    ``r >= 4 * m * k * Delta * ln(e / delta) / tau``.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be at least 1, got {k}")
    _check_eps_delta(0.5, delta)  # validates delta only
    _check_graph_stats(m, max_degree, triangles)
    return math.ceil(4.0 * m * k * max_degree * math.log(math.e / delta) / triangles)


def estimators_needed_wedges(
    eps: float, delta: float, *, m: int, max_degree: int, wedges: int
) -> int:
    """Sufficient ``r`` for an (eps, delta) wedge count (Lemma 3.11).

    ``r >= (6 / eps^2) * (m * Delta / zeta) * log(2 / delta)`` -- the
    same Chernoff argument as Theorem 3.3 with ``zeta`` in place of
    ``tau`` (each estimate ``m * c(e) <= 2 m Delta``).
    """
    _check_eps_delta(eps, delta)
    _check_graph_stats(m, max_degree, wedges)
    return math.ceil(
        6.0 / (eps * eps) * (m * max_degree / wedges) * math.log(2.0 / delta)
    )


def error_bound(
    r: int, delta: float, *, m: int, max_degree: int, triangles: int
) -> float:
    """Invert Theorem 3.3: the ``eps`` guaranteed by ``r`` estimators.

    ``eps = sqrt((6 m Delta log(2/delta)) / (r tau))``. May exceed 1, in
    which case the theorem gives no useful guarantee at this ``r`` --
    exactly how the "bound" curves in Figure 5 (right) behave at small
    ``r``.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be at least 1, got {r}")
    _check_eps_delta(0.5, delta)  # validates delta only
    _check_graph_stats(m, max_degree, triangles)
    return math.sqrt(6.0 * m * max_degree * math.log(2.0 / delta) / (r * triangles))
