"""Kernel backend dispatch: compiled hot loops with a NumPy reference.

The output-sensitive engine (PR 5) made per-batch cost ``O(touched)``;
what remains at paper-scale pools is pure dispatch overhead -- a dozen
NumPy calls per step, each allocating temporaries and re-walking its
inputs. This module is the seam that removes it without forking the
engine: every hot kernel of :class:`~repro.core.vectorized
.VectorizedTriangleCounter`, :class:`~repro.core.watch_index.WatchIndex`
and :class:`~repro.streaming.batch.BatchContext` is expressed as a named
operation on a :class:`Backend` object, with two interchangeable
implementations:

- ``numpy`` -- the reference. The exact array expressions the modules
  used inline before this seam existed, so behaviour (including every
  bit of output) is unchanged by construction;
- ``numba`` -- ``@njit``-compiled fused loops (one pass, no
  temporaries), built lazily from :mod:`repro.core._backend_numba` the
  first time the backend is requested. Optional: when Numba is not
  installed the numpy backend serves everything and nothing else
  changes.

**Bit-identity contract.** A backend is *not allowed* to change
results. All randomness stays in the engine's own NumPy generator --
kernels only consume already-drawn arrays -- and every compiled kernel
reproduces its reference's exact integer arithmetic and IEEE-754
float64 operations (multiply then C-truncation to int64), so the
golden-state fingerprints and the hypothesis ``sparse == dense`` suites
hold verbatim under either backend. The parity test suite
(``tests/test_backend.py``, plus the backend-parametrized legs of
``tests/test_vectorized_sparse.py``) asserts this kernel by kernel and
end to end.

Selection: ``REPRO_BACKEND=numpy|numba|auto`` in the environment, the
``--backend`` CLI flag (which calls :func:`set_backend`), or the
default ``auto`` -- numba when importable, numpy otherwise. Asking for
``numba`` explicitly when it is unavailable raises; ``auto`` falls back
silently. :func:`use` is a context manager for test parametrization.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "Backend",
    "active",
    "available_backends",
    "get_backend",
    "numba_available",
    "resolve_name",
    "set_backend",
    "use",
]

_ENV_VAR = "REPRO_BACKEND"
_EMPTY = np.empty(0, dtype=np.int64)

#: The operations every backend must provide; the single source of
#: truth shared by the numpy builder, the numba builder, and the
#: kernel-parity test suite.
KERNEL_NAMES = (
    "lookup_sorted",
    "expand_ranges",
    "packed_range_lookup",
    "sorted_range_lookup",
    "tail_probe",
    "pack_index_sort",
    "pack2_index_sort",
    "pack_sort_pairs",
    "pack_edge_keys",
    "wedge_geometry",
    "phi_from_draws",
    "step2_totals",
)


class Backend:
    """A named bundle of hot-kernel implementations.

    Attributes are the callables listed in :data:`KERNEL_NAMES`; all
    backends share one signature and one output contract per kernel
    (documented on the numpy reference implementations below).
    """

    __slots__ = ("name", *KERNEL_NAMES)

    def __init__(self, name: str, kernels: dict) -> None:
        self.name = name
        missing = [k for k in KERNEL_NAMES if k not in kernels]
        if missing:
            raise InvalidParameterError(
                f"backend {name!r} is missing kernels: {missing}"
            )
        for kernel_name in KERNEL_NAMES:
            setattr(self, kernel_name, kernels[kernel_name])

    def __repr__(self) -> str:
        return f"Backend({self.name!r})"


# ----------------------------------------------------------------------
# numpy reference implementations (the behavioural contract)
# ----------------------------------------------------------------------

#: Above this many queries, sort them first: binary search with sorted
#: queries streams through the reference array instead of thrashing it
#: (measured ~4-6x on 10^5-scale query sets).
_SORTED_QUERY_MIN = 8192


def _np_lookup_sorted(queries, sorted_ref, values, offset=0):
    """``values[i] + offset`` where ``sorted_ref[i] == query`` else 0.

    ``sorted_ref`` must be non-empty; duplicate reference keys resolve
    to the first (the ``searchsorted`` left side).
    """
    n = queries.shape[0]
    top = sorted_ref.shape[0] - 1
    if n >= _SORTED_QUERY_MIN:
        order = np.argsort(queries)
        sorted_queries = queries[order]
        pos = np.minimum(np.searchsorted(sorted_ref, sorted_queries), top)
        found = sorted_ref[pos] == sorted_queries
        result = np.where(found, values[pos] + offset, 0)
        out = np.empty(n, dtype=np.int64)
        out[order] = result
        return out
    pos = np.minimum(np.searchsorted(sorted_ref, queries), top)
    found = sorted_ref[pos] == queries
    return np.where(found, values[pos] + offset, 0)


def _np_expand_ranges(lo, hi):
    """Expand per-query ranges into ``(positions, query indices)``.

    Concatenates ``arange(lo[i], hi[i])`` for every query ``i`` (in
    query order) and pairs each produced position with ``i``.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    query_idx = np.arange(lo.shape[0], dtype=np.int64)
    nonempty = counts > 0
    if not nonempty.all():
        lo = lo[nonempty]
        counts = counts[nonempty]
        query_idx = query_idx[nonempty]
    starts = np.cumsum(counts) - counts
    positions = np.repeat(lo - starts, counts) + np.arange(total, dtype=np.int64)
    return positions, np.repeat(query_idx, counts)


def _np_packed_range_lookup(packed, shift, queries):
    """Slots of all ``packed`` entries whose key is in sorted ``queries``.

    ``packed`` holds sorted ``(key << shift) | slot`` values; returns
    ``(slots, query_indices)`` in query-major order.
    """
    lo = np.searchsorted(packed, queries << shift)
    hi = np.searchsorted(packed, (queries + 1) << shift)
    span, qidx = _np_expand_ranges(lo, hi)
    if span.shape[0] == 0:
        return _EMPTY, _EMPTY
    return packed[span] & ((np.int64(1) << shift) - 1), qidx


def _np_sorted_range_lookup(sorted_keys, queries):
    """Positions of all ``sorted_keys`` entries matching sorted ``queries``.

    Returns ``(positions, query_indices)`` in query-major order; the
    caller gathers its parallel value array at ``positions``.
    """
    lo = np.searchsorted(sorted_keys, queries, side="left")
    hi = np.searchsorted(sorted_keys, queries, side="right")
    return _np_expand_ranges(lo, hi)


def _np_tail_probe(queries, tail_keys):
    """Match each tail key against sorted unique ``queries``.

    Returns ``(tail_indices, query_indices)`` for the tail entries whose
    key occurs in ``queries`` (tail order). ``queries`` must be
    non-empty.
    """
    q = queries.shape[0]
    pos = np.searchsorted(queries, tail_keys)
    np.minimum(pos, q - 1, out=pos)
    hit = queries[pos] == tail_keys
    return np.flatnonzero(hit), pos[hit]


def _np_pack_index_sort(values, shift):
    """Sorted ``(values[i] << shift) | i`` -- the stable-sort-by-pack trick.

    ``shift`` must exceed ``bit_length(len(values) - 1)`` so the index
    bits never collide; the result is then a stable (value, position)
    order in one quicksort.
    """
    packed = (values << shift) | np.arange(values.shape[0], dtype=np.int64)
    packed.sort()
    return packed


def _np_pack2_index_sort(hi_vals, lo_vals, lo_shift, idx_shift):
    """Sorted ``(((hi << lo_shift) | lo) << idx_shift) | i`` packing."""
    packed = (((hi_vals << lo_shift) | lo_vals) << idx_shift) | np.arange(
        hi_vals.shape[0], dtype=np.int64
    )
    packed.sort()
    return packed


def _np_pack_sort_pairs(keys, slots, shift):
    """Sorted ``(keys << shift) | slots`` (key-major, slot-minor)."""
    packed = (keys << shift) | slots
    packed.sort()
    return packed


def _np_pack_edge_keys(a, b):
    """Canonical packed edge keys ``(min << 32) | max`` per pair."""
    return (np.minimum(a, b) << np.int64(32)) | np.maximum(a, b)


def _np_wedge_geometry(r1u, r1v, r2u, r2v):
    """Shared vertex, outer endpoints, and closing key of each wedge.

    The shared vertex is the endpoint ``r1`` and ``r2`` have in common;
    the two outer endpoints form the closing edge, returned packed as
    a canonical int64 key.
    """
    shared = np.where((r1u == r2u) | (r1u == r2v), r1u, r1v)
    out1 = r1u + r1v - shared
    out2 = r2u + r2v - shared
    keys = (np.minimum(out1, out2) << np.int64(32)) | np.maximum(out1, out2)
    return shared, out1, out2, keys


def _np_phi_from_draws(draws, totals):
    """Algorithm 3's ``randInt(1, total)`` from uniform float64 draws.

    ``1 + int64(draw * total)`` clamped to ``total`` -- the clamp closes
    the rounding hole where a draw close to 1 against a large total
    rounds the product up to ``total`` itself (see the phi-clamp
    regression tests). Exact float64 multiply + C truncation, so every
    backend reproduces it bit for bit.
    """
    phi = 1 + (draws * totals).astype(np.int64)
    np.minimum(phi, totals, out=phi)
    return phi


def _np_step2_totals(deg_bx, deg_by, beta_x, beta_y, c_minus):
    """Observation 3.6's candidate counts: ``(a, c_plus, total)``.

    ``a`` is the new-candidate count on the ``x`` side, ``c_plus`` the
    total new candidates, ``total = c_minus + c_plus`` the updated
    running count.
    """
    a = deg_bx - beta_x
    c_plus = a + (deg_by - beta_y)
    return a, c_plus, c_minus + c_plus


def _build_numpy_backend() -> Backend:
    return Backend(
        "numpy",
        {
            "lookup_sorted": _np_lookup_sorted,
            "expand_ranges": _np_expand_ranges,
            "packed_range_lookup": _np_packed_range_lookup,
            "sorted_range_lookup": _np_sorted_range_lookup,
            "tail_probe": _np_tail_probe,
            "pack_index_sort": _np_pack_index_sort,
            "pack2_index_sort": _np_pack2_index_sort,
            "pack_sort_pairs": _np_pack_sort_pairs,
            "pack_edge_keys": _np_pack_edge_keys,
            "wedge_geometry": _np_wedge_geometry,
            "phi_from_draws": _np_phi_from_draws,
            "step2_totals": _np_step2_totals,
        },
    )


# ----------------------------------------------------------------------
# registry and selection
# ----------------------------------------------------------------------
_BACKENDS: dict[str, Backend] = {}
_ACTIVE: Backend | None = None


def numba_available() -> bool:
    """Whether the numba package is importable (no import side effects)."""
    import importlib.util

    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic paths
        return False


def available_backends() -> tuple[str, ...]:
    """The backend names :func:`get_backend` can serve right now."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def resolve_name(name: str | None = None) -> str:
    """Resolve a requested backend name to a concrete one.

    ``None`` defers to the ``REPRO_BACKEND`` environment variable, then
    to ``auto``. ``auto`` picks numba when importable, numpy otherwise.
    An explicit ``numba`` request on a numba-less environment raises --
    silent degradation is reserved for ``auto``.
    """
    if name is None:
        name = os.environ.get(_ENV_VAR) or "auto"
    name = name.strip().lower()
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name not in ("numpy", "numba"):
        raise InvalidParameterError(
            f"unknown backend {name!r}; choose numpy, numba, or auto"
        )
    if name == "numba" and not numba_available():
        raise InvalidParameterError(
            "backend 'numba' requested but numba is not installed; "
            "pip install 'repro[numba]' or use REPRO_BACKEND=numpy"
        )
    return name


def get_backend(name: str | None = None) -> Backend:
    """Build (once) and return the backend for ``name`` (default: auto).

    The numba backend compiles nothing here -- kernels JIT on first
    call -- but the build does import numba, so an ``auto`` resolution
    falls back to numpy if that import fails in a broken install.
    """
    resolved = resolve_name(name)
    backend = _BACKENDS.get(resolved)
    if backend is not None:
        return backend
    if resolved == "numpy":
        backend = _build_numpy_backend()
    else:
        try:
            from . import _backend_numba

            backend = Backend("numba", _backend_numba.build_kernels())
        except Exception as exc:
            if name is not None and name.strip().lower() == "numba":
                raise InvalidParameterError(
                    f"backend 'numba' failed to initialize: {exc}"
                ) from exc
            # auto resolution: a broken numba install degrades to numpy.
            backend = get_backend("numpy")
            _BACKENDS[resolved] = backend
            return backend
    _BACKENDS[resolved] = backend
    return backend


def active() -> Backend:
    """The process-wide active backend (resolved lazily on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend(None)
    return _ACTIVE


def set_backend(name: str | None) -> Backend:
    """Set the process-wide backend; returns the activated backend.

    ``None`` re-resolves from the environment (the CLI's default).
    """
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


@contextmanager
def use(name: str | None):
    """Temporarily activate a backend (test parametrization helper)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = get_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def warmup(backend: Backend | None = None) -> Backend:
    """Force-compile every kernel on tiny inputs; returns the backend.

    For the numba backend this is the cold-start JIT cost, paid here
    instead of inside the first real batch (which would pollute
    timing-sensitive callers); for numpy it is a cheap no-op pass that
    doubles as a smoke test of the kernel contract.
    """
    b = backend or active()
    i64 = np.array([0, 1], dtype=np.int64)
    b.lookup_sorted(i64, np.array([0, 2], dtype=np.int64), i64, 1)
    b.expand_ranges(np.array([0], dtype=np.int64), np.array([1], dtype=np.int64))
    b.packed_range_lookup(np.array([2, 5], dtype=np.int64), np.int64(1), i64)
    b.sorted_range_lookup(np.array([0, 1], dtype=np.int64), i64)
    b.tail_probe(np.array([0, 3], dtype=np.int64), i64)
    b.pack_index_sort(i64, np.int64(1))
    b.pack2_index_sort(i64, i64, np.int64(1), np.int64(1))
    b.pack_sort_pairs(i64, i64, np.int64(1))
    b.pack_edge_keys(i64, np.array([2, 3], dtype=np.int64))
    b.wedge_geometry(
        np.array([0], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([2], dtype=np.int64),
    )
    b.phi_from_draws(np.array([0.5], dtype=np.float64), np.array([4], dtype=np.int64))
    b.step2_totals(i64, i64, i64, i64, i64)
    return b
