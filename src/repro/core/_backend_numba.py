"""Numba ``@njit`` implementations of the hot kernels.

Imported lazily by :mod:`repro.core.backend` -- never at package import
time -- so a numba-less environment pays nothing. Each kernel here is a
fused single-pass loop reproducing the *exact* output contract of its
NumPy reference in ``backend.py``: same dtypes, same element order,
same integer arithmetic, and for :func:`phi_from_draws` the same
IEEE-754 float64 multiply followed by C truncation to int64 (``astype``
and numba's ``int64()`` cast are both C casts), so golden-state
fingerprints match bit for bit across backends.

Binary searches are hand-rolled (``_bisect_left``/``_bisect_right``)
rather than going through ``np.searchsorted`` inside ``@njit``: the
loops fuse the search with the gather/compare that follows, which is
where the speedup over the reference comes from (no temporaries, one
memory pass). Range expansions use the count-then-fill two-pass shape
so output ordering matches ``np.repeat``-based references exactly.
"""

from __future__ import annotations

import numpy as np


def build_kernels() -> dict:
    """Compile-on-first-call kernel dict for ``Backend("numba", ...)``.

    Raises ImportError when numba is absent; ``backend.get_backend``
    turns that into a numpy fallback (auto) or a hard error (explicit).
    """
    from numba import int64, njit

    jit = njit(cache=True, nogil=True)

    @jit
    def _bisect_left(arr, value):
        lo, hi = 0, arr.shape[0]
        while lo < hi:
            mid = (lo + hi) >> 1
            if arr[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @jit
    def _bisect_right(arr, value):
        lo, hi = 0, arr.shape[0]
        while lo < hi:
            mid = (lo + hi) >> 1
            if arr[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @jit
    def lookup_sorted(queries, sorted_ref, values, offset):
        n = queries.shape[0]
        top = sorted_ref.shape[0] - 1
        out = np.zeros(n, dtype=np.int64)
        for i in range(n):
            q = queries[i]
            pos = _bisect_left(sorted_ref, q)
            if pos > top:
                pos = top
            if sorted_ref[pos] == q:
                out[i] = values[pos] + offset
        return out

    @jit
    def expand_ranges(lo, hi):
        n = lo.shape[0]
        total = 0
        for i in range(n):
            total += hi[i] - lo[i]
        positions = np.empty(total, dtype=np.int64)
        query_idx = np.empty(total, dtype=np.int64)
        k = 0
        for i in range(n):
            for pos in range(lo[i], hi[i]):
                positions[k] = pos
                query_idx[k] = i
                k += 1
        return positions, query_idx

    @jit
    def packed_range_lookup(packed, shift, queries):
        n = queries.shape[0]
        lo = np.empty(n, dtype=np.int64)
        hi = np.empty(n, dtype=np.int64)
        total = 0
        for i in range(n):
            q = queries[i]
            lo[i] = _bisect_left(packed, q << shift)
            hi[i] = _bisect_left(packed, (q + 1) << shift)
            total += hi[i] - lo[i]
        slots = np.empty(total, dtype=np.int64)
        query_idx = np.empty(total, dtype=np.int64)
        mask = (int64(1) << shift) - 1
        k = 0
        for i in range(n):
            for pos in range(lo[i], hi[i]):
                slots[k] = packed[pos] & mask
                query_idx[k] = i
                k += 1
        return slots, query_idx

    @jit
    def sorted_range_lookup(sorted_keys, queries):
        n = queries.shape[0]
        lo = np.empty(n, dtype=np.int64)
        hi = np.empty(n, dtype=np.int64)
        total = 0
        for i in range(n):
            q = queries[i]
            lo[i] = _bisect_left(sorted_keys, q)
            hi[i] = _bisect_right(sorted_keys, q)
            total += hi[i] - lo[i]
        positions = np.empty(total, dtype=np.int64)
        query_idx = np.empty(total, dtype=np.int64)
        k = 0
        for i in range(n):
            for pos in range(lo[i], hi[i]):
                positions[k] = pos
                query_idx[k] = i
                k += 1
        return positions, query_idx

    @jit
    def tail_probe(queries, tail_keys):
        m = tail_keys.shape[0]
        q = queries.shape[0]
        hits = 0
        pos_buf = np.empty(m, dtype=np.int64)
        hit_buf = np.empty(m, dtype=np.bool_)
        for i in range(m):
            pos = _bisect_left(queries, tail_keys[i])
            if pos > q - 1:
                pos = q - 1
            pos_buf[i] = pos
            hit = queries[pos] == tail_keys[i]
            hit_buf[i] = hit
            if hit:
                hits += 1
        tail_idx = np.empty(hits, dtype=np.int64)
        query_idx = np.empty(hits, dtype=np.int64)
        k = 0
        for i in range(m):
            if hit_buf[i]:
                tail_idx[k] = i
                query_idx[k] = pos_buf[i]
                k += 1
        return tail_idx, query_idx

    @jit
    def pack_index_sort(values, shift):
        n = values.shape[0]
        packed = np.empty(n, dtype=np.int64)
        for i in range(n):
            packed[i] = (values[i] << shift) | i
        packed.sort()
        return packed

    @jit
    def pack2_index_sort(hi_vals, lo_vals, lo_shift, idx_shift):
        n = hi_vals.shape[0]
        packed = np.empty(n, dtype=np.int64)
        for i in range(n):
            packed[i] = (((hi_vals[i] << lo_shift) | lo_vals[i]) << idx_shift) | i
        packed.sort()
        return packed

    @jit
    def pack_sort_pairs(keys, slots, shift):
        n = keys.shape[0]
        packed = np.empty(n, dtype=np.int64)
        for i in range(n):
            packed[i] = (keys[i] << shift) | slots[i]
        packed.sort()
        return packed

    @jit
    def pack_edge_keys(a, b):
        n = a.shape[0]
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            x = a[i]
            y = b[i]
            if x <= y:
                out[i] = (x << 32) | y
            else:
                out[i] = (y << 32) | x
        return out

    @jit
    def wedge_geometry(r1u, r1v, r2u, r2v):
        n = r1u.shape[0]
        shared = np.empty(n, dtype=np.int64)
        out1 = np.empty(n, dtype=np.int64)
        out2 = np.empty(n, dtype=np.int64)
        keys = np.empty(n, dtype=np.int64)
        for i in range(n):
            a = r1u[i]
            b = r1v[i]
            c = r2u[i]
            d = r2v[i]
            s = a if (a == c or a == d) else b
            o1 = a + b - s
            o2 = c + d - s
            shared[i] = s
            out1[i] = o1
            out2[i] = o2
            if o1 <= o2:
                keys[i] = (o1 << 32) | o2
            else:
                keys[i] = (o2 << 32) | o1
        return shared, out1, out2, keys

    @jit
    def phi_from_draws(draws, totals):
        n = draws.shape[0]
        phi = np.empty(n, dtype=np.int64)
        for i in range(n):
            # float64 multiply then C truncation: identical to
            # (draws * totals).astype(np.int64) element by element.
            value = 1 + int64(draws[i] * totals[i])
            t = totals[i]
            phi[i] = value if value < t else t
        return phi

    @jit
    def step2_totals(deg_bx, deg_by, beta_x, beta_y, c_minus):
        n = deg_bx.shape[0]
        a = np.empty(n, dtype=np.int64)
        c_plus = np.empty(n, dtype=np.int64)
        total = np.empty(n, dtype=np.int64)
        for i in range(n):
            ai = deg_bx[i] - beta_x[i]
            cp = ai + (deg_by[i] - beta_y[i])
            a[i] = ai
            c_plus[i] = cp
            total[i] = c_minus[i] + cp
        return a, c_plus, total

    return {
        "lookup_sorted": lookup_sorted,
        "expand_ranges": expand_ranges,
        "packed_range_lookup": packed_range_lookup,
        "sorted_range_lookup": sorted_range_lookup,
        "tail_probe": tail_probe,
        "pack_index_sort": pack_index_sort,
        "pack2_index_sort": pack2_index_sort,
        "pack_sort_pairs": pack_sort_pairs,
        "pack_edge_keys": pack_edge_keys,
        "wedge_geometry": wedge_geometry,
        "phi_from_draws": phi_from_draws,
        "step2_totals": step2_totals,
    }
