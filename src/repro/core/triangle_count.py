"""Triangle counting from a graph stream (Theorems 3.3 and 3.4).

:class:`TriangleCounter` runs ``r`` independent neighborhood-sampling
estimators and aggregates their unbiased estimates, either by the plain
average (Theorem 3.3) or by median-of-means (the aggregation used in the
tangle-coefficient bound, Theorem 3.4).

Three interchangeable engines hold the estimator states:

- ``"reference"`` -- one Python object per estimator, updated per edge
  (Algorithm 1 verbatim; O(m r) total time -- for tests and teaching);
- ``"bulk"`` -- the faithful table-driven batch algorithm of Section 3.3
  (O(m + r) per stream when the batch size is Theta(r));
- ``"vectorized"`` -- numpy array state, same semantics as ``bulk``
  (the default; fastest at large ``r``).
"""

from __future__ import annotations

import statistics
from collections.abc import Sequence

import numpy as np

from ..errors import EmptyStreamError, InvalidParameterError
from ..rng import RandomSource
from ..streaming.registry import ENGINES, register_engine
from .accuracy import estimators_needed
# The bulk/vectorized imports also register those engines (decorator
# side effect); re-exported for callers that address them directly.
from .bulk import BulkTriangleCounter  # noqa: F401
from .neighborhood_sampling import NeighborhoodSampler
from .vectorized import VectorizedTriangleCounter  # noqa: F401

__all__ = [
    "ReferenceTriangleCounter",
    "TriangleCounter",
    "aggregate_mean",
    "aggregate_median_of_means",
]


def aggregate_mean(estimates: Sequence[float] | np.ndarray) -> float:
    """Average of per-estimator estimates (Theorem 3.3's aggregator)."""
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.size == 0:
        raise EmptyStreamError("no estimates to aggregate")
    return float(arr.mean())


def aggregate_median_of_means(
    estimates: Sequence[float] | np.ndarray, groups: int
) -> float:
    """Median of group means (Theorem 3.4's aggregator).

    Splits the estimates into ``groups`` contiguous groups of (near-)
    equal size, averages within each group, and returns the median of
    the group means. With ``groups ~ 12 ln(1/delta)`` this boosts a
    constant-probability Chebyshev guarantee to probability ``1 - delta``.
    """
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.size == 0:
        raise EmptyStreamError("no estimates to aggregate")
    if groups < 1:
        raise InvalidParameterError(f"groups must be >= 1, got {groups}")
    groups = min(groups, arr.size)
    means = [float(chunk.mean()) for chunk in np.array_split(arr, groups)]
    return statistics.median(means)


@register_engine("reference")
class ReferenceTriangleCounter:
    """Engine adapter over ``r`` independent :class:`NeighborhoodSampler` s.

    Each sampler gets its own random source derived from ``seed``, so a
    run is reproducible yet the estimators are independent.
    """

    def __init__(self, num_estimators: int, *, seed: int | None = None) -> None:
        if num_estimators < 1:
            raise InvalidParameterError(
                f"num_estimators must be >= 1, got {num_estimators}"
            )
        root = RandomSource(seed)
        self._samplers = [
            NeighborhoodSampler(rng=root.spawn()) for _ in range(num_estimators)
        ]
        self.edges_seen = 0

    @property
    def num_estimators(self) -> int:
        return len(self._samplers)

    def update(self, edge: tuple[int, int]) -> None:
        for sampler in self._samplers:
            sampler.update(edge)
        self.edges_seen += 1

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        for edge in batch:
            self.update(edge)

    def estimates(self) -> list[float]:
        return [s.triangle_estimate() for s in self._samplers]

    def estimate(self) -> float:
        """Mean of the per-estimator estimates (Theorem 3.3 aggregation)."""
        values = self.estimates()
        return sum(values) / len(values)

    def wedge_estimates(self) -> list[float]:
        return [s.wedge_estimate() for s in self._samplers]

    def samplers(self) -> list[NeighborhoodSampler]:
        return self._samplers


class TriangleCounter:
    """(eps, delta)-approximate triangle counting over an edge stream.

    Parameters
    ----------
    num_estimators:
        The number ``r`` of parallel unbiased estimators. Size it with
        :func:`repro.core.accuracy.estimators_needed` (Theorem 3.3) or
        :meth:`from_accuracy`.
    engine:
        ``"vectorized"`` (default), ``"bulk"``, ``"reference"``, or any
        name added to :data:`repro.streaming.ENGINES` via
        :func:`repro.streaming.register_engine`.
    aggregation:
        ``"mean"`` (Theorem 3.3) or ``"median-of-means"``
        (Theorem 3.4); the latter uses ``groups`` groups.
    seed:
        Seed for reproducible runs.

    Examples
    --------
    >>> counter = TriangleCounter(2000, seed=7)
    >>> counter.update_batch([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> round(counter.estimate(), 1) >= 0.0
    True
    """

    def __init__(
        self,
        num_estimators: int,
        *,
        engine: str = "vectorized",
        aggregation: str = "mean",
        groups: int = 16,
        seed: int | None = None,
    ) -> None:
        engine_cls = ENGINES.get(engine)
        if aggregation not in ("mean", "median-of-means"):
            raise InvalidParameterError(
                f"unknown aggregation {aggregation!r}; "
                "expected 'mean' or 'median-of-means'"
            )
        # Construction-time configuration: a resumed counter is rebuilt
        # by its factory with the same arguments, and the engine's own
        # state travels through the delegated state_dict/load_state_dict.
        self._engine = engine_cls(num_estimators, seed=seed)  # repro: derived
        self._engine_name = engine  # repro: derived
        self._aggregation = aggregation  # repro: derived
        self._groups = groups  # repro: derived

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_accuracy(
        cls,
        eps: float,
        delta: float,
        *,
        m: int,
        max_degree: int,
        triangles: int,
        **kwargs,
    ) -> "TriangleCounter":
        """Size the estimator pool per Theorem 3.3 and build the counter.

        ``m``, ``max_degree`` and ``triangles`` are (estimates of) the
        stream's parameters; the theorem's ``r`` is conservative, and the
        paper's experiments show far fewer estimators usually suffice.
        """
        r = estimators_needed(
            eps, delta, m=m, max_degree=max_degree, triangles=triangles
        )
        return cls(r, **kwargs)

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    @property
    def num_estimators(self) -> int:
        return self._engine.num_estimators

    @property
    def edges_seen(self) -> int:
        return self._engine.edges_seen

    @property
    def engine(self):
        """The underlying engine (exposed for tests and diagnostics)."""
        return self._engine

    @property
    def engine_name(self) -> str:
        return self._engine_name

    def update(self, edge: tuple[int, int]) -> None:
        """Observe one stream edge."""
        self._engine.update(edge)

    def update_batch(self, batch: Sequence[tuple[int, int]]) -> None:
        """Observe a batch of stream edges (order within the batch counts)."""
        self._engine.update_batch(batch)

    @property
    def uses_batch_context(self) -> bool:
        """Whether the engine reads the shared per-batch array index."""
        return getattr(self._engine, "uses_batch_context", True)

    def update_prepared(self, batch) -> None:
        """Columnar fast path: forward a prepared
        :class:`~repro.streaming.batch.EdgeBatch` to the engine's
        ``update_prepared`` when it has one (the vectorized and bulk
        engines do), else to ``update_batch``."""
        fast = getattr(self._engine, "update_prepared", None)
        if fast is not None:
            fast(batch)
        else:
            self._engine.update_batch(batch)

    def state_dict(self) -> dict:
        """The engine's serializable state (checkpoint/ship surface).

        Only engines that implement the
        :class:`~repro.streaming.protocol.CheckpointableEstimator`
        protocol (the vectorized one does) support this.
        """
        return self._checkpointable("state_dict")()

    def load_state_dict(self, state: dict) -> None:
        """Restore an engine snapshot in place (see :meth:`state_dict`)."""
        self._checkpointable("load_state_dict")(state)

    def merge(self, other: "TriangleCounter") -> None:
        """Absorb ``other``'s estimator pool (same stream observed)."""
        engine = other._engine if isinstance(other, TriangleCounter) else other
        self._checkpointable("merge")(engine)

    def _checkpointable(self, method: str):
        op = getattr(self._engine, method, None)
        if op is None:
            raise InvalidParameterError(
                f"engine {self._engine_name!r} does not support {method}()"
            )
        return op

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimates(self):
        """Per-estimator unbiased estimates ``tau~``."""
        return self._engine.estimates()

    def estimate(self) -> float:
        """The aggregated triangle-count estimate."""
        if self._aggregation == "mean":
            return aggregate_mean(self.estimates())
        return aggregate_median_of_means(self.estimates(), self._groups)

    def fraction_holding_triangle(self) -> float:
        """Fraction of estimators whose ``t`` is set.

        The diagnostic behind the paper's Buriol-et-al. comparison: an
        algorithm whose samplers rarely complete a triangle produces
        low-quality estimates.
        """
        estimates = np.asarray(self._engine.estimates())
        if estimates.size == 0:
            return 0.0
        return float((estimates > 0).mean())
