"""The paper's contribution: neighborhood sampling and everything on top.

Every estimator here satisfies the
:class:`~repro.streaming.protocol.StreamingEstimator` protocol
(``update_batch`` + ``estimate``), so any of them can be driven by the
:class:`~repro.streaming.Pipeline` fan-out runner or fed from a lazy
:class:`~repro.streaming.EdgeSource`. The three triangle-counter
engines self-register into :data:`repro.streaming.ENGINES`; the
user-facing algorithms register specs in
:data:`repro.streaming.ESTIMATORS`.

- :mod:`repro.core.neighborhood_sampling` -- Algorithm 1 (per-edge
  reference implementation of a single estimator);
- :mod:`repro.core.triangle_count` -- the (eps, delta) triangle counter:
  estimator arrays, mean and median-of-means aggregation, engine
  selection by registry name (reference / bulk / vectorized / yours);
- :mod:`repro.core.accuracy` -- the sizing formulas of Theorems 3.3,
  3.4, 3.8 and Lemma 3.11;
- :mod:`repro.core.bulk` -- Section 3.3 bulk processing (``bulkTC``);
- :mod:`repro.core.vectorized` -- numpy array engine with the same
  semantics as ``bulkTC`` (also the checkpoint/merge substrate);
- :mod:`repro.core.triangle_sample` -- uniform triangle sampling
  (Lemma 3.7, Theorem 3.8);
- :mod:`repro.core.transitivity` -- wedge and transitivity estimation
  (Section 3.5);
- :mod:`repro.core.parallel` -- estimator-pool sharding across
  processes, fed batch-by-batch from a single stream read;
- :mod:`repro.core.checkpoint` -- state persistence and pool merging;
- :mod:`repro.core.cliques4` / :mod:`repro.core.cliques` -- 4-clique and
  general l-clique counting (Section 5.1);
- :mod:`repro.core.sliding_window` / :mod:`repro.core.timed_window` --
  windowed triangle counting (Section 5.2);
- :mod:`repro.core.triest_fd` / :mod:`repro.core.dynamic_sampler` --
  deletion-capable triangle counting over fully-dynamic (turnstile)
  streams.
"""

from .accuracy import (
    error_bound,
    estimators_needed,
    estimators_needed_sampling,
    estimators_needed_tangle,
    estimators_needed_wedges,
    s_eps_delta,
)
from .checkpoint import from_state_dict, merge_counters, to_state_dict
from .cliques import CliqueCounter
from .cliques4 import CliqueCounter4, FourCliqueSamplerTypeI, FourCliqueSamplerTypeII
from .dynamic_sampler import DynamicGraphSampler, DynamicSamplerCounter
from .incidence import IncidenceStream, IncidenceTriangleCounter
from .neighborhood_sampling import NeighborhoodSampler
from .parallel import ParallelTriangleCounter, count_triangles_parallel
from .timed_window import TimedWindowSampler, TimedWindowTriangleCounter
from .sliding_window import SlidingWindowTriangleCounter
from .transitivity import TransitivityEstimator, WedgeCounter
from .triangle_count import TriangleCounter, aggregate_mean, aggregate_median_of_means
from .triangle_sample import TriangleSampler
from .triest_fd import TriestFdCounter, TriestFdSampler

__all__ = [
    "CliqueCounter",
    "CliqueCounter4",
    "DynamicGraphSampler",
    "DynamicSamplerCounter",
    "FourCliqueSamplerTypeI",
    "FourCliqueSamplerTypeII",
    "IncidenceStream",
    "IncidenceTriangleCounter",
    "NeighborhoodSampler",
    "ParallelTriangleCounter",
    "TimedWindowSampler",
    "TimedWindowTriangleCounter",
    "count_triangles_parallel",
    "from_state_dict",
    "merge_counters",
    "to_state_dict",
    "SlidingWindowTriangleCounter",
    "TransitivityEstimator",
    "TriangleCounter",
    "TriangleSampler",
    "TriestFdCounter",
    "TriestFdSampler",
    "WedgeCounter",
    "aggregate_mean",
    "aggregate_median_of_means",
    "error_bound",
    "estimators_needed",
    "estimators_needed_sampling",
    "estimators_needed_tangle",
    "estimators_needed_wedges",
    "s_eps_delta",
]
