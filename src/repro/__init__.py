"""repro: counting and sampling triangles (and cliques) from a graph stream.

A from-scratch reproduction of:

    A. Pavan, Kanat Tangwongsan, Srikanta Tirthapura, Kun-Lung Wu.
    "Counting and Sampling Triangles from a Graph Stream."
    PVLDB 6(14): 1870-1881, 2013.

Quickstart
----------
>>> from repro import TriangleCounter, exact_triangle_count
>>> from repro.generators import holme_kim
>>> edges = holme_kim(500, 4, 0.5, seed=1)
>>> counter = TriangleCounter(num_estimators=4000, seed=7)
>>> counter.update_batch(edges)
>>> true = exact_triangle_count(edges)
>>> abs(counter.estimate() - true) / true < 0.5
True

The main entry points:

- :class:`TriangleCounter` -- (eps, delta)-approximate triangle counting
  (Theorems 3.3/3.4) with three interchangeable engines;
- :class:`TriangleSampler` -- uniform triangle sampling (Theorem 3.8);
- :class:`TransitivityEstimator` / :class:`WedgeCounter` -- Section 3.5;
- :class:`CliqueCounter4` / :class:`CliqueCounter` /
  :class:`CliqueSampler` -- 4-cliques and general ``K_l`` (Section 5.1);
- :class:`SlidingWindowTriangleCounter` -- Section 5.2;
- :mod:`repro.streaming` -- the one-pass pipeline: lazy
  :class:`~repro.streaming.EdgeSource` s, the
  :class:`~repro.streaming.StreamingEstimator` protocol, the
  engine/estimator registries, and the :class:`~repro.streaming.Pipeline`
  fan-out runner that feeds many estimators from a single stream read;
- :mod:`repro.exact` -- exact ground-truth counters;
- :mod:`repro.generators` -- synthetic workloads and named datasets;
- :mod:`repro.baselines` -- Jowhari-Ghodsi, Buriol et al.,
  Pagh-Tsourakakis, and an exact streaming counter;
- :mod:`repro.theory` -- the Theorem 3.13 lower-bound protocol and the
  related-work space-bound catalogue;
- :mod:`repro.experiments` -- runners for every table and figure.
"""

from ._version import __version__
from .core.accuracy import (
    error_bound,
    estimators_needed,
    estimators_needed_sampling,
    estimators_needed_tangle,
    estimators_needed_wedges,
    s_eps_delta,
)
from .core.cliques import CliqueCounter, CliqueSampler
from .core.cliques4 import CliqueCounter4
from .core.neighborhood_sampling import NeighborhoodSampler
from .core.sliding_window import SlidingWindowTriangleCounter
from .core.transitivity import TransitivityEstimator, WedgeCounter
from .core.triangle_count import TriangleCounter
from .core.triangle_sample import TriangleSampler
from .errors import (
    CheckpointWriteWarning,
    DuplicateEdgeError,
    EdgeNotFoundError,
    EmptyStreamError,
    InjectedFaultError,
    InsufficientSampleError,
    InvalidEdgeError,
    InvalidParameterError,
    ReproError,
    ReproWarning,
    RetryExhaustedError,
    SourceExhaustedError,
    SourceRetryWarning,
    SourceRotatedWarning,
    WorkerCrashedError,
    WorkerRestartedWarning,
)
from .exact.cliques import count_cliques as exact_clique_count
from .exact.tangle import tangle_coefficient
from .exact.triangles import count_triangles as exact_triangle_count
from .exact.wedges import count_wedges as exact_wedge_count
from .exact.wedges import transitivity_coefficient
from .graph.static_graph import StaticGraph
from .graph.stream import EdgeStream
from .rng import RandomSource
from .streaming import (
    EdgeSource,
    FileSource,
    IterableSource,
    MemorySource,
    Pipeline,
    StreamingEstimator,
    as_source,
)

__all__ = [
    "CheckpointWriteWarning",
    "CliqueCounter",
    "CliqueCounter4",
    "CliqueSampler",
    "DuplicateEdgeError",
    "EdgeNotFoundError",
    "EdgeSource",
    "EdgeStream",
    "EmptyStreamError",
    "FileSource",
    "InjectedFaultError",
    "InsufficientSampleError",
    "InvalidEdgeError",
    "InvalidParameterError",
    "IterableSource",
    "MemorySource",
    "NeighborhoodSampler",
    "Pipeline",
    "RandomSource",
    "ReproError",
    "ReproWarning",
    "RetryExhaustedError",
    "SlidingWindowTriangleCounter",
    "SourceExhaustedError",
    "SourceRetryWarning",
    "SourceRotatedWarning",
    "StaticGraph",
    "StreamingEstimator",
    "TransitivityEstimator",
    "TriangleCounter",
    "TriangleSampler",
    "WedgeCounter",
    "WorkerCrashedError",
    "WorkerRestartedWarning",
    "__version__",
    "as_source",
    "error_bound",
    "estimators_needed",
    "estimators_needed_sampling",
    "estimators_needed_tangle",
    "estimators_needed_wedges",
    "exact_clique_count",
    "exact_triangle_count",
    "exact_wedge_count",
    "s_eps_delta",
    "tangle_coefficient",
    "transitivity_coefficient",
]
