"""Graph substrate: edges, static graphs, and edge streams.

This subpackage provides the data model shared by every algorithm in the
library:

- :mod:`repro.graph.edge` -- canonical undirected edges;
- :mod:`repro.graph.static_graph` -- an in-memory adjacency structure
  used by the exact counters and the generators;
- :mod:`repro.graph.stream` -- the adjacency-stream abstraction
  (arbitrary edge order, batching, position tracking);
- :mod:`repro.graph.io` -- plain-text edge-list reading and writing.
"""

from .edge import canonical_edge, edge_vertices, edges_adjacent, shared_vertex, third_vertices
from .io import read_edge_list, write_edge_list, write_signed_edge_list
from .static_graph import StaticGraph
from .stream import EdgeStream, batched

__all__ = [
    "EdgeStream",
    "StaticGraph",
    "batched",
    "canonical_edge",
    "edge_vertices",
    "edges_adjacent",
    "read_edge_list",
    "shared_vertex",
    "third_vertices",
    "write_edge_list",
    "write_signed_edge_list",
]
