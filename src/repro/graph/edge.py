"""Canonical undirected edges.

Throughout the library an edge is a tuple ``(u, v)`` of integer vertex
ids with ``u < v`` (the *canonical* form). Using plain tuples keeps the
hot per-edge loops allocation-light and lets edges be dict/set keys.
"""

from __future__ import annotations

from ..errors import InvalidEdgeError

Edge = tuple[int, int]

__all__ = [
    "Edge",
    "canonical_edge",
    "edge_vertices",
    "edges_adjacent",
    "shared_vertex",
    "third_vertices",
]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of the edge ``{u, v}``.

    Raises
    ------
    InvalidEdgeError
        If ``u == v`` (self-loop) -- the paper assumes simple graphs.
    """
    if u == v:
        raise InvalidEdgeError(f"self-loop at vertex {u} is not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


def edge_vertices(e: Edge) -> tuple[int, int]:
    """Return the two endpoints of ``e`` (the paper's ``V(e)``)."""
    return e


def edges_adjacent(e: Edge, f: Edge) -> bool:
    """Return whether distinct edges ``e`` and ``f`` share an endpoint."""
    if e == f:
        return False
    return e[0] in f or e[1] in f


def shared_vertex(e: Edge, f: Edge) -> int | None:
    """Return the vertex shared by ``e`` and ``f``, or ``None``.

    For edges of a simple graph two distinct edges share at most one
    vertex, so the return value is unique when it exists.
    """
    if e == f:
        return None
    if e[0] in f:
        return e[0]
    if e[1] in f:
        return e[1]
    return None


def third_vertices(e: Edge, f: Edge) -> tuple[int, int] | None:
    """Return the non-shared endpoints of adjacent edges ``e`` and ``f``.

    If ``e`` and ``f`` form a wedge (share exactly one vertex), the
    returned pair are the wedge's outer endpoints -- i.e., the edge that
    would close the triangle. Returns ``None`` if the edges are not
    adjacent or are identical.
    """
    s = shared_vertex(e, f)
    if s is None:
        return None
    a = e[0] if e[1] == s else e[1]
    b = f[0] if f[1] == s else f[1]
    if a == b:  # parallel edges cannot occur in a simple stream, but be safe
        return None
    return (a, b) if a < b else (b, a)
