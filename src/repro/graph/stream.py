"""The adjacency-stream abstraction.

The paper's model presents a graph as an arbitrarily-ordered sequence of
edges ``<e1, ..., em>``. :class:`EdgeStream` is a concrete, replayable
realization of that model: it owns an edge order, can shuffle it under a
seed (the paper's experiments use five random stream orders), can slice
itself into batches for the bulk algorithm of Section 3.3, and exposes
the graph statistics that the space bounds reference (``m``, ``Delta``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..errors import DuplicateEdgeError, EdgeNotFoundError
from ..rng import RandomSource
from .edge import Edge, canonical_edge
from .static_graph import StaticGraph

__all__ = ["EdgeStream", "batched"]


def batched(edges: Sequence[Edge], batch_size: int) -> Iterator[Sequence[Edge]]:
    """Yield consecutive slices of ``edges`` of length ``batch_size``.

    The final slice may be shorter. ``batch_size`` must be positive.
    This is the batching discipline assumed by ``bulkTC``
    (Theorem 3.5): a stream of ``m`` edges is processed in
    ``ceil(m / w)`` batches.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for start in range(0, len(edges), batch_size):
        yield edges[start : start + batch_size]


class EdgeStream:
    """A replayable adjacency stream over a simple graph.

    Parameters
    ----------
    edges:
        The stream, in order. Orientation of each pair is irrelevant;
        edges are canonicalized.
    validate:
        When ``True`` (default), reject duplicate edges -- the paper
        assumes the input graph is simple.

    Notes
    -----
    The stream stores its edges in a list so it can be replayed for
    multi-trial experiments and sliced into batches. 1-based stream
    positions (as in the paper, where ``e_i`` is the ``i``-th edge)
    are used by :meth:`position_of` and throughout
    :mod:`repro.core.bulk`.
    """

    def __init__(self, edges: Iterable[tuple[int, int]], *, validate: bool = True) -> None:
        canon = [canonical_edge(u, v) for u, v in edges]
        if validate:
            seen: set[Edge] = set()
            for e in canon:
                if e in seen:
                    raise DuplicateEdgeError(f"edge {e} appears twice in the stream")
                seen.add(e)
        self._edges: list[Edge] = canon

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: StaticGraph,
        *,
        order: str = "sorted",
        seed: int | None = None,
    ) -> "EdgeStream":
        """Build a stream from a :class:`StaticGraph`.

        ``order`` selects the stream order:

        - ``"sorted"`` -- canonical lexicographic order (deterministic);
        - ``"random"`` -- a uniformly random permutation under ``seed``.
        """
        edges = sorted(graph.edges())
        if order == "random":
            RandomSource(seed).shuffle(edges)
        elif order != "sorted":
            raise ValueError(f"unknown order {order!r}; expected 'sorted' or 'random'")
        return cls(edges, validate=False)

    # ------------------------------------------------------------------
    # sequence behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __getitem__(self, i: int) -> Edge:
        return self._edges[i]

    @property
    def edges(self) -> Sequence[Edge]:
        """The full edge sequence (read-only view by convention)."""
        return self._edges

    def position_of(self, edge: tuple[int, int]) -> int:
        """1-based position of ``edge`` in the stream.

        Linear scan; intended for tests and worked examples, not hot
        paths.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not occur in the stream (also catchable as
            ``KeyError``).
        """
        target = canonical_edge(*edge)
        for i, e in enumerate(self._edges):
            if e == target:
                return i + 1
        raise EdgeNotFoundError(f"edge {target} is not in the stream")

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def shuffled(self, seed: int | None = None) -> "EdgeStream":
        """Return a new stream with the same edges in random order."""
        edges = list(self._edges)
        RandomSource(seed).shuffle(edges)
        return EdgeStream(edges, validate=False)

    def batches(self, batch_size: int) -> Iterator[Sequence[Edge]]:
        """Yield the stream as consecutive batches of ``batch_size``."""
        return batched(self._edges, batch_size)

    def prefix(self, k: int) -> "EdgeStream":
        """Return the stream of the first ``k`` edges."""
        return EdgeStream(self._edges[:k], validate=False)

    # ------------------------------------------------------------------
    # graph statistics
    # ------------------------------------------------------------------
    def to_graph(self) -> StaticGraph:
        """Materialize the stream as a :class:`StaticGraph`."""
        return StaticGraph(self._edges, strict=False)

    def num_vertices(self) -> int:
        """Number of distinct vertices appearing in the stream."""
        verts: set[int] = set()
        for u, v in self._edges:
            verts.add(u)
            verts.add(v)
        return len(verts)

    def max_degree(self) -> int:
        """Maximum degree ``Delta`` of the streamed graph."""
        deg: dict[int, int] = {}
        for u, v in self._edges:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        return max(deg.values(), default=0)
