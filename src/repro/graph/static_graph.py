"""An in-memory simple undirected graph.

:class:`StaticGraph` is the substrate for the exact counters
(:mod:`repro.exact`) and ground-truth computations. It stores adjacency
as per-vertex sets, which makes neighbor intersection (the core of exact
triangle counting) fast, and it tracks the statistics the paper's bounds
depend on: ``n``, ``m``, and the maximum degree ``Delta``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import DuplicateEdgeError, InvalidEdgeError
from .edge import Edge, canonical_edge

__all__ = ["StaticGraph"]


class StaticGraph:
    """A simple undirected graph built from an edge iterable.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs. Orientation does not matter; edges
        are canonicalized internally.
    strict:
        When ``True`` (default), a repeated edge raises
        :class:`~repro.errors.DuplicateEdgeError` and a self-loop raises
        :class:`~repro.errors.InvalidEdgeError`. When ``False``,
        duplicates and self-loops are silently dropped, which is handy
        when sanitizing external edge lists.
    """

    def __init__(self, edges: Iterable[tuple[int, int]] = (), *, strict: bool = True) -> None:
        self._adj: dict[int, set[int]] = {}
        self._m = 0
        self._strict = strict
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}``; return ``True`` if it was new."""
        if u == v:
            if self._strict:
                raise InvalidEdgeError(f"self-loop at vertex {u}")
            return False
        nbrs = self._adj.setdefault(u, set())
        if v in nbrs:
            if self._strict:
                raise DuplicateEdgeError(f"edge {canonical_edge(u, v)} appears twice")
            return False
        nbrs.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._m += 1
        return True

    def add_vertex(self, u: int) -> None:
        """Ensure ``u`` exists (possibly with degree zero)."""
        self._adj.setdefault(u, set())

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` (vertices that appear in any edge)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._m

    def degree(self, u: int) -> int:
        """Degree of vertex ``u`` (0 if the vertex is unknown)."""
        nbrs = self._adj.get(u)
        return len(nbrs) if nbrs else 0

    def max_degree(self) -> int:
        """The maximum degree ``Delta`` over all vertices (0 if empty)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def degrees(self) -> dict[int, int]:
        """Mapping of every vertex to its degree."""
        return {u: len(nbrs) for u, nbrs in self._adj.items()}

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether edge ``{u, v}`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, u: int) -> frozenset[int]:
        """The neighbor set of ``u`` (empty if the vertex is unknown)."""
        return frozenset(self._adj.get(u, ()))

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form, each exactly once."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def __contains__(self, edge: tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self._m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticGraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def neighbors_intersection(self, u: int, v: int) -> set[int]:
        """Common neighbors of ``u`` and ``v``.

        Iterates the smaller set, so the cost is
        ``O(min(deg(u), deg(v)))`` -- the standard trick behind fast
        exact triangle counting.
        """
        a = self._adj.get(u, set())
        b = self._adj.get(v, set())
        if len(a) > len(b):
            a, b = b, a
        return {w for w in a if w in b}

    def degree_histogram(self) -> dict[int, int]:
        """Mapping ``degree -> number of vertices with that degree``.

        This is the data behind the degree-distribution panels of the
        paper's Figure 3.
        """
        hist: dict[int, int] = {}
        for nbrs in self._adj.values():
            d = len(nbrs)
            hist[d] = hist.get(d, 0) + 1
        return hist

    def subgraph(self, keep: set[int]) -> "StaticGraph":
        """Return the induced subgraph on the vertex set ``keep``."""
        sub = StaticGraph(strict=False)
        for u, v in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub
