"""Plain-text edge-list I/O.

The paper streams SNAP edge-list files from disk and reports I/O time
separately (Table 3). These helpers read and write the same whitespace-
separated ``u v`` format (``#``-prefixed comment lines are skipped, as
in SNAP files) so the experiment harness can reproduce the disk-backed
streaming setup.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

from .edge import Edge, canonical_edge

__all__ = ["read_edge_list", "write_edge_list", "iter_edge_list", "dedup_edges"]


def dedup_edges(edges: Iterable[Edge]) -> Iterator[Edge]:
    """Lazily drop repeated edges; first occurrence keeps its position.

    The streaming-dedup primitive shared by :func:`read_edge_list` and
    :class:`repro.streaming.FileSource`. Costs O(distinct edges) memory
    for the membership set.
    """
    seen: set[Edge] = set()
    for e in edges:
        if e not in seen:
            seen.add(e)
            yield e


def iter_edge_list(path: str | os.PathLike) -> Iterator[Edge]:
    """Lazily yield canonical edges from a text edge-list file.

    Lines starting with ``#`` and blank lines are skipped. Self-loops
    are skipped as well (SNAP files occasionally contain them; the
    paper's model assumes simple graphs).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            yield canonical_edge(u, v)


def read_edge_list(path: str | os.PathLike, *, deduplicate: bool = True) -> list[Edge]:
    """Read an edge-list file into a list of canonical edges.

    With ``deduplicate=True`` (default), repeated edges are dropped so
    the result is a simple graph's stream; the first occurrence keeps
    its stream position.
    """
    if not deduplicate:
        return list(iter_edge_list(path))
    return list(dedup_edges(iter_edge_list(path)))


def write_edge_list(path: str | os.PathLike, edges: Iterable[Edge]) -> int:
    """Write edges to a text file, one ``u v`` pair per line.

    Returns the number of edges written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count
