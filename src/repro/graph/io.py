"""Plain-text edge-list I/O.

The paper streams SNAP edge-list files from disk and reports I/O time
separately (Table 3). These helpers read and write the same whitespace-
separated ``u v`` format (``#``-prefixed comment lines are skipped, as
in SNAP files) so the experiment harness can reproduce the disk-backed
streaming setup.

Two parsers are provided. :func:`iter_edge_list` is the per-line tuple
parser (lazy, one edge at a time). :func:`iter_edge_array_chunks` is
the columnar parser behind :class:`repro.streaming.FileSource` and
:func:`read_edge_list`: it reads the file in ~1 MiB text blocks, splits
and converts each block to an ``(n, 2)`` int64 array in bulk, and
filters self-loops / canonicalizes with vectorized operations -- the
same edges in the same order, several times faster than the line loop
(``benchmarks/bench_io_parse.py`` measures both). Its companion
:func:`dedup_edge_arrays` deduplicates chunk streams with packed
``(u << 32) | v`` int64 keys instead of a Python set of tuples.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import InvalidParameterError
from .edge import Edge, canonical_edge

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "dedup_edges",
    "iter_edge_array_chunks",
    "dedup_edge_arrays",
]

_VERTEX_LIMIT = np.int64(1) << 31  # ids must pack two-per-int64 key
_CHUNK_CHARS = 1 << 20  # text block size for the columnar parser


def dedup_edges(edges: Iterable[Edge]) -> Iterator[Edge]:
    """Lazily drop repeated edges; first occurrence keeps its position.

    The per-tuple streaming-dedup primitive (see :func:`dedup_edge_arrays`
    for the columnar equivalent). Costs O(distinct edges) memory for the
    membership set.
    """
    seen: set[Edge] = set()
    for e in edges:
        if e not in seen:
            seen.add(e)
            yield e


def iter_edge_list(path: str | os.PathLike) -> Iterator[Edge]:
    """Lazily yield canonical edges from a text edge-list file.

    Lines starting with ``#`` and blank lines are skipped. Self-loops
    are skipped as well (SNAP files occasionally contain them; the
    paper's model assumes simple graphs).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            yield canonical_edge(u, v)


def _parse_block(block: str) -> np.ndarray:
    """Parse one text block into a canonical ``(n, 2)`` int64 array.

    Fast path: when the block plainly holds two integers per line (no
    comments, no blank lines), the whole block is tokenized and
    converted in one C-level ``np.fromstring`` call; the token count is
    cross-checked against the line count so any structural surprise
    (extra columns, short lines) drops to the careful per-line path.

    Known limitation: a block mixing short (<2 token) lines with long
    ones whose token counts happen to sum to exactly two per line
    passes the cross-check and parses pair-by-pair. Such files were
    always malformed -- the per-line parser raises ``IndexError`` on
    the first short line -- so the divergence is crash-vs-misparse on
    corrupt input, never a wrong answer on a well-formed file.
    """
    if (
        "#" not in block
        and "\r" not in block
        and "\n\n" not in block
        and not block.startswith("\n")
    ):
        try:
            flat = np.fromstring(block, dtype=np.int64, sep=" ")
        except ValueError:
            flat = None
        if flat is not None and flat.size == 2 * (block.count("\n") + 1):
            return _canonical_rows(flat.reshape(-1, 2))
    return _parse_lines(block.split("\n"))


def _parse_lines(lines: list[str]) -> np.ndarray:
    """Parse text lines (comments, blanks, extra columns allowed)."""
    kept = [s for line in lines if (s := line.strip()) and not s.startswith("#")]
    if not kept:
        return np.empty((0, 2), dtype=np.int64)
    try:
        flat = np.fromstring("\n".join(kept), dtype=np.int64, sep=" ")
    except ValueError:
        flat = None
    if flat is not None and flat.size == 2 * len(kept):
        return _canonical_rows(flat.reshape(-1, 2))
    # Lines carry extra columns (weights, timestamps): take the
    # first two fields of each, as the per-line parser does.
    rows = [(int(p[0]), int(p[1])) for p in (s.split() for s in kept)]
    return _canonical_rows(np.array(rows, dtype=np.int64).reshape(-1, 2))


def _canonical_rows(arr: np.ndarray) -> np.ndarray:
    """Vectorized self-loop filter + canonicalization + id validation."""
    if (arr < 0).any() or (arr >= _VERTEX_LIMIT).any():
        raise InvalidParameterError("vertex ids must be in [0, 2^31)")
    u, v = arr[:, 0], arr[:, 1]
    keep = u != v
    if not keep.all():
        u, v = u[keep], v[keep]
    out = np.empty((u.shape[0], 2), dtype=np.int64)
    np.minimum(u, v, out=out[:, 0])
    np.maximum(u, v, out=out[:, 1])
    return out


def iter_edge_array_chunks(
    path: str | os.PathLike, *, chunk_chars: int = _CHUNK_CHARS
) -> Iterator[np.ndarray]:
    """Parse an edge-list file into canonical ``(n, 2)`` int64 arrays.

    The columnar counterpart of :func:`iter_edge_list`: same skipping of
    comments, blank lines, and self-loops, same canonical ``u < v``
    rows, same order -- but parsed a ~1 MiB text block at a time with
    bulk tokenization and array conversion. Memory is bounded by one
    block regardless of file size. Vertex ids must lie in ``[0, 2^31)``
    (the engines' packed-key domain).
    """
    with open(path, "r", encoding="utf-8") as handle:
        tail = ""
        while True:
            block = handle.read(chunk_chars)
            if not block:
                break
            block = tail + block
            cut = block.rfind("\n")
            if cut < 0:
                tail = block
                continue
            tail = block[cut + 1 :]
            arr = _parse_block(block[:cut])
            if arr.shape[0]:
                yield arr
        if tail:
            arr = _parse_lines([tail])
            if arr.shape[0]:
                yield arr


def dedup_edge_arrays(chunks: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
    """Vectorized streaming dedup over canonical ``(n, 2)`` arrays.

    First occurrence keeps its stream position, exactly like
    :func:`dedup_edges`. Membership state is a sorted array of packed
    ``(u << 32) | v`` int64 keys (O(distinct edges) memory, no Python
    tuples): each chunk is reduced to its first occurrences with
    ``np.unique``, filtered against the seen keys by binary search, and
    the survivors are emitted in stream order.
    """
    seen = np.empty(0, dtype=np.int64)
    for arr in chunks:
        if not arr.shape[0]:
            continue
        keys = (arr[:, 0] << np.int64(32)) | arr[:, 1]
        uniq, first = np.unique(keys, return_index=True)
        if seen.size:
            pos = np.searchsorted(seen, uniq)
            pos_clipped = np.minimum(pos, seen.size - 1)
            fresh = seen[pos_clipped] != uniq
            uniq, first = uniq[fresh], first[fresh]
        if not uniq.size:
            continue
        if seen.size:
            # Both runs are sorted: np.insert at the searchsorted
            # positions is a linear merge (no re-sort of the seen set).
            seen = np.insert(seen, np.searchsorted(seen, uniq), uniq)
        else:
            seen = uniq
        yield arr[np.sort(first)]


def read_edge_list(path: str | os.PathLike, *, deduplicate: bool = True) -> list[Edge]:
    """Read an edge-list file into a list of canonical edges.

    With ``deduplicate=True`` (default), repeated edges are dropped so
    the result is a simple graph's stream; the first occurrence keeps
    its stream position. Parsing is columnar (see
    :func:`iter_edge_array_chunks`); the result is identical to feeding
    :func:`iter_edge_list` through :func:`dedup_edges`.
    """
    chunks = iter_edge_array_chunks(path)
    if deduplicate:
        chunks = dedup_edge_arrays(chunks)
    edges: list[Edge] = []
    for arr in chunks:
        edges.extend(map(tuple, arr.tolist()))
    return edges


def write_edge_list(path: str | os.PathLike, edges: Iterable[Edge]) -> int:
    """Write edges to a text file, one ``u v`` pair per line.

    Returns the number of edges written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count
