"""Plain-text edge-list I/O.

The paper streams SNAP edge-list files from disk and reports I/O time
separately (Table 3). These helpers read and write the same whitespace-
separated ``u v`` format (``#``-prefixed comment lines are skipped, as
in SNAP files) so the experiment harness can reproduce the disk-backed
streaming setup.

Two parsers are provided. :func:`iter_edge_list` is the per-line tuple
parser (lazy, one edge at a time). :func:`iter_edge_array_chunks` is
the columnar parser behind :class:`repro.streaming.FileSource` and
:func:`read_edge_list`: it pulls ~1 MiB worth of rows at a time through
:func:`numpy.loadtxt` (C-backed since numpy 1.23, with native comment
and blank-line handling -- the supported successor to the deprecated
``np.fromstring`` text mode this module used to build on) and filters
self-loops / canonicalizes with vectorized operations -- the same edges
in the same order, several times faster than the line loop
(``benchmarks/bench_io_parse.py`` measures both and checks the loadtxt
path did not regress the old fast path). Its companion
:func:`dedup_edge_arrays` deduplicates chunk streams with packed
``(u << 32) | v`` int64 keys instead of a Python set of tuples.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import InvalidParameterError
from .edge import Edge, canonical_edge

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "write_signed_edge_list",
    "iter_edge_list",
    "dedup_edges",
    "iter_edge_array_chunks",
    "iter_signed_edge_array_chunks",
    "dedup_chunk",
    "dedup_edge_arrays",
]

_VERTEX_LIMIT = np.int64(1) << 31  # ids must pack two-per-int64 key
_CHUNK_CHARS = 1 << 20  # target text volume per parsed chunk
_ROW_CHARS = 12  # ~"12345 67890\n": sizes loadtxt chunks from chunk_chars


def dedup_edges(edges: Iterable[Edge]) -> Iterator[Edge]:
    """Lazily drop repeated edges; first occurrence keeps its position.

    The per-tuple streaming-dedup primitive (see :func:`dedup_edge_arrays`
    for the columnar equivalent). Costs O(distinct edges) memory for the
    membership set.
    """
    seen: set[Edge] = set()
    for e in edges:
        if e not in seen:
            seen.add(e)
            yield e


def iter_edge_list(path: str | os.PathLike) -> Iterator[Edge]:
    """Lazily yield canonical edges from a text edge-list file.

    Lines starting with ``#`` and blank lines are skipped. Self-loops
    are skipped as well (SNAP files occasionally contain them; the
    paper's model assumes simple graphs).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            yield canonical_edge(u, v)


def _canonical_rows(arr: np.ndarray) -> np.ndarray:
    """Vectorized self-loop filter + canonicalization + id validation."""
    if (arr < 0).any() or (arr >= _VERTEX_LIMIT).any():
        raise InvalidParameterError("vertex ids must be in [0, 2^31)")
    u, v = arr[:, 0], arr[:, 1]
    keep = u != v
    if not keep.all():
        u, v = u[keep], v[keep]
    out = np.empty((u.shape[0], 2), dtype=np.int64)
    np.minimum(u, v, out=out[:, 0])
    np.maximum(u, v, out=out[:, 1])
    return out


def iter_edge_array_chunks(
    source, *, chunk_chars: int = _CHUNK_CHARS
) -> Iterator[np.ndarray]:
    """Parse an edge-list file into canonical ``(n, 2)`` int64 arrays.

    The columnar counterpart of :func:`iter_edge_list`: same skipping of
    comments, blank lines, and self-loops, same canonical ``u < v``
    rows, same order -- but parsed ~1 MiB worth of rows at a time with
    :func:`numpy.loadtxt` pulling straight from the file handle (its
    C tokenizer handles comments and blank lines natively). Memory is
    bounded by one chunk regardless of file size. Vertex ids must lie
    in ``[0, 2^31)`` (the engines' packed-key domain).

    ``source`` is a path or an already-open *text* file object (a
    ``StringIO``, a socket's ``makefile()``, ``sys.stdin``): the
    streaming sources (:class:`repro.streaming.LineSource`,
    :class:`repro.streaming.FollowSource`) feed handles they own, and
    the handle is left open for the caller to manage.

    Rows with extra columns (weights, timestamps) take their first two
    fields, as the per-line parser does; files whose rows are *ragged*
    make ``loadtxt`` balk, so the parser falls back to a careful
    per-line pass that resumes exactly after the rows already emitted
    (replaying from the path, or by seeking the handle back; a
    non-seekable handle with ragged rows is an error because its
    already-consumed text cannot be re-read).
    """
    if hasattr(source, "read"):
        yield from _chunks_from_handle(source, chunk_chars, path=None)
        return
    with open(source, "r", encoding="utf-8") as handle:
        yield from _chunks_from_handle(handle, chunk_chars, path=source)


def _chunks_from_handle(
    handle, chunk_chars: int, path: str | os.PathLike | None
) -> Iterator[np.ndarray]:
    """The loadtxt chunk loop over an open text handle (see above)."""
    max_rows = max(1, chunk_chars // _ROW_CHARS)
    consumed = 0  # data rows yielded so far, pre self-loop filter
    try:
        start = handle.tell() if handle.seekable() else None
    except (OSError, AttributeError):
        start = None
    while True:
        try:
            with warnings.catch_warnings():
                # loadtxt warns on empty input (our EOF probe) and
                # on comment lines not counting toward max_rows.
                warnings.simplefilter("ignore", UserWarning)
                arr = np.loadtxt(
                    handle,
                    dtype=np.int64,
                    comments="#",
                    ndmin=2,
                    max_rows=max_rows,
                )
        except ValueError:
            # Ragged rows (varying column counts): re-parse the
            # remainder line by line, skipping what was emitted.
            if path is not None:
                with open(path, "r", encoding="utf-8") as reread:
                    yield from _ragged_row_chunks(reread, consumed, max_rows)
                return
            if start is not None:
                handle.seek(start)
                yield from _ragged_row_chunks(handle, consumed, max_rows)
                return
            raise InvalidParameterError(
                "edge rows have inconsistent column counts and the input "
                "handle is not seekable, so the consumed text cannot be "
                "re-parsed; feed complete uniform rows or a seekable handle"
            ) from None
        if arr.size == 0:
            return
        if arr.shape[1] < 2:
            raise InvalidParameterError(
                f"edge-list rows need at least two fields, got {arr.shape[1]}"
            )
        consumed += arr.shape[0]
        out = _canonical_rows(arr[:, :2])
        if out.shape[0]:
            yield out


def _ragged_row_chunks(
    lines: Iterable[str], skip_rows: int, max_rows: int
) -> Iterator[np.ndarray]:
    """Careful per-line parse for ragged inputs: first two fields per row.

    ``skip_rows`` data rows (comment/blank lines excluded -- the same
    rows :func:`numpy.loadtxt` counts) were already emitted by the fast
    path and are skipped so the combined stream has every edge once.
    ``lines`` is any iterable of text lines (an open handle positioned
    at the start of the stream's text).
    """
    rows: list[tuple[int, int]] = []
    data_rows = 0
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        data_rows += 1
        if data_rows <= skip_rows:
            continue
        parts = stripped.split()
        rows.append((int(parts[0]), int(parts[1])))
        if len(rows) >= max_rows:
            arr = _canonical_rows(np.array(rows, dtype=np.int64).reshape(-1, 2))
            rows = []
            if arr.shape[0]:
                yield arr
    if rows:
        arr = _canonical_rows(np.array(rows, dtype=np.int64).reshape(-1, 2))
        if arr.shape[0]:
            yield arr


def _canonical_signed_rows(arr: np.ndarray, signs: np.ndarray) -> np.ndarray:
    """:func:`_canonical_rows` for signed rows; returns ``(n, 3)``.

    Same id validation and self-loop skip, same canonical ``u < v``
    columns; the sign column rides along untouched by the min/max swap.
    """
    if (arr < 0).any() or (arr >= _VERTEX_LIMIT).any():
        raise InvalidParameterError("vertex ids must be in [0, 2^31)")
    u, v = arr[:, 0], arr[:, 1]
    keep = u != v
    if not keep.all():
        u, v, signs = u[keep], v[keep], signs[keep]
    out = np.empty((u.shape[0], 3), dtype=np.int64)
    np.minimum(u, v, out=out[:, 0])
    np.maximum(u, v, out=out[:, 1])
    out[:, 2] = signs
    return out


#: The three signed-line layouts, keyed by how the probe line reads.
_FMT_BARE = "bare"  # "u v"          -> every row is an insert
_FMT_COLUMN = "column"  # "u v +1"   -> third column is the sign
_FMT_PREFIX = "prefix"  # "+ u v"    -> leading +/- token is the sign


def _parse_sign_tokens(col: np.ndarray, lineno: int | None = None) -> np.ndarray:
    """Sign tokens (``+1``/``-1``/``1``, or literal ``+``/``-``) to int64."""
    try:
        signs = col.astype(np.int64)
    except ValueError:
        signs = np.where(col == "+", np.int64(1), np.int64(0))
        signs[col == "-"] = -1
    if not np.isin(signs, (-1, 1)).all():
        where = f"line {lineno}: " if lineno is not None else ""
        raise InvalidParameterError(f"{where}signs must be +1 or -1")
    return signs


def _signed_block_rows(block: str, fmt: str, lineno_base: int) -> np.ndarray:
    """Parse one text block of uniform signed rows into ``(n, 3)`` int64.

    The columnar fast path: when the block has no comments and every
    line carries exactly the probe's column count (cross-checked by
    ``token count == columns x line count``, so a blank, short, or long
    line can never slip through), one ``str.split`` plus one vectorized
    ``astype`` parses the whole block. Anything else drops to a
    per-line pass that skips comments/blanks and raises
    :class:`~repro.errors.InvalidParameterError` naming the first line
    whose column count disagrees with the probe -- mixed 2/3-column
    files are ambiguous about signs, so they are an error, never a
    silent fallback.
    """
    ncols = 2 if fmt == _FMT_BARE else 3
    tokens = block.split()
    nlines = block.count("\n")
    if "#" not in block and len(tokens) == ncols * nlines:
        sarr = np.array(tokens, dtype=str).reshape(-1, ncols)
        try:
            if fmt == _FMT_BARE:
                uv = sarr.astype(np.int64)
                signs = np.ones(uv.shape[0], dtype=np.int64)
            elif fmt == _FMT_COLUMN:
                uv = sarr[:, :2].astype(np.int64)
                signs = _parse_sign_tokens(sarr[:, 2])
            else:
                uv = sarr[:, 1:].astype(np.int64)
                signs = _parse_sign_tokens(sarr[:, 0])
            return _canonical_signed_rows(uv, signs)
        except ValueError:
            pass  # non-numeric token: the per-line pass names the line
        except InvalidParameterError as exc:
            if "signs must be" not in str(exc):
                raise  # id-range/self-loop errors carry no line ambiguity
            # a bad sign token: re-parse per line to name the offender
    rows: list[tuple[int, int, int]] = []
    expect = "2 columns ('u v')" if ncols == 2 else (
        "3 columns ('u v +1')" if fmt == _FMT_COLUMN else "3 columns ('+ u v')"
    )
    for offset, line in enumerate(block.splitlines()):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        lineno = lineno_base + offset
        parts = stripped.split()
        if len(parts) != ncols:
            raise InvalidParameterError(
                f"line {lineno}: expected {expect} like the first data "
                f"line, got {len(parts)} column(s); mixed signed/unsigned "
                "rows are not allowed"
            )
        col = np.array(parts, dtype=str)
        try:
            if fmt == _FMT_BARE:
                u, v = int(parts[0]), int(parts[1])
                sign = 1
            elif fmt == _FMT_COLUMN:
                u, v = int(parts[0]), int(parts[1])
                sign = int(_parse_sign_tokens(col[2:], lineno)[0])
            else:
                sign = int(_parse_sign_tokens(col[:1], lineno)[0])
                u, v = int(parts[1]), int(parts[2])
        except ValueError:
            raise InvalidParameterError(
                f"line {lineno}: cannot parse {stripped!r} as a signed edge"
            ) from None
        rows.append((u, v, sign))
    if not rows:
        return np.empty((0, 3), dtype=np.int64)
    arr = np.array(rows, dtype=np.int64)
    return _canonical_signed_rows(arr[:, :2], arr[:, 2])


def iter_signed_edge_array_chunks(
    source, *, chunk_chars: int = _CHUNK_CHARS
) -> Iterator[np.ndarray]:
    """Parse a signed edge-list into canonical ``(n, 3)`` int64 chunks.

    The turnstile counterpart of :func:`iter_edge_array_chunks`. Three
    line layouts are supported, detected once from the first data line
    (the probe) and then required of the whole file:

    - ``u v`` -- a plain edge list; every row becomes an insert (+1);
    - ``u v s`` -- a third sign column, ``s`` one of ``+1``/``1``/``-1``
      (literal ``+``/``-`` also accepted);
    - ``+ u v`` / ``- u v`` -- a sign *prefix* token.

    Rows come back as ``(u, v, sign)`` with the same canonicalization
    as the unsigned parser (ids validated into ``[0, 2^31)``,
    self-loops skipped, ``u < v``); signs survive the swap unchanged.
    Comments and blank lines are skipped. A file that mixes column
    counts raises :class:`~repro.errors.InvalidParameterError` naming
    the offending line -- a 2-column row in a 3-column file (or vice
    versa) is ambiguous about deletions, never a silent fallback.

    ``source`` is a path or an open text handle, exactly as for the
    unsigned parser; memory is bounded by one ``chunk_chars`` block.
    """
    if hasattr(source, "read"):
        yield from _signed_chunks_from_handle(source, chunk_chars)
        return
    with open(source, "r", encoding="utf-8") as handle:
        yield from _signed_chunks_from_handle(handle, chunk_chars)


def _probe_signed_format(block: str) -> str | None:
    """Classify the first data line of ``block``; ``None`` if it has none."""
    for line in block.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if parts[0] in ("+", "-"):
            return _FMT_PREFIX
        if len(parts) == 2:
            return _FMT_BARE
        if len(parts) == 3:
            return _FMT_COLUMN
        raise InvalidParameterError(
            f"cannot infer a signed edge layout from {stripped!r}: "
            "expected 'u v', 'u v +1', or '+ u v'"
        )
    return None  # only comments/blanks: keep probing the next block


def _signed_chunks_from_handle(handle, chunk_chars: int) -> Iterator[np.ndarray]:
    """The block loop behind :func:`iter_signed_edge_array_chunks`."""
    fmt: str | None = None
    lineno_base = 1
    while True:
        block = handle.read(chunk_chars)
        if not block:
            return
        # Complete the trailing partial line so every block holds
        # whole lines and the line accounting stays exact.
        if not block.endswith("\n"):
            rest = handle.readline()
            if rest:
                block += rest
            if not block.endswith("\n"):
                block += "\n"
        if fmt is None:
            # The probe chunk: the first data line locks the layout for
            # the rest of the file (all-comment blocks keep probing).
            fmt = _probe_signed_format(block)
            if fmt is None:
                lineno_base += block.count("\n")
                continue
        out = _signed_block_rows(block, fmt, lineno_base)
        lineno_base += block.count("\n")
        if out.shape[0]:
            yield out


def dedup_chunk(
    arr: np.ndarray, seen: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop already-seen edges from one canonical chunk.

    The stateless core of :func:`dedup_edge_arrays`: ``seen`` is the
    sorted array of packed ``(u << 32) | v`` int64 keys observed so
    far; the return value is ``(fresh_rows, updated_seen)``. Callers
    that dedup across *separate* parses of a growing stream (the
    follow-mode source polls the file repeatedly) thread the key array
    through themselves.
    """
    if not arr.shape[0]:
        return arr, seen
    keys = (arr[:, 0] << np.int64(32)) | arr[:, 1]
    uniq, first = np.unique(keys, return_index=True)
    if seen.size:
        pos = np.searchsorted(seen, uniq)
        pos_clipped = np.minimum(pos, seen.size - 1)
        fresh = seen[pos_clipped] != uniq
        uniq, first = uniq[fresh], first[fresh]
    if not uniq.size:
        return arr[:0], seen
    if seen.size:
        # Both runs are sorted: np.insert at the searchsorted
        # positions is a linear merge (no re-sort of the seen set).
        seen = np.insert(seen, np.searchsorted(seen, uniq), uniq)
    else:
        seen = uniq
    return arr[np.sort(first)], seen


def dedup_edge_arrays(chunks: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
    """Vectorized streaming dedup over canonical ``(n, 2)`` arrays.

    First occurrence keeps its stream position, exactly like
    :func:`dedup_edges`. Membership state is a sorted array of packed
    ``(u << 32) | v`` int64 keys (O(distinct edges) memory, no Python
    tuples): each chunk is reduced to its first occurrences with
    ``np.unique``, filtered against the seen keys by binary search, and
    the survivors are emitted in stream order.
    """
    seen = np.empty(0, dtype=np.int64)
    for arr in chunks:
        fresh, seen = dedup_chunk(arr, seen)
        if fresh.shape[0]:
            yield fresh


def read_edge_list(path: str | os.PathLike, *, deduplicate: bool = True) -> list[Edge]:
    """Read an edge-list file into a list of canonical edges.

    With ``deduplicate=True`` (default), repeated edges are dropped so
    the result is a simple graph's stream; the first occurrence keeps
    its stream position. Parsing is columnar (see
    :func:`iter_edge_array_chunks`); the result is identical to feeding
    :func:`iter_edge_list` through :func:`dedup_edges`.
    """
    chunks = iter_edge_array_chunks(path)
    if deduplicate:
        chunks = dedup_edge_arrays(chunks)
    edges: list[Edge] = []
    for arr in chunks:
        edges.extend(map(tuple, arr.tolist()))
    return edges


def write_edge_list(path: str | os.PathLike, edges: Iterable[Edge]) -> int:
    """Write edges to a text file, one ``u v`` pair per line.

    Returns the number of edges written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count


def write_signed_edge_list(path: str | os.PathLike, events: Iterable) -> int:
    """Write signed edge events, one ``u v s`` row per line.

    ``events`` yields ``(u, v, sign)`` triples with ``sign`` in
    ``{+1, -1}``; the output is the column layout
    :func:`iter_signed_edge_array_chunks` parses on its columnar fast
    path. Returns the number of events written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, sign in events:
            if sign not in (1, -1):
                raise InvalidParameterError("signs must be +1 or -1")
            handle.write(f"{u} {v} {sign:+d}\n")
            count += 1
    return count
