"""Smoke tests for the experiment runners on tiny configurations.

The full-scale shapes are asserted by the benchmark suite; here we only
verify each runner executes end to end and reports sane structures.
Only the small datasets are used so the suite stays fast.
"""


from repro.experiments.runners import (
    _RUNNERS,
    main,
    run_ablation_aggregation,
    run_ablation_engines,
    run_ablation_tangle,
    run_buriol_study,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
    run_table3,
)


class TestTableRunners:
    def test_table1_tiny(self):
        out = run_table1(r_values=(64, 256), trials=2, verbose=False)
        assert out["true_tau"] == 1000
        assert len(out["rows"]) == 2
        for row in out["rows"]:
            assert row[1] >= 0.0 and row[3] >= 0.0  # deviations
            assert row[2] > 0.0 and row[4] > 0.0  # times

    def test_table3_tiny(self):
        out = run_table3(
            r_values=(256,),
            datasets=("syn_3reg", "amazon_like"),
            trials=2,
            verbose=False,
        )
        assert len(out["rows"]) == 2
        assert out["memory_rows"][0][0] == 256

    def test_figure4_tiny(self):
        out = run_figure4(
            r_values=(256,), datasets=("syn_3reg",), trials=1, verbose=False
        )
        assert out["rows"][0][2] > 0  # Medges/s positive

    def test_figure5_tiny(self):
        out = run_figure5(
            r_values=(256, 1024),
            datasets=("amazon_like",),
            trials=1,
            verbose=False,
        )
        series = out["series"]["amazon_like"]
        assert len(series["devs"]) == 2
        assert series["bounds"][0] > series["bounds"][1]  # bound shrinks with r

    def test_figure6_tiny(self):
        out = run_figure6(
            batch_factors=(1, 8),
            dataset="amazon_like",
            num_estimators=512,
            trials=1,
            verbose=False,
        )
        assert len(out["throughputs"]) == 2


class TestStudyRunners:
    def test_buriol_study_tiny(self):
        out = run_buriol_study(dataset="amazon_like", num_estimators=2000, verbose=False)
        assert out["buriol_fraction"] <= out["ours_fraction"]

    def test_ablation_tangle_tiny(self):
        out = run_ablation_tangle(datasets=("syn_3reg",), verbose=False)
        row = out["rows"][0]
        gamma, two_delta = row[1], row[2]
        assert gamma <= two_delta

    def test_ablation_aggregation_tiny(self):
        out = run_ablation_aggregation(
            dataset="syn_3reg", num_estimators=512, trials=3, verbose=False
        )
        assert len(out["mean_errors"]) == 3

    def test_ablation_engines_tiny(self):
        out = run_ablation_engines(
            dataset="syn_3reg", num_estimators=128, trials=1, verbose=False
        )
        assert {row[0] for row in out["rows"]} == {"reference", "bulk", "vectorized"}


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in _RUNNERS:
            assert name in out

    def test_unknown(self, capsys):
        assert main(["definitely-not-real"]) == 1

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
