"""Tests for the incidence-stream model (and the model separation)."""

import pytest

from repro.core.incidence import (
    IncidenceStream,
    IncidenceTriangleCounter,
    IncidenceWedgeSampler,
    _unrank_pair,
    incidence_estimators_needed,
)
from repro.errors import InvalidParameterError
from repro.exact import count_open_wedges, count_triangles, count_wedges
from repro.generators import complete_graph, erdos_renyi, star_graph
from repro.theory import alice_graph_edges, bob_query_edges
from tests.conftest import assert_mean_close


class TestUnrankPair:
    def test_enumerates_all_pairs(self):
        d = 6
        pairs = [_unrank_pair(k, d) for k in range(d * (d - 1) // 2)]
        assert len(set(pairs)) == 15
        assert all(0 <= i < j < d for i, j in pairs)

    def test_first_and_last(self):
        assert _unrank_pair(0, 4) == (0, 1)
        assert _unrank_pair(5, 4) == (2, 3)


class TestIncidenceStream:
    def test_each_edge_appears_twice(self):
        edges = erdos_renyi(20, 60, seed=1)
        stream = IncidenceStream.from_graph(edges)
        slots = sum(len(nbrs) for _, nbrs in stream)
        assert slots == 2 * len(edges)

    def test_vertex_orders(self):
        edges = [(0, 1), (1, 2)]
        sorted_stream = IncidenceStream.from_graph(edges)
        assert [v for v, _ in sorted_stream] == [0, 1, 2]
        shuffled = IncidenceStream.from_graph(edges, order="random", seed=3)
        assert sorted(v for v, _ in shuffled) == [0, 1, 2]
        with pytest.raises(InvalidParameterError):
            IncidenceStream.from_graph(edges, order="bogus")


class TestWedgeSampler:
    def test_tracks_total_wedges(self):
        edges = erdos_renyi(25, 80, seed=2)
        sampler = IncidenceWedgeSampler(seed=0)
        for v, nbrs in IncidenceStream.from_graph(edges):
            sampler.observe(v, nbrs)
        assert sampler.total_wedges == count_wedges(edges)

    def test_star_never_closes(self):
        sampler = IncidenceWedgeSampler(seed=1)
        for v, nbrs in IncidenceStream.from_graph(star_graph(8)):
            sampler.observe(v, nbrs)
        assert sampler.estimate() == 0.0

    def test_unbiased_on_er_graph(self):
        edges = erdos_renyi(30, 140, seed=4)
        tau = count_triangles(edges)
        assert tau > 0
        stream = IncidenceStream.from_graph(edges, order="random", seed=9)
        estimates = []
        for seed in range(6000):
            sampler = IncidenceWedgeSampler(seed=seed)
            for v, nbrs in stream:
                sampler.observe(v, nbrs)
            estimates.append(sampler.estimate())
        assert_mean_close(estimates, tau, z=6.0)

    def test_unbiased_under_any_vertex_order(self):
        edges = complete_graph(7)
        tau = count_triangles(edges)
        for order_seed in (1, 2):
            stream = IncidenceStream.from_graph(edges, order="random", seed=order_seed)
            estimates = []
            for seed in range(4000):
                sampler = IncidenceWedgeSampler(seed=seed)
                for v, nbrs in stream:
                    sampler.observe(v, nbrs)
                estimates.append(sampler.estimate())
            assert_mean_close(estimates, tau, z=6.0)


class TestCounter:
    def test_requires_positive_pool(self):
        with pytest.raises(InvalidParameterError):
            IncidenceTriangleCounter(0)

    def test_accurate_on_dense_graph(self):
        edges = complete_graph(15)
        tau = count_triangles(edges)
        counter = IncidenceTriangleCounter(4000, seed=5)
        counter.consume(IncidenceStream.from_graph(edges))
        assert abs(counter.estimate() - tau) / tau < 0.15

    def test_wedge_count_exact(self):
        edges = erdos_renyi(20, 50, seed=6)
        counter = IncidenceTriangleCounter(3, seed=7)
        counter.consume(IncidenceStream.from_graph(edges))
        assert counter.wedge_count() == count_wedges(edges)


class TestSizing:
    def test_formula_positive(self):
        r = incidence_estimators_needed(0.1, 0.1, wedges=1000, triangles=100)
        assert r >= 1

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            incidence_estimators_needed(0.0, 0.1, wedges=10, triangles=1)
        with pytest.raises(InvalidParameterError):
            incidence_estimators_needed(0.1, 0.1, wedges=0, triangles=1)

    def test_bound_scales_with_t2_over_tau(self):
        few_open = incidence_estimators_needed(0.2, 0.1, wedges=300, triangles=100)
        many_open = incidence_estimators_needed(0.2, 0.1, wedges=30_000, triangles=100)
        assert many_open > 50 * few_open


class TestModelSeparation:
    """Theorem 3.13's point, executed: the Index graphs are easy in the
    incidence model (zeta = 3 tau, T2 = 0, so O(1) estimators suffice)
    while the adjacency model provably needs Omega(n) bits."""

    def test_lower_bound_graphs_have_zero_t2(self):
        edges = alice_graph_edges([1, 0, 1, 1]) + bob_query_edges(0)
        assert count_open_wedges(edges) == 0

    def test_constant_estimators_distinguish_one_vs_two_triangles(self):
        bits = [1, 0, 1]
        correct = 0
        for k in range(len(bits)):
            edges = alice_graph_edges(bits) + bob_query_edges(k)
            counter = IncidenceTriangleCounter(60, seed=k)
            counter.consume(IncidenceStream.from_graph(edges))
            decoded = 1 if counter.estimate() > 1.5 else 0
            correct += decoded == bits[k]
        assert correct == len(bits)
