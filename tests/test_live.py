"""Tests for the live query surface: snapshots, follow-mode sources, watch.

The contract under test: ``Pipeline.run`` and ``Pipeline.snapshots``
share one stream driver, so observing the stream mid-flight must not
change it -- the final snapshot is bit-identical to ``run``'s report
for every registered estimator under a fixed seed -- and the
follow-mode sources/CLI keep that surface alive over streams that are
still being written.
"""

import io
import json
import threading
import time

import pytest

from repro.cli import main
from repro.errors import InvalidParameterError, SourceExhaustedError
from repro.generators import holme_kim
from repro.graph import write_edge_list
from repro.streaming import (
    ESTIMATORS,
    FollowSource,
    LineSource,
    Pipeline,
    PipelineSnapshot,
    as_source,
)

EDGES = holme_kim(250, 3, 0.5, seed=4)

#: Small pools keep the per-edge estimators (cliques, windows) quick.
POOL = 32


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.edges"
    write_edge_list(path, EDGES)
    return str(path)


def _results(report):
    return {r.name: r.results for r in report.estimators}


class TestSnapshots:
    def test_final_snapshot_bit_identical_to_run_for_every_estimator(self):
        """The acceptance contract, over the whole registry: draining
        snapshots (live reporters firing every other batch) ends in
        exactly run()'s report."""
        names = ESTIMATORS.names()
        ran = Pipeline.from_registry(names, num_estimators=POOL, seed=11).run(
            EDGES, batch_size=50
        )
        snapshots = list(
            Pipeline.from_registry(names, num_estimators=POOL, seed=11).snapshots(
                EDGES, batch_size=50, every=2
            )
        )
        final = snapshots[-1]
        assert final.final
        assert (final.edges, final.batches) == (ran.edges, ran.batches)
        assert _results(final) == _results(ran)

    def test_snapshot_cadence_and_monotonicity(self):
        snapshots = list(
            Pipeline.from_registry(["exact"]).snapshots(
                EDGES, batch_size=50, every=3
            )
        )
        m = len(EDGES)
        total = -(-m // 50)
        expected = [b for b in range(1, total + 1) if b % 3 == 0]
        assert [s.batches for s in snapshots[:-1]] == expected
        assert [s.edges for s in snapshots[:-1]] == [
            min(b * 50, m) for b in expected
        ]
        assert snapshots[-1].batches == total
        assert snapshots[-1].edges == m
        assert [s.final for s in snapshots] == [False] * (len(snapshots) - 1) + [True]
        edge_counts = [s.edges for s in snapshots]
        assert edge_counts == sorted(edge_counts)
        assert all(isinstance(s, PipelineSnapshot) for s in snapshots)

    def test_mid_stream_snapshots_use_live_reporters(self):
        """`sample`'s final reporter draws a triangle (consuming
        randomness); mid-stream snapshots must report pure queries only."""
        snapshots = list(
            Pipeline.from_registry(["sample"], num_estimators=POOL, seed=3).snapshots(
                EDGES, batch_size=50, every=1
            )
        )
        for snap in snapshots[:-1]:
            assert "triangle" not in snap["sample"].results
            assert "success_fraction" in snap["sample"].results
        assert "triangle" in snapshots[-1]["sample"].results

    def test_custom_live_reporters_override(self):
        from repro.baselines.exact_stream import ExactStreamingCounter

        pipeline = Pipeline(
            {"x": ExactStreamingCounter()},
            reporters={"x": lambda c: {"full": int(c.triangles)}},
            live_reporters={"x": lambda c: {"lite": int(c.triangles)}},
        )
        snaps = list(pipeline.snapshots(EDGES, batch_size=100, every=1))
        assert "lite" in snaps[0]["x"].results
        assert "full" in snaps[-1]["x"].results

    def test_every_validated_eagerly(self):
        pipeline = Pipeline.from_registry(["exact"])
        with pytest.raises(InvalidParameterError):
            pipeline.snapshots(EDGES, every=0)

    def test_batch_size_validated_eagerly(self):
        pipeline = Pipeline.from_registry(["exact"])
        with pytest.raises(InvalidParameterError):
            pipeline.snapshots(EDGES, batch_size=0)

    def test_snapshot_to_dict_and_render_line(self):
        snaps = list(
            Pipeline.from_registry(["exact"]).snapshots(EDGES, batch_size=100)
        )
        d = snaps[0].to_dict()
        assert d["final"] is False and snaps[-1].to_dict()["final"] is True
        json.dumps(d)  # JSONL-safe
        line = snaps[-1].render_line()
        assert "[final]" in line and "exact:" in line

    def test_works_over_one_shot_generator(self):
        snaps = list(
            Pipeline.from_registry(["exact"]).snapshots(
                iter(EDGES), batch_size=100, every=2
            )
        )
        assert snaps[-1].edges == len(EDGES)

    def test_abandoning_generator_keeps_mid_stream_state(self):
        pipeline = Pipeline.from_registry(["exact"])
        gen = pipeline.snapshots(EDGES, batch_size=50, every=1)
        first = next(gen)
        gen.close()
        est = pipeline.estimator("exact")
        assert est.edges_seen == first.edges == 50


class TestSnapshotCheckpointing:
    def test_snapshots_checkpoint_resume_round_trip(self, tmp_path):
        """Abandon the snapshot stream mid-flight (a killed watcher),
        resume from its checkpoint, and finish identically to an
        uninterrupted run."""
        ck = tmp_path / "ck"
        names = ["count", "exact"]
        uninterrupted = Pipeline.from_registry(
            names, num_estimators=200, seed=5
        ).run(EDGES, batch_size=50)

        pipeline = Pipeline.from_registry(names, num_estimators=200, seed=5)
        gen = pipeline.snapshots(
            EDGES, batch_size=50, every=1, checkpoint_path=ck, checkpoint_every=2
        )
        for _ in range(4):  # stop right after the batch-4 checkpoint
            next(gen)
        gen.close()

        resumed = Pipeline.from_registry(names, num_estimators=200, seed=5)
        resumed.resume(ck)
        finals = [
            s for s in resumed.snapshots(EDGES, batch_size=50, every=2) if s.final
        ]
        assert _results(finals[-1]) == _results(uninterrupted)
        assert finals[-1].edges == uninterrupted.edges

    def test_resumed_checkpoint_cadence_uses_global_batch_index(
        self, tmp_path, monkeypatch
    ):
        """Regression: the periodic cadence used the continuation-local
        counter, so a run resumed at batch 4 with checkpoint_every=3
        snapshotted at global batches 7, 10, ... instead of 6, 9, ..."""
        ck = tmp_path / "ck"
        names = ["exact"]
        pipeline = Pipeline.from_registry(names)
        gen = pipeline.snapshots(
            EDGES, batch_size=50, every=1, checkpoint_path=ck, checkpoint_every=1
        )
        for _ in range(4):  # checkpoint lands at (unaligned) batch 4
            next(gen)
        gen.close()

        recorded = []
        original = Pipeline.checkpoint

        def spy(self, path):
            recorded.append(self._progress["batches"])
            return original(self, path)

        monkeypatch.setattr(Pipeline, "checkpoint", spy)
        resumed = Pipeline.from_registry(names).resume(ck)
        resumed.run(EDGES, batch_size=50, checkpoint_path=ck, checkpoint_every=3)
        # recorded[0] is the pre-stream snapshot at the resume position
        # (4); every periodic one must land on a global multiple of 3
        # (the buggy local cadence produced 7, 10, 13, ...), and the
        # final end-of-stream snapshot repeats the last batch index.
        total = -(-len(EDGES) // 50)
        expected = [b for b in range(5, total + 1) if b % 3 == 0] + [total]
        assert recorded[0] == 4
        assert recorded[1:] == expected, (
            f"periodic checkpoints must land on global multiples of 3, got "
            f"{recorded}"
        )

    def test_checkpoint_signal_without_path_raises(self):
        """Regression: run(checkpoint_signal=...) without checkpoint_path
        was silently ignored -- the caller believed snapshots were armed."""
        import signal as signal_module

        sig = getattr(signal_module, "SIGUSR1", signal_module.SIGTERM)
        pipeline = Pipeline.from_registry(["exact"])
        with pytest.raises(InvalidParameterError, match="checkpoint_signal"):
            pipeline.run(EDGES, checkpoint_signal=sig)
        with pytest.raises(InvalidParameterError, match="checkpoint_signal"):
            pipeline.snapshots(EDGES, checkpoint_signal=sig)


@pytest.mark.timeout(60)
class TestFollowSource:
    def test_follows_a_file_appended_mid_read(self, tmp_path):
        """The tail -f contract: edges appended after reading starts are
        still streamed, in order, across poll boundaries."""
        path = tmp_path / "grow.edges"
        write_edge_list(path, EDGES[:100])
        appended = threading.Event()

        def appender():
            time.sleep(0.05)
            with open(path, "a", encoding="utf-8") as handle:
                for u, v in EDGES[100:200]:
                    handle.write(f"{u} {v}\n")
            appended.set()

        thread = threading.Thread(target=appender)
        thread.start()
        source = FollowSource(path, poll_interval=0.01, idle_timeout=0.5)
        got = [e for batch in source.batches(64) for e in batch]
        thread.join()
        assert appended.is_set()
        assert got == EDGES[:200]

    def test_partial_trailing_line_waits_for_newline(self, tmp_path):
        path = tmp_path / "partial.edges"
        path.write_text("0 1\n2 3")  # "2 3" has no newline yet
        polls = {"n": 0}

        def stop():
            polls["n"] += 1
            if polls["n"] == 1:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write("9\n4 5\n")  # completes "2 39"
                return False
            return True

        source = FollowSource(path, poll_interval=0.01, stop=stop)
        got = [e for batch in source.batches(10) for e in batch]
        assert got == [(0, 1), (2, 39), (4, 5)]

    def test_trailing_line_without_newline_parsed_at_stop(self, tmp_path):
        path = tmp_path / "tail.edges"
        path.write_text("0 1\n2 3")
        source = FollowSource(path, poll_interval=0.01, idle_timeout=0.05)
        got = [e for batch in source.batches(10) for e in batch]
        assert got == [(0, 1), (2, 3)]

    def test_idle_flushes_short_batches(self, tmp_path):
        """A live consumer must see buffered edges when the file idles,
        not wait for a full batch."""
        path = tmp_path / "idle.edges"
        write_edge_list(path, EDGES[:10])
        source = FollowSource(path, poll_interval=0.01, idle_timeout=0.05)
        batches = list(source.batches(1_000))
        assert [len(b) for b in batches] == [10]

    def test_deduplicates_across_polls_when_asked(self, tmp_path):
        path = tmp_path / "dups.edges"
        path.write_text("0 1\n1 2\n")
        polls = {"n": 0}

        def stop():
            polls["n"] += 1
            if polls["n"] == 1:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write("1 0\n2 3\n0 1\n")
                return False
            return True

        source = FollowSource(path, poll_interval=0.01, stop=stop, deduplicate=True)
        got = [e for batch in source.batches(10) for e in batch]
        assert got == [(0, 1), (1, 2), (2, 3)]

    def test_replayable_and_fail_fast(self, tmp_path):
        path = tmp_path / "replay.edges"
        write_edge_list(path, EDGES[:20])
        source = FollowSource(path, poll_interval=0.01, idle_timeout=0.0)
        first = [e for b in source.batches(8) for e in b]
        second = [e for b in source.batches(8) for e in b]
        assert first == second == EDGES[:20]
        with pytest.raises(FileNotFoundError):
            FollowSource(tmp_path / "nope.edges", idle_timeout=0.0).batches(8)
        with pytest.raises(ValueError):
            source.batches(0)

    def test_invalid_parameters(self, tmp_path):
        path = tmp_path / "p.edges"
        path.write_text("0 1\n")
        with pytest.raises(InvalidParameterError):
            FollowSource(path, poll_interval=0.0)
        with pytest.raises(InvalidParameterError):
            FollowSource(path, idle_timeout=-1.0)


class TestLineSource:
    def test_streams_an_open_handle(self):
        text = "".join(f"{u} {v}\n" for u, v in EDGES[:50])
        source = LineSource(io.StringIO(text))
        assert [e for b in source.batches(16) for e in b] == EDGES[:50]

    def test_one_shot(self):
        source = LineSource(io.StringIO("0 1\n"))
        list(source.batches(4))
        with pytest.raises(SourceExhaustedError):
            source.batches(4)

    def test_bad_batch_size_does_not_consume(self):
        source = LineSource(io.StringIO("0 1\n"))
        with pytest.raises(ValueError):
            source.batches(0)
        assert [e for b in source.batches(4) for e in b] == [(0, 1)]

    def test_rejects_non_file_input(self):
        with pytest.raises(InvalidParameterError):
            LineSource([(0, 1)])

    def test_dedup_option(self):
        source = LineSource(io.StringIO("0 1\n1 0\n1 2\n"), deduplicate=True)
        assert [e for b in source.batches(4) for e in b] == [(0, 1), (1, 2)]

    def test_binary_handle_wrapped_to_text(self):
        """Binary handles (subprocess pipes, sockets) are wrapped in a
        UTF-8 text layer -- including through the ragged-row fallback,
        which used to crash on bytes lines."""
        source = LineSource(io.BytesIO(b"0 1\n1 2 3.5 extra\n2 3\n"))
        assert [e for b in source.batches(10) for e in b] == [
            (0, 1), (1, 2), (2, 3)
        ]

    def test_live_gulping_does_not_wait_for_parser_chunk(self):
        """Regression: the chunk parser's loadtxt quota (~87k rows)
        must not delay a live stream -- one batch of lines has to
        surface as soon as it is readable, proven here by a handle
        that blocks forever after serving two batches' worth."""

        class TwoBatchesThenBlock:
            def __init__(self, lines):
                self._lines = iter(lines)

            def read(self, n=-1):
                return ""

            def readline(self):  # pragma: no cover - iterator used
                return next(self._lines, "")

            def __iter__(self):
                return self

            def __next__(self):
                line = next(self._lines, None)
                if line is None:
                    raise AssertionError(
                        "consumer read past the available lines instead "
                        "of yielding the batches it already has"
                    )
                return line

        lines = [f"{i} {i + 1}\n" for i in range(100)]
        batches = LineSource(TwoBatchesThenBlock(lines)).batches(50)
        assert len(next(batches)) == 50
        assert len(next(batches)) == 50

    def test_as_source_coerces_file_objects(self, tmp_path):
        assert isinstance(as_source(io.StringIO("0 1\n")), LineSource)
        path = tmp_path / "f.edges"
        path.write_text("0 1\n")
        with open(path, "r", encoding="utf-8") as handle:
            source = as_source(handle)
            assert isinstance(source, LineSource)
            assert [e for b in source.batches(4) for e in b] == [(0, 1)]


@pytest.mark.timeout(60)
class TestWatchCLI:
    def test_watch_emits_monotonic_snapshots_over_growing_file(
        self, tmp_path, capsys
    ):
        path = tmp_path / "live.edges"
        write_edge_list(path, EDGES[:100])

        def appender():
            time.sleep(0.05)
            with open(path, "a", encoding="utf-8") as handle:
                for u, v in EDGES[100:180]:
                    handle.write(f"{u} {v}\n")

        thread = threading.Thread(target=appender)
        thread.start()
        code = main(
            ["watch", "--input", str(path), "--estimator", "exact",
             "--every", "1", "--batch-size", "32",
             "--poll-interval", "0.01", "--idle-timeout", "0.5"]
        )
        thread.join()
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        edges = [int(line.split("|")[1].split()[0].replace(",", "")) for line in lines]
        assert edges == sorted(edges)
        assert edges[-1] == 180
        assert "[final]" in lines[-1]

    def test_watch_jsonl_output(self, tmp_path):
        path = tmp_path / "live.edges"
        write_edge_list(path, EDGES[:64])
        out = tmp_path / "snaps.jsonl"
        code = main(
            ["watch", "--input", str(path), "--estimator", "exact",
             "--every", "1", "--batch-size", "32", "--jsonl", str(out),
             "--poll-interval", "0.01", "--idle-timeout", "0.05"]
        )
        assert code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["edges"] for r in records] == sorted(r["edges"] for r in records)
        assert records[-1]["final"] is True
        assert records[-1]["edges"] == 64

    def test_watch_reads_stdin(self, capsys, monkeypatch):
        text = "".join(f"{u} {v}\n" for u, v in EDGES[:60])
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        code = main(
            ["watch", "--input", "-", "--estimator", "exact",
             "--every", "1", "--batch-size", "25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[final]" in out and "60 edges" in out

    def test_watch_resume_continues_from_checkpoint(self, tmp_path, capsys):
        """Kill/restart workflow: watch, checkpoint, grow the file,
        re-watch with --resume; snapshots continue past the old total."""
        path = tmp_path / "live.edges"
        ck = tmp_path / "ck"
        write_edge_list(path, EDGES[:96])
        args = ["watch", "--input", str(path), "--estimator", "exact",
                "--every", "1", "--batch-size", "32",
                "--poll-interval", "0.01", "--idle-timeout", "0.05",
                "--checkpoint", str(ck)]
        assert main(args) == 0
        first = capsys.readouterr().out.strip().splitlines()
        assert "96 edges" in first[-1]

        with open(path, "a", encoding="utf-8") as handle:
            for u, v in EDGES[96:160]:
                handle.write(f"{u} {v}\n")
        assert main(args + ["--resume", str(ck)]) == 0
        resumed = capsys.readouterr().out.strip().splitlines()
        # the resumed watcher picks up at the checkpoint, not batch 0
        assert "128 edges" in resumed[0]
        assert "160 edges" in resumed[-1]

        exact = main(["exact", "--input", str(path), "--no-dedup"])
        assert exact == 0
        assert "edges: 160" in capsys.readouterr().out

    def test_watch_rejects_stdin_resume(self, tmp_path, capsys):
        code = main(
            ["watch", "--input", "-", "--resume", str(tmp_path / "ck")]
        )
        assert code == 1
        assert "replayable" in capsys.readouterr().err

    def test_watch_rejects_follow_flags_with_stdin(self, capsys):
        """--idle-timeout/--poll-interval have no effect on stdin;
        accepting them would leave a watcher hanging its user expects
        to stop on idle."""
        assert main(["watch", "--input", "-", "--idle-timeout", "5"]) == 1
        assert "following a file" in capsys.readouterr().err
        assert main(["watch", "--input", "-", "--poll-interval", "1"]) == 1
        assert "following a file" in capsys.readouterr().err


class TestIterableSourceValidation:
    def test_bad_batch_size_raises_eagerly_and_preserves_stream(self):
        """Regression: batches(0) nulled the iterator before validating,
        permanently exhausting the source without yielding an edge."""
        from repro.streaming import IterableSource

        source = IterableSource(iter(EDGES[:10]))
        with pytest.raises(ValueError, match="batch_size"):
            source.batches(0)
        # the stream is untouched: a corrected call sees every edge
        assert [e for b in source.batches(4) for e in b] == EDGES[:10]
