"""Tests for the generalized l-clique pattern samplers (Theorem 5.6/5.7)."""

import pytest

from repro.core.cliques import CliqueCounter, CliqueSampler, PatternSampler, clique_patterns
from repro.errors import InsufficientSampleError, InvalidParameterError
from repro.exact import count_cliques, count_triangles, list_cliques
from repro.generators import complete_graph, erdos_renyi, planted_clique
from repro.graph import EdgeStream
from tests.conftest import assert_mean_close


class TestPatterns:
    def test_triangle_pattern(self):
        assert clique_patterns(3) == [(2, 1)]

    def test_four_clique_patterns(self):
        assert sorted(clique_patterns(4)) == [(2, 1, 1), (2, 2)]

    def test_five_clique_patterns(self):
        patterns = clique_patterns(5)
        assert sorted(patterns) == [(2, 1, 1, 1), (2, 1, 2), (2, 2, 1)]
        assert all(sum(p) == 5 for p in patterns)

    def test_pattern_count_grows_like_fibonacci(self):
        # compositions of l-2 into {1,2}: Fibonacci numbers.
        counts = [len(clique_patterns(size)) for size in range(3, 9)]
        assert counts == [1, 2, 3, 5, 8, 13]

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            clique_patterns(2)

    def test_invalid_pattern_rejected(self):
        with pytest.raises(InvalidParameterError):
            PatternSampler((1, 2))
        with pytest.raises(InvalidParameterError):
            PatternSampler((2, 3))
        with pytest.raises(InvalidParameterError):
            PatternSampler(())


class TestTrianglePatternMatchesAlgorithm1:
    """Pattern (2, 1) must reproduce triangle counting exactly."""

    def test_unbiased_triangle_estimates(self, small_er_graph):
        edges, tau = small_er_graph
        estimates = []
        for seed in range(3000):
            s = PatternSampler((2, 1), seed=seed)
            for e in edges:
                s.update(e)
            estimates.append(s.estimate())
        assert_mean_close(estimates, tau, z=6.0)

    def test_held_triangles_are_real(self, small_er_graph):
        from repro.exact import list_triangles

        edges, _ = small_er_graph
        real = set(list_triangles(edges))
        for seed in range(200):
            s = PatternSampler((2, 1), seed=seed)
            for e in edges:
                s.update(e)
            clique = s.held_clique()
            if clique is not None:
                assert clique in real


class TestFourCliquePatterns:
    def test_type1_pattern_on_type1_order(self):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        estimates = []
        for seed in range(8000):
            s = PatternSampler((2, 1, 1), seed=seed)
            for e in edges:
                s.update(e)
            estimates.append(s.estimate())
        assert_mean_close(estimates, 1.0, z=6.0)

    def test_type2_pattern_on_type2_order(self):
        edges = [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)]
        estimates = []
        for seed in range(8000):
            s = PatternSampler((2, 2), seed=seed)
            for e in edges:
                s.update(e)
            estimates.append(s.estimate())
        assert_mean_close(estimates, 1.0, z=6.0)

    def test_counter_unbiased_on_er_graph(self):
        edges = erdos_renyi(25, 120, seed=5)
        true = count_cliques(edges, 4)
        assert true > 0
        estimates = []
        for seed in range(60):
            counter = CliqueCounter(4, 120, seed=seed)
            counter.update_batch(edges)
            estimates.append(counter.estimate())
        assert_mean_close(estimates, true, z=6.0)


class TestFiveCliques:
    def test_unbiased_on_k6(self):
        """K6 contains C(6,5) = 6 5-cliques; random stream orders."""
        true = count_cliques(complete_graph(6), 5)
        assert true == 6
        estimates = []
        for seed in range(100):
            stream = EdgeStream(complete_graph(6), validate=False).shuffled(seed)
            counter = CliqueCounter(5, 60, seed=seed)
            counter.update_batch(list(stream))
            estimates.append(counter.estimate())
        assert_mean_close(estimates, true, z=6.0)

    def test_zero_on_sparse_graph(self):
        edges = [(i, i + 1) for i in range(25)]
        counter = CliqueCounter(5, 100, seed=1)
        counter.update_batch(edges)
        assert counter.estimate() == 0.0


class TestCliqueCounterApi:
    def test_requires_positive_pool(self):
        with pytest.raises(InvalidParameterError):
            CliqueCounter(4, 0)

    def test_held_cliques_are_valid(self):
        edges = planted_clique(18, 5, 20, seed=7)
        real = set(list_cliques(edges, 4))
        counter = CliqueCounter(4, 300, seed=8)
        counter.update_batch(edges)
        for clique in counter.held_cliques():
            assert clique in real

    def test_size3_counter_matches_exact_triangles(self, small_social_graph):
        edges, tau = small_social_graph
        assert tau == count_triangles(edges)
        counter = CliqueCounter(3, 4000, seed=9)
        counter.update_batch(edges)
        assert abs(counter.estimate() - tau) / tau < 0.30

    def test_pattern_estimate_accessor(self):
        counter = CliqueCounter(4, 10, seed=0)
        counter.update_batch(complete_graph(4))
        total = sum(counter.pattern_estimate(p) for p in counter.patterns)
        assert total == pytest.approx(counter.estimate())


class TestCliqueSampler:
    def test_requires_valid_max_degree(self):
        with pytest.raises(InvalidParameterError):
            CliqueSampler(4, 10, max_degree=0)

    def test_sampled_cliques_are_real(self):
        edges = planted_clique(15, 5, 12, seed=3)
        real = set(list_cliques(edges, 4))
        from repro.graph import StaticGraph

        delta = StaticGraph(edges, strict=False).max_degree()
        sampler = CliqueSampler(4, 3000, max_degree=delta, seed=4)
        sampler.update_batch(edges)
        try:
            cliques = sampler.sample(2)
        except InsufficientSampleError:
            pytest.skip("rejection left too few samples at this pool size")
        for c in cliques:
            assert c in real

    def test_insufficient_raises(self):
        sampler = CliqueSampler(4, 5, max_degree=10, seed=5)
        sampler.update_batch([(i, i + 1) for i in range(10)])
        with pytest.raises(InsufficientSampleError):
            sampler.sample(1)
