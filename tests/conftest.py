"""Shared fixtures and statistical assertion helpers for the test suite."""

from __future__ import annotations

import math
import signal
import statistics
import threading

import pytest

from repro.exact import count_triangles
from repro.generators import erdos_renyi, holme_kim
from repro.graph import EdgeStream


# ---------------------------------------------------------------------------
# Hard per-test timeouts. The parallel/checkpoint tests guard against
# hang regressions (a worker dying silently used to wedge the parent
# forever), so a hang must FAIL the test, not stall the suite. CI
# installs pytest-timeout, which owns the `timeout` marker there; this
# fallback honors the same marker via SIGALRM when the plugin is absent
# (e.g. a bare local environment).
# ---------------------------------------------------------------------------

def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it exceeds the wall-clock budget",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or item.config.pluginmanager.hasplugin("timeout")  # pytest-timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)
    seconds = float(marker.args[0] if marker.args else marker.kwargs.get("seconds", 60))

    def _on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Statistical helper: Monte-Carlo estimates need confidence-interval
# assertions, not equality. All randomized tests are seeded, so failures
# are reproducible, and tolerances use generous z-scores to keep the
# false-failure rate negligible.
# ---------------------------------------------------------------------------

def assert_mean_close(samples, expected, *, z: float = 5.0, min_spread: float = 1e-9):
    """Assert the sample mean is within ``z`` standard errors of ``expected``."""
    n = len(samples)
    assert n >= 2, "need at least two samples"
    mean = statistics.fmean(samples)
    spread = statistics.pstdev(samples)
    stderr = max(spread, min_spread) / math.sqrt(n)
    assert abs(mean - expected) <= z * stderr + 1e-12, (
        f"sample mean {mean:.4f} deviates from expected {expected:.4f} "
        f"by more than {z} standard errors ({stderr:.4f})"
    )


def assert_fraction_close(successes, trials, expected, *, z: float = 5.0):
    """Assert a Bernoulli success fraction matches ``expected``."""
    assert trials > 0
    frac = successes / trials
    stderr = math.sqrt(max(expected * (1 - expected), 1e-12) / trials)
    assert abs(frac - expected) <= z * stderr + 1e-12, (
        f"fraction {frac:.5f} deviates from expected {expected:.5f} "
        f"by more than {z} stderr ({stderr:.5f})"
    )


@pytest.fixture(scope="session")
def small_er_graph():
    """A small Erdos-Renyi graph with a known triangle count."""
    edges = erdos_renyi(60, 300, seed=3)
    return edges, count_triangles(edges)


@pytest.fixture(scope="session")
def small_social_graph():
    """A clustered power-law graph (triangle-rich)."""
    edges = holme_kim(300, 4, 0.6, seed=11)
    return edges, count_triangles(edges)


@pytest.fixture()
def triangle_stream():
    """One triangle followed by a pendant edge."""
    return EdgeStream([(0, 1), (1, 2), (0, 2), (2, 3)])


@pytest.fixture(scope="session")
def worked_example_stream():
    """A 10-edge stream in the spirit of the paper's Figure 1.

    Triangles: t1 = {1,2,3} (first edge e1, c(e1) = 2), t2 = {4,5,6} and
    t3 = {4,5,7} (both first edge e4, c(e4) = 6). Exact neighborhood-
    sampling probabilities: Pr[t1] = 1/20, Pr[t2] = Pr[t3] = 1/60.
    """
    return EdgeStream(
        [
            (1, 2),  # e1
            (1, 3),  # e2
            (2, 3),  # e3  -> t1 closed
            (4, 5),  # e4
            (4, 6),  # e5
            (5, 6),  # e6  -> t2 closed
            (4, 7),  # e7
            (5, 7),  # e8  -> t3 closed
            (4, 8),  # e9
            (5, 9),  # e10
        ]
    )
