"""Tests for sliding-window triangle counting (Section 5.2)."""

import math

import pytest

from repro.core.sliding_window import ChainedWindowSampler, SlidingWindowTriangleCounter
from repro.errors import InvalidParameterError
from repro.exact import sliding_window_triangle_counts
from repro.generators import erdos_renyi
from repro.graph import EdgeStream
from tests.conftest import assert_mean_close


class TestChainStructure:
    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            ChainedWindowSampler(0)

    def test_chain_holds_suffix_minima(self):
        s = ChainedWindowSampler(window=50, seed=1)
        for e in [(i, i + 1) for i in range(40)]:
            s.update(e)
        rhos = [link.rho for link in s._chain]
        assert rhos == sorted(rhos)  # strictly increasing priorities
        positions = [link.pos for link in s._chain]
        assert positions == sorted(positions)

    def test_expired_edges_leave_chain(self):
        s = ChainedWindowSampler(window=5, seed=2)
        for e in [(i, i + 1) for i in range(30)]:
            s.update(e)
        for link in s._chain:
            assert link.pos > 30 - 5

    def test_expected_chain_length_is_logarithmic(self):
        w = 256
        lengths = []
        for seed in range(300):
            s = ChainedWindowSampler(window=w, seed=seed)
            for e in [(i, i + 1) for i in range(w)]:
                s.update(e)
            lengths.append(s.chain_length())
        mean_len = sum(lengths) / len(lengths)
        # Expected length is the harmonic number H_w ~ ln w + gamma.
        expected = math.log(w) + 0.5772
        assert abs(mean_len - expected) < 1.0

    def test_head_uniform_over_window(self):
        edges = [(0, i) for i in range(1, 9)]
        w = 4
        counts = {e: 0 for e in edges[-w:]}
        trials = 20_000
        for seed in range(trials):
            s = ChainedWindowSampler(window=w, seed=seed)
            for e in edges:
                s.update(e)
            counts[s.head().edge] += 1
        expected = trials / w
        for count in counts.values():
            assert abs(count - expected) < 6 * expected**0.5

    def test_window_size_reporting(self):
        s = ChainedWindowSampler(window=10, seed=3)
        for e in [(i, i + 1) for i in range(4)]:
            s.update(e)
        assert s.window_size() == 4
        for e in [(i, i + 1) for i in range(4, 30)]:
            s.update(e)
        assert s.window_size() == 10


class TestWindowedEstimates:
    def test_unbiased_for_window_triangles(self):
        """E[estimate] equals the triangle count of the current window."""
        edges = erdos_renyi(30, 120, seed=4)
        window = 60
        exact = sliding_window_triangle_counts(
            EdgeStream(edges, validate=False), window
        )[-1]
        estimates = []
        for seed in range(4000):
            s = ChainedWindowSampler(window=window, seed=seed)
            for e in edges:
                s.update(e)
            estimates.append(s.triangle_estimate())
        assert_mean_close(estimates, exact, z=6.0)

    def test_held_triangle_is_inside_window(self):
        edges = erdos_renyi(30, 120, seed=5)
        window = 40
        for seed in range(200):
            s = ChainedWindowSampler(window=window, seed=seed)
            for e in edges:
                s.update(e)
            tri = s.held_triangle()
            if tri is None:
                continue
            window_edges = set(
                EdgeStream(edges, validate=False).edges[-window:]
            )
            a, b, c = tri
            assert {(min(a, b), max(a, b)), (min(a, c), max(a, c)),
                    (min(b, c), max(b, c))} <= window_edges

    def test_expired_triangles_not_counted(self):
        # Triangle at the start, then 20 fresh path edges: window of 5
        # no longer contains it.
        edges = [(0, 1), (1, 2), (0, 2)] + [(i, i + 1) for i in range(10, 30)]
        for seed in range(100):
            s = ChainedWindowSampler(window=5, seed=seed)
            for e in edges:
                s.update(e)
            assert s.triangle_estimate() == 0.0


class TestCounterFacade:
    def test_requires_positive_pool(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowTriangleCounter(0, 10)

    def test_estimate_tracks_window(self):
        edges = erdos_renyi(30, 150, seed=6)
        window = 75
        exact = sliding_window_triangle_counts(
            EdgeStream(edges, validate=False), window
        )[-1]
        counter = SlidingWindowTriangleCounter(3000, window, seed=7)
        counter.update_batch(edges)
        assert exact > 0
        assert abs(counter.estimate() - exact) / exact < 0.5

    def test_mean_chain_length(self):
        counter = SlidingWindowTriangleCounter(50, 64, seed=8)
        counter.update_batch([(i, i + 1) for i in range(64)])
        assert 1.0 <= counter.mean_chain_length() <= 12.0
