"""Unit suite for the persistent watch-index delta/compaction life cycle.

The index contract (see :mod:`repro.core.watch_index`): every live
entry is findable through any mix of tiers (sorted base with optional
dense offsets + bitmap, sorted run, unsorted tail); deletions are lazy
(stale entries may over-report but never under-report, and
``note_stale`` only feeds the compaction budget); ``rebuild`` resets
everything from the authoritative state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.watch_index import WatchIndex, _expand_ranges


class TinyTail(WatchIndex):
    """A tail of 8 forces run merges in small tests."""

    __slots__ = ()
    _TAIL_MAX = 8


def lookup_pairs(index, keys):
    slots, qidx = index.lookup(np.asarray(sorted(set(keys)), dtype=np.int64))
    query = sorted(set(keys))
    return sorted((int(query[q]), int(s)) for s, q in zip(slots, qidx))


def reference_pairs(entries, keys):
    keyset = set(keys)
    return sorted((int(k), int(s)) for k, s in entries if k in keyset)


class TestLifecycle:
    def test_insert_and_query(self):
        idx = WatchIndex()
        idx.add(np.array([5, 3, 5], dtype=np.int64), np.array([0, 1, 2], dtype=np.int64))
        assert lookup_pairs(idx, [3, 5, 7]) == [(3, 1), (5, 0), (5, 2)]
        assert idx.size == 3
        assert idx.delta_size == 3

    def test_replace_leaves_stale_entry_and_counts_churn(self):
        # "Replace" is add-new + note_stale(old): the old entry remains
        # visible (caller filters liveness) and churn reflects both.
        idx = WatchIndex()
        idx.add(np.array([4], dtype=np.int64), np.array([7], dtype=np.int64))
        churn_before = idx.churn
        idx.add(np.array([9], dtype=np.int64), np.array([7], dtype=np.int64))
        idx.note_stale(1)
        assert lookup_pairs(idx, [4, 9]) == [(4, 7), (9, 7)]  # stale 4 still reported
        assert idx.churn == churn_before + 2  # one add + one tombstone

    def test_tombstones_are_never_materialized(self):
        idx = WatchIndex()
        idx.add(np.array([1, 2], dtype=np.int64), np.array([0, 1], dtype=np.int64))
        idx.note_stale(2)
        # note_stale alone never removes anything...
        assert lookup_pairs(idx, [1, 2]) == [(1, 0), (2, 1)]
        # ...only a rebuild (from the authoritative live set) drops them.
        idx.rebuild(np.array([2], dtype=np.int64), np.array([1], dtype=np.int64))
        assert lookup_pairs(idx, [1, 2]) == [(2, 1)]
        assert idx.churn == 0

    def test_compaction_preserves_lookup_results(self):
        idx = TinyTail()
        entries = [(k % 11, k % 5) for k in range(60)]
        for k, s in entries:  # one-by-one: exercises tail -> run merges
            idx.add(np.array([k], dtype=np.int64), np.array([s], dtype=np.int64))
        before = lookup_pairs(idx, range(12))
        assert before == reference_pairs(entries, range(12))
        idx.consolidate()
        assert idx.delta_size == 0
        assert lookup_pairs(idx, range(12)) == before

    def test_rebuild_resets_counters(self):
        idx = WatchIndex()
        idx.add(np.array([1], dtype=np.int64), np.array([2], dtype=np.int64))
        idx.note_stale(5)
        assert idx.churn == 6
        idx.rebuild(np.array([8], dtype=np.int64), np.array([3], dtype=np.int64))
        assert idx.churn == 0
        assert lookup_pairs(idx, [1, 8]) == [(8, 3)]

    def test_empty_queries_and_empty_index(self):
        idx = WatchIndex()
        slots, qidx = idx.lookup(np.array([1, 2], dtype=np.int64))
        assert slots.shape == qidx.shape == (0,)
        idx.add(np.array([1], dtype=np.int64), np.array([0], dtype=np.int64))
        slots, qidx = idx.lookup(np.empty(0, dtype=np.int64))
        assert slots.shape == (0,)


class TestRepresentations:
    """The packed / split / dense-offset base forms must agree."""

    def test_dense_offsets_and_bitmap_built_for_compact_keys(self):
        idx = WatchIndex()
        idx.rebuild(np.array([3, 1, 3], dtype=np.int64), np.array([0, 1, 2], dtype=np.int64))
        assert idx._offsets is not None
        assert idx._bitmap is not None
        assert lookup_pairs(idx, [0, 1, 2, 3]) == [(1, 1), (3, 0), (3, 2)]

    def test_wide_keys_fall_back_to_split_arrays(self):
        keys = np.array([1 << 62, (1 << 62) + 5], dtype=np.int64)
        idx = WatchIndex()
        idx.rebuild(keys, np.array([4, 9], dtype=np.int64))
        assert idx._offsets is None
        assert idx._packed.shape[0] == 0  # cannot pack 62-bit keys + slots
        slots, qidx = idx.lookup(np.sort(keys))
        assert sorted(slots.tolist()) == [4, 9]

    def test_bitmap_survives_in_span_adds_and_drops_beyond_span(self):
        idx = WatchIndex()
        idx.rebuild(np.array([2, 4], dtype=np.int64), np.array([0, 1], dtype=np.int64))
        assert idx._bitmap is not None
        idx.add(np.array([3], dtype=np.int64), np.array([2], dtype=np.int64))
        assert idx._bitmap is not None  # in-span: incrementally marked
        assert lookup_pairs(idx, [2, 3, 4]) == [(2, 0), (3, 2), (4, 1)]
        far = int(idx._offsets_hi) + 100
        idx.add(np.array([far], dtype=np.int64), np.array([3], dtype=np.int64))
        assert idx._bitmap is None  # beyond span: prefilter disabled
        assert lookup_pairs(idx, [2, far]) == [(2, 0), (far, 3)]

    @settings(deadline=None, max_examples=60)
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 30)), max_size=60
        ),
        queries=st.lists(st.integers(0, 45), max_size=30),
        offset=st.sampled_from([0, 1 << 20, 1 << 45]),
        tail_max=st.sampled_from([2, 8, 1 << 20]),
    )
    def test_lookup_matches_reference_across_forms(
        self, entries, queries, offset, tail_max
    ):
        class Sized(WatchIndex):
            __slots__ = ()
            _TAIL_MAX = tail_max

        idx = Sized()
        shifted = [(k + offset, s) for k, s in entries]
        half = len(shifted) // 2
        if half:
            idx.rebuild(
                np.array([k for k, _ in shifted[:half]], dtype=np.int64),
                np.array([s for _, s in shifted[:half]], dtype=np.int64),
            )
        for k, s in shifted[half:]:
            idx.add(np.array([k], dtype=np.int64), np.array([s], dtype=np.int64))
        shifted_queries = [q + offset for q in queries]
        assert lookup_pairs(idx, shifted_queries) == reference_pairs(
            shifted, shifted_queries
        )


class TestExpandRanges:
    def test_expands_and_tags_ranges(self):
        lo = np.array([0, 3, 3, 7], dtype=np.int64)
        hi = np.array([2, 3, 6, 8], dtype=np.int64)
        pos, qidx = _expand_ranges(lo, hi, np.arange(4, dtype=np.int64))
        assert pos.tolist() == [0, 1, 3, 4, 5, 7]
        assert qidx.tolist() == [0, 0, 2, 2, 2, 3]

    def test_all_empty(self):
        pos, qidx = _expand_ranges(
            np.array([4], dtype=np.int64),
            np.array([4], dtype=np.int64),
            np.array([0], dtype=np.int64),
        )
        assert pos.shape == qidx.shape == (0,)


def test_nbytes_accounts_all_tiers():
    idx = TinyTail()
    assert idx.nbytes() == 0
    idx.rebuild(np.arange(100, dtype=np.int64), np.arange(100, dtype=np.int64))
    base_only = idx.nbytes()
    assert base_only > 0
    idx.add(np.arange(20, dtype=np.int64), np.arange(20, dtype=np.int64))
    assert idx.nbytes() > base_only
