"""Tests for the StaticGraph adjacency structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateEdgeError, InvalidEdgeError
from repro.graph import StaticGraph

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda e: e[0] != e[1]),
    max_size=60,
)


class TestConstruction:
    def test_counts(self):
        g = StaticGraph([(0, 1), (1, 2), (0, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_duplicate_rejected_in_strict_mode(self):
        with pytest.raises(DuplicateEdgeError):
            StaticGraph([(0, 1), (1, 0)])

    def test_self_loop_rejected_in_strict_mode(self):
        with pytest.raises(InvalidEdgeError):
            StaticGraph([(2, 2)])

    def test_lenient_mode_drops_bad_edges(self):
        g = StaticGraph([(0, 1), (1, 0), (2, 2), (1, 2)], strict=False)
        assert g.num_edges == 2

    def test_add_vertex_isolated(self):
        g = StaticGraph([(0, 1)])
        g.add_vertex(9)
        assert g.num_vertices == 3
        assert g.degree(9) == 0


class TestQueries:
    def test_degrees_and_max(self):
        g = StaticGraph([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert g.degree(0) == 3
        assert g.degree(3) == 1
        assert g.degree(42) == 0
        assert g.max_degree() == 3
        assert g.degrees() == {0: 3, 1: 2, 2: 2, 3: 1}

    def test_has_edge_and_contains(self):
        g = StaticGraph([(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert (0, 1) in g and (1, 0) in g
        assert not g.has_edge(0, 2)

    def test_neighbors(self):
        g = StaticGraph([(0, 1), (0, 2)])
        assert g.neighbors(0) == frozenset({1, 2})
        assert g.neighbors(5) == frozenset()

    def test_edges_canonical_and_unique(self):
        g = StaticGraph([(3, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_neighbors_intersection(self):
        g = StaticGraph([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        assert g.neighbors_intersection(1, 2) == {0, 3}
        assert g.neighbors_intersection(0, 3) == {1, 2}

    def test_degree_histogram(self):
        g = StaticGraph([(0, 1), (0, 2), (0, 3)])
        assert g.degree_histogram() == {3: 1, 1: 3}

    def test_subgraph(self):
        g = StaticGraph([(0, 1), (1, 2), (0, 2), (2, 3)])
        sub = g.subgraph({0, 1, 2})
        assert sub.num_edges == 3
        assert not sub.has_edge(2, 3)

    def test_empty_graph(self):
        g = StaticGraph()
        assert g.num_vertices == 0
        assert g.max_degree() == 0
        assert list(g.edges()) == []


class TestProperties:
    @given(edge_lists)
    @settings(max_examples=40)
    def test_handshake_lemma(self, edges):
        g = StaticGraph(edges, strict=False)
        assert sum(g.degrees().values()) == 2 * g.num_edges

    @given(edge_lists)
    @settings(max_examples=40)
    def test_edges_round_trip(self, edges):
        g = StaticGraph(edges, strict=False)
        rebuilt = StaticGraph(g.edges())
        assert sorted(rebuilt.edges()) == sorted(g.edges())
        assert rebuilt.num_vertices == len({u for e in g.edges() for u in e})
