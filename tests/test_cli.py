"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.generators import holme_kim
from repro.graph import write_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.edges"
    write_edge_list(path, holme_kim(300, 3, 0.6, seed=1))
    return str(path)


class TestCount:
    def test_reports_estimate(self, graph_file, capsys):
        assert main(["count", "--input", graph_file, "--estimators", "2000"]) == 0
        out = capsys.readouterr().out
        assert "estimated triangles" in out
        assert "edges/s" in out

    def test_engine_choice(self, graph_file, capsys):
        code = main(
            ["count", "--input", graph_file, "--estimators", "200",
             "--engine", "bulk"]
        )
        assert code == 0

    def test_missing_file(self, capsys):
        assert main(["count", "--input", "/nonexistent.edges"]) == 2
        assert "error" in capsys.readouterr().err


class TestTransitivity:
    def test_reports_kappa(self, graph_file, capsys):
        code = main(
            ["transitivity", "--input", graph_file, "--estimators", "3000"]
        )
        assert code == 0
        assert "transitivity" in capsys.readouterr().out


class TestSample:
    def test_prints_k_triangles(self, graph_file, capsys):
        code = main(
            ["sample", "--input", graph_file, "--estimators", "5000", "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("  ")]
        assert len(lines) == 2

    def test_failure_when_pool_too_small(self, tmp_path, capsys):
        # A triangle-free path: no sampler can ever release a triangle.
        path = tmp_path / "path.edges"
        write_edge_list(path, [(i, i + 1) for i in range(20)])
        code = main(["sample", "--input", str(path), "--estimators", "10"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestPipeline:
    def test_default_estimators(self, graph_file, capsys):
        code = main(
            ["pipeline", "--input", graph_file, "--estimators", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "count:" in out
        assert "transitivity:" in out
        assert "exact:" in out
        assert "stream pass" in out

    def test_explicit_estimator_selection(self, graph_file, capsys):
        code = main(
            ["pipeline", "--input", graph_file, "--estimators", "1000",
             "--estimator", "count", "--estimator", "sample"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "count:" in out
        assert "sample:" in out
        assert "exact:" not in out

    def test_unknown_estimator_rejected(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["pipeline", "--input", graph_file, "--estimator", "nope"])

    def test_checkpoint_and_resume_round_trip(self, graph_file, tmp_path, capsys):
        ckpt = str(tmp_path / "ck")
        code = main(
            ["pipeline", "--input", graph_file, "--estimators", "500",
             "--estimator", "count", "--estimator", "exact",
             "--batch-size", "64", "--checkpoint", ckpt,
             "--checkpoint-every", "2"]
        )
        assert code == 0
        first = capsys.readouterr().out
        code = main(
            ["pipeline", "--input", graph_file, "--estimators", "500",
             "--estimator", "count", "--estimator", "exact",
             "--batch-size", "64", "--resume", ckpt]
        )
        assert code == 0
        resumed = capsys.readouterr().out
        # the resumed run replays nothing but reports the same results
        assert first.splitlines()[0] == resumed.splitlines()[0]  # edge totals

        def results_only(text, key):
            lines = [l for l in text.splitlines() if key in l]
            return [l.rsplit(" [", 1)[0] for l in lines]  # drop timings

        assert results_only(first, "exact:") == results_only(resumed, "exact:")
        assert results_only(first, "count:") == results_only(resumed, "count:")

    def test_workers_flag_runs_sharded(self, graph_file, capsys):
        code = main(
            ["pipeline", "--input", graph_file, "--estimators", "200",
             "--estimator", "count", "--estimator", "exact",
             "--workers", "2", "--batch-size", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "count:" in out
        assert "exact:" in out

    def test_workers_with_checkpoint_rejected(self, graph_file, tmp_path, capsys):
        code = main(
            ["pipeline", "--input", graph_file, "--workers", "2",
             "--checkpoint", str(tmp_path / "ck")]
        )
        assert code == 1
        assert "single-process" in capsys.readouterr().err


class TestDedup:
    def test_doubled_snap_file_deduped_by_default(self, tmp_path, capsys):
        """SNAP files often list each undirected edge in both
        directions; the CLI must count the simple graph by default."""
        path = tmp_path / "doubled.edges"
        path.write_text("0 1\n1 2\n0 2\n1 0\n2 1\n2 0\n")
        assert main(["exact", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "edges: 3" in out
        assert "triangles: 1" in out

    def test_no_dedup_streams_raw(self, tmp_path, capsys):
        path = tmp_path / "doubled.edges"
        path.write_text("0 1\n1 2\n0 2\n1 0\n2 1\n2 0\n")
        assert main(["exact", "--input", str(path), "--no-dedup"]) == 0
        assert "edges: 6" in capsys.readouterr().out


class TestExactAndStats:
    def test_exact_counts(self, graph_file, capsys):
        assert main(["exact", "--input", graph_file]) == 0
        out = capsys.readouterr().out
        assert "triangles" in out and "wedges" in out

    def test_exact_matches_library(self, graph_file, capsys):
        from repro.exact import count_triangles
        from repro.graph import read_edge_list

        main(["exact", "--input", graph_file])
        out = capsys.readouterr().out
        reported = int(
            next(l for l in out.splitlines() if l.startswith("triangles"))
            .split(":")[1].strip().replace(",", "")
        )
        assert reported == count_triangles(read_edge_list(graph_file))

    def test_stats(self, graph_file, capsys):
        assert main(["stats", "--input", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "max degree" in out
