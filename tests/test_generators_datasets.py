"""Tests for the dataset registry and its caching."""

import pytest

from repro.generators.datasets import (
    GroundTruth,
    available_datasets,
    dataset_spec,
    load_dataset,
)


class TestRegistry:
    def test_expected_names_present(self):
        names = available_datasets()
        for expected in (
            "amazon_like",
            "dblp_like",
            "youtube_like",
            "livejournal_like",
            "orkut_like",
            "syn_d_regular",
            "syn_3reg",
            "hepth_like",
        ):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            dataset_spec("nope")

    def test_specs_carry_paper_stats(self):
        spec = dataset_spec("syn_3reg")
        assert spec.paper_stats["tau"] == 1000


class TestGroundTruth:
    def test_ratio_property(self):
        t = GroundTruth(
            num_vertices=10, num_edges=20, max_degree=5, triangles=4, wedges=40
        )
        assert t.m_delta_over_tau == pytest.approx(25.0)

    def test_ratio_with_zero_triangles(self):
        t = GroundTruth(
            num_vertices=10, num_edges=20, max_degree=5, triangles=0, wedges=40
        )
        assert t.m_delta_over_tau == float("inf")

    def test_round_trip_dict(self):
        t = GroundTruth(
            num_vertices=1, num_edges=2, max_degree=3, triangles=4, wedges=5
        )
        assert GroundTruth(**t.to_dict()) == t


class TestLoading:
    def test_syn3reg_truth_matches_paper(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dataset = load_dataset("syn_3reg")
        assert dataset.truth.num_vertices == 2000
        assert dataset.truth.num_edges == 3000
        assert dataset.truth.max_degree == 3
        assert dataset.truth.triangles == 1000

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = load_dataset("syn_3reg", seed=1)
        cached = load_dataset("syn_3reg", seed=1)
        assert cached.edges == first.edges
        assert cached.truth == first.truth
        assert any(tmp_path.iterdir())  # files were written

    def test_stream_orders(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dataset = load_dataset("syn_3reg", seed=2)
        plain = list(dataset.stream())
        shuffled = list(dataset.stream(order="random", seed=3))
        assert sorted(plain) == sorted(shuffled)
        assert plain != shuffled
        with pytest.raises(ValueError):
            dataset.stream(order="bogus")
