"""Tests for exact triangle counting/listing."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    count_triangles,
    list_triangles,
    triangles_per_edge,
    triangles_per_vertex,
)
from repro.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph import StaticGraph

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
    max_size=50,
)


def brute_force_triangles(edges) -> int:
    g = StaticGraph(edges, strict=False)
    verts = sorted(g.vertices())
    return sum(
        1
        for a, b, c in itertools.combinations(verts, 3)
        if g.has_edge(a, b) and g.has_edge(a, c) and g.has_edge(b, c)
    )


class TestKnownGraphs:
    def test_single_triangle(self):
        assert count_triangles([(0, 1), (1, 2), (0, 2)]) == 1

    def test_complete_graphs(self):
        for n in range(3, 9):
            expected = n * (n - 1) * (n - 2) // 6
            assert count_triangles(complete_graph(n)) == expected

    def test_triangle_free_graphs(self):
        assert count_triangles(path_graph(10)) == 0
        assert count_triangles(star_graph(10)) == 0
        assert count_triangles(cycle_graph(8)) == 0

    def test_c3_is_one_triangle(self):
        assert count_triangles(cycle_graph(3)) == 1

    def test_empty_graph(self):
        assert count_triangles([]) == 0
        assert list_triangles([]) == []

    def test_accepts_graph_object(self):
        g = StaticGraph([(0, 1), (1, 2), (0, 2)])
        assert count_triangles(g) == 1


class TestListing:
    def test_lists_sorted_triples(self):
        tris = list_triangles([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
        assert tris == [(0, 1, 2), (1, 2, 3)]

    def test_each_triangle_once(self):
        tris = list_triangles(complete_graph(6))
        assert len(tris) == len(set(tris)) == 20


class TestPerEdgeAndPerVertex:
    def test_per_edge_counts_k4(self):
        counts = triangles_per_edge(complete_graph(4))
        # Every K4 edge lies in exactly 2 triangles.
        assert set(counts.values()) == {2}
        assert len(counts) == 6

    def test_per_vertex_counts_k4(self):
        counts = triangles_per_vertex(complete_graph(4))
        # Every K4 vertex lies in exactly 3 triangles.
        assert set(counts.values()) == {3}

    def test_sums_are_consistent(self, small_social_graph):
        edges, tau = small_social_graph
        per_edge = triangles_per_edge(edges)
        per_vertex = triangles_per_vertex(edges)
        assert sum(per_edge.values()) == 3 * tau
        assert sum(per_vertex.values()) == 3 * tau


class TestAgainstBruteForce:
    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, edges):
        assert count_triangles(edges) == brute_force_triangles(edges)

    @given(edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_listing_matches_count(self, edges):
        tris = list_triangles(edges)
        assert len(tris) == count_triangles(edges)
        g = StaticGraph(edges, strict=False)
        for a, b, c in tris:
            assert g.has_edge(a, b) and g.has_edge(a, c) and g.has_edge(b, c)
