"""Tests for the experiment harness, tables, and figures."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments import (
    TrialStats,
    ascii_plot,
    render_table,
    run_trials,
    stream_through,
    time_file_read,
    write_csv,
)
from repro.experiments.figures import ascii_histogram
from repro.experiments.tables import format_number


class _FixedCounter:
    """A fake counter returning a fixed estimate, for harness tests."""

    def __init__(self, value):
        self.value = value
        self.batches = 0

    def update_batch(self, batch):
        self.batches += 1

    def estimate(self):
        return self.value


class TestHarness:
    def test_stream_through_batches(self):
        counter = _FixedCounter(1.0)
        elapsed = stream_through(counter, [(0, 1)] * 10, batch_size=3)
        assert counter.batches == 4
        assert elapsed >= 0.0

    def test_run_trials_statistics(self):
        stats = run_trials(
            lambda seed: _FixedCounter(90.0 if seed % 2 else 110.0),
            lambda seed: [(0, 1), (1, 2)],
            true_value=100.0,
            trials=4,
        )
        assert stats.mean_deviation == pytest.approx(10.0)
        assert stats.min_deviation == pytest.approx(10.0)
        assert stats.max_deviation == pytest.approx(10.0)
        assert len(stats.estimates) == 4

    def test_deviation_requires_nonzero_truth(self):
        stats = TrialStats(true_value=0.0, estimates=[1.0], times=[0.1])
        with pytest.raises(InvalidParameterError):
            _ = stats.mean_deviation

    def test_invalid_trials(self):
        with pytest.raises(InvalidParameterError):
            run_trials(
                lambda seed: _FixedCounter(1.0),
                lambda seed: [],
                true_value=1.0,
                trials=0,
            )

    def test_throughput(self):
        stats = TrialStats(true_value=1.0, estimates=[1.0], times=[2.0])
        assert stats.throughput(1000) == pytest.approx(500.0)

    def test_summary_renders(self):
        stats = TrialStats(true_value=100.0, estimates=[99.0, 101.0], times=[0.5, 0.7])
        text = stats.summary()
        assert "dev" in text and "median time" in text

    def test_time_file_read(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 2\n")
        assert time_file_read(path) >= 0.0


class TestTables:
    def test_render_basic(self):
        out = render_table(["x", "y"], [[1, 2.0], [30, 4.5]])
        lines = out.splitlines()
        assert lines[0].startswith("x")
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_number_styles(self):
        assert format_number(1234) == "1,234"
        assert format_number(0.5) == "0.500"
        assert format_number(1e9) == "1.000e+09"
        assert format_number(1e-5) == "1.000e-05"
        assert format_number("name") == "name"
        assert format_number(0) == "0"
        assert format_number(True) == "True"


class TestFigures:
    def test_ascii_plot_renders_markers(self):
        out = ascii_plot(
            {"a": ([1, 2, 3], [1.0, 2.0, 3.0]), "b": ([1, 2, 3], [3.0, 2.0, 1.0])}
        )
        assert "*" in out and "o" in out
        assert "legend" in out

    def test_ascii_plot_log_scales(self):
        out = ascii_plot(
            {"s": ([1, 10, 100], [1.0, 10.0, 100.0])}, log_x=True, log_y=True
        )
        assert "log10" in out

    def test_empty_plot(self):
        assert ascii_plot({"s": ([], [])}) == "(empty plot)"

    def test_ascii_histogram(self):
        out = ascii_histogram({1: 100, 2: 50, 4: 25, 8: 12}, title="deg")
        assert out.splitlines()[0] == "deg"
        assert "#" in out

    def test_ascii_histogram_empty(self):
        assert ascii_histogram({}) == "(empty histogram)"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "series.csv"
        write_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        assert path.read_text().splitlines() == ["x,y", "1,2", "3,4"]
