"""Turnstile (fully-dynamic) streams: signed parsing, gating, estimators.

Covers the end-to-end signed story introduced with the turnstile layer:

- the three signed edge-list layouts (``u v``, ``u v +1``, ``+ u v``),
  the columnar fast path, and the hard error on mixed signed/unsigned
  rows (naming the offending line, never falling back to a silent
  ragged parse);
- signed :class:`EdgeBatch` construction: the sign column rides the
  same validation as unsigned input (self-loops, negative ids), and
  canonicalization keeps signs aligned with their edges;
- capability gating: signed sources are rejected up front for
  insert-only estimators, and a signed batch that sneaks past the
  source-level check (e.g. a generator of ``(u, v, sign)`` triples)
  still dies at the batch guard;
- the two deletion-capable estimators (TRIÈST-FD and the
  vertex-subsampled dynamic sampler): exactness hooks against a full
  recount (hypothesis-driven over random interleavings), batch-split
  invariance, checkpoint kill/resume bit-identity over a signed
  stream, and sharded execution.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_sampler import DynamicSamplerCounter
from repro.core.triest_fd import TriestFdCounter
from repro.errors import InvalidParameterError
from repro.graph import write_signed_edge_list
from repro.graph.io import iter_signed_edge_array_chunks
from repro.streaming import (
    ESTIMATORS,
    FileSource,
    IterableSource,
    Pipeline,
    ShardedPipeline,
    load_checkpoint,
)
from repro.streaming.batch import EdgeBatch
from repro.streaming.source import LineSource, as_source

DYNAMIC_NAMES = ["triest-fd", "dynamic-sampler"]
DYNAMIC_OPTIONS = {"triest-fd": {"memory": 256}, "dynamic-sampler": {"p": 0.5}}
EXACT_OPTIONS = {"triest-fd": {"memory": 10**6}, "dynamic-sampler": {"p": 1.0}}


def make_events(n, vertices=40, delete_ratio=0.3, seed=11):
    """A well-formed turnstile stream: deletes only hit present edges."""
    import random

    rng = random.Random(seed)
    present: set[tuple[int, int]] = set()
    events: list[tuple[int, int, int]] = []
    while len(events) < n:
        if present and rng.random() < delete_ratio:
            edge = rng.choice(sorted(present))
            present.discard(edge)
            events.append((edge[0], edge[1], -1))
        else:
            u, v = rng.randrange(vertices), rng.randrange(vertices)
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present:
                continue
            present.add(edge)
            events.append((edge[0], edge[1], 1))
    return events, present


def exact_triangles(edges):
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return sum(len(adj[u] & adj[v]) for u, v in edges) // 3


def all_chunks(source, **kwargs):
    return np.concatenate(
        list(iter_signed_edge_array_chunks(source, **kwargs))
        or [np.empty((0, 3), dtype=np.int64)]
    )


# ---------------------------------------------------------------------------
# signed parsing
# ---------------------------------------------------------------------------

class TestSignedParser:
    def test_column_format(self):
        got = all_chunks(io.StringIO("1 2 +1\n3 4 -1\n1 2 1\n"))
        assert got.tolist() == [[1, 2, 1], [3, 4, -1], [1, 2, 1]]

    def test_prefix_format(self):
        got = all_chunks(io.StringIO("+ 1 2\n- 3 4\n"))
        assert got.tolist() == [[1, 2, 1], [3, 4, -1]]

    def test_bare_format_is_all_inserts(self):
        got = all_chunks(io.StringIO("1 2\n3 4\n"))
        assert got.tolist() == [[1, 2, 1], [3, 4, 1]]

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n1 2 +1\n  # mid\n3 4 -1\n"
        assert all_chunks(io.StringIO(text)).tolist() == [[1, 2, 1], [3, 4, -1]]

    def test_canonicalizes_and_drops_self_loops(self):
        got = all_chunks(io.StringIO("5 2 +1\n3 3 -1\n1 4 -1\n"))
        assert got.tolist() == [[2, 5, 1], [1, 4, -1]]

    def test_negative_ids_rejected(self):
        with pytest.raises(InvalidParameterError, match="vertex ids"):
            all_chunks(io.StringIO("-1 2 +1\n"))

    def test_mixed_columns_raise_naming_the_line(self):
        with pytest.raises(InvalidParameterError, match="line 3: expected"):
            all_chunks(io.StringIO("1 2 +1\n3 4 -1\n5 6\n"))
        with pytest.raises(InvalidParameterError, match="mixed signed/unsigned"):
            all_chunks(io.StringIO("1 2\n3 4 -1\n"))

    def test_garbage_sign_raises_naming_the_line(self):
        with pytest.raises(InvalidParameterError, match="line 2"):
            all_chunks(io.StringIO("1 2 +1\n3 4 *1\n"))

    def test_layout_is_locked_across_chunks(self):
        """A tiny chunk size must parse identically to one gulp, and the
        layout chosen at the first data line holds for every later
        chunk (no silent re-probe)."""
        events, _ = make_events(400, seed=3)
        text = "".join(f"{u} {v} {s:+d}\n" for u, v, s in events)
        whole = all_chunks(io.StringIO(text))
        tiny = all_chunks(io.StringIO(text), chunk_chars=16)
        assert np.array_equal(whole, tiny)

    def test_missing_trailing_newline(self):
        got = all_chunks(io.StringIO("1 2 +1\n3 4 -1"))
        assert got.tolist() == [[1, 2, 1], [3, 4, -1]]

    def test_too_many_columns_rejected(self):
        with pytest.raises(InvalidParameterError, match="cannot infer"):
            all_chunks(io.StringIO("1 2 3 4\n"))

    def test_write_round_trip(self, tmp_path):
        events, _ = make_events(200, seed=5)
        path = tmp_path / "s.edges"
        assert write_signed_edge_list(path, events) == len(events)
        got = all_chunks(path)
        assert got.tolist() == [[u, v, s] for u, v, s in events]

    def test_write_rejects_bad_signs(self, tmp_path):
        with pytest.raises(InvalidParameterError, match=r"\+1 or -1"):
            write_signed_edge_list(tmp_path / "s.edges", [(1, 2, 0)])


# ---------------------------------------------------------------------------
# signed EdgeBatch (validation regression: signed path == unsigned path)
# ---------------------------------------------------------------------------

class TestSignedEdgeBatch:
    def test_three_column_array_splits_into_signs(self):
        batch = EdgeBatch.from_edges(
            np.array([[5, 2, -1], [1, 3, 1]], dtype=np.int64)
        )
        assert batch.array.tolist() == [[2, 5], [1, 3]]
        assert batch.signs.tolist() == [-1, 1]  # signs follow the swap

    def test_triples_and_explicit_signs_agree(self):
        from_triples = EdgeBatch.from_edges([(1, 2, 1), (2, 3, -1)])
        explicit = EdgeBatch.from_edges([(1, 2), (2, 3)], signs=[1, -1])
        assert from_triples == explicit

    def test_signed_path_rejects_self_loops(self):
        with pytest.raises(InvalidParameterError, match="self-loops"):
            EdgeBatch.from_edges([(3, 3, 1)])

    def test_signed_path_rejects_negative_ids(self):
        with pytest.raises(InvalidParameterError, match="vertex ids"):
            EdgeBatch.from_edges([(-1, 2, 1)])
        with pytest.raises(InvalidParameterError, match="vertex ids"):
            EdgeBatch.from_edges([(0, 2**31, -1)])

    def test_bad_sign_values_rejected(self):
        with pytest.raises(InvalidParameterError, match=r"\+1 or -1"):
            EdgeBatch.from_edges([(1, 2, 0)])
        with pytest.raises(InvalidParameterError, match=r"\+1 or -1"):
            EdgeBatch.from_edges([(1, 2)], signs=[2])

    def test_mismatched_sign_length_rejected(self):
        with pytest.raises(InvalidParameterError, match="matching"):
            EdgeBatch.from_edges([(1, 2), (2, 3)], signs=[1])

    def test_wire_round_trip(self):
        batch = EdgeBatch.from_edges([(1, 2, 1), (2, 3, -1)])
        assert batch.wire.shape == (2, 3)
        again = EdgeBatch.from_wire(batch.wire)
        assert again == batch
        unsigned = EdgeBatch.from_edges([(1, 2), (2, 3)])
        assert unsigned.wire is unsigned.array  # zero-copy, unchanged path
        assert EdgeBatch.from_wire(unsigned.wire) == unsigned

    def test_slicing_carries_signs(self):
        batch = EdgeBatch.from_edges([(1, 2, 1), (2, 3, -1), (3, 4, 1)])
        tail = batch[1:]
        assert tail.signs.tolist() == [-1, 1]
        for piece in batch.batches(2):
            assert piece.signs is not None

    def test_context_masks_and_delta(self):
        batch = EdgeBatch.from_edges([(1, 2, 1), (2, 3, -1)])
        ctx = batch.context
        assert ctx.insert_mask.tolist() == [True, False]
        assert ctx.delete_mask.tolist() == [False, True]
        assert ctx.sign_delta.tolist() == [1, -1]
        unsigned = EdgeBatch.from_edges([(1, 2), (2, 3)]).context
        assert unsigned.insert_mask.all()
        assert not unsigned.delete_mask.any()

    def test_empty_signed_batch(self):
        batch = EdgeBatch.from_edges(np.empty((0, 3), dtype=np.int64))
        assert len(batch) == 0
        assert batch.signs.shape == (0,)


# ---------------------------------------------------------------------------
# sources and capability gating
# ---------------------------------------------------------------------------

class TestSignedSources:
    @pytest.fixture()
    def signed_file(self, tmp_path):
        events, present = make_events(600, seed=9)
        path = tmp_path / "turnstile.edges"
        write_signed_edge_list(path, events)
        return path, events, present

    def test_file_source_yields_signed_batches(self, signed_file):
        path, events, _ = signed_file
        source = FileSource(path, signed=True)
        assert source.signed
        rows = []
        for batch in source.batches(128):
            assert batch.signs is not None
            rows += [
                (u, v, s)
                for (u, v), s in zip(batch.array.tolist(), batch.signs.tolist())
            ]
        assert rows == events

    def test_file_source_rejects_dedup_with_signed(self, signed_file):
        path, _, _ = signed_file
        with pytest.raises(InvalidParameterError, match="deduplicate=True"):
            FileSource(path, deduplicate=True, signed=True)
        # default dedup resolves per mode: on for insert-only, off for signed
        assert FileSource(path).deduplicate
        assert not FileSource(path, signed=True).deduplicate

    def test_line_source_signed(self):
        handle = io.StringIO("1 2 +1\n2 3 +1\n1 2 -1\n")
        source = LineSource(handle, signed=True)
        (batch,) = list(source.batches(10))
        assert batch.signs.tolist() == [1, 1, -1]
        with pytest.raises(InvalidParameterError, match="deduplicate"):
            LineSource(io.StringIO(""), deduplicate=True, signed=True)

    def test_memory_source_detects_signs(self):
        assert as_source(np.array([[1, 2, 1]], dtype=np.int64)).signed
        assert as_source([(1, 2, -1)]).signed
        assert not as_source([(1, 2)]).signed

    def test_pipeline_rejects_signed_source_for_insert_only(self, signed_file):
        path, _, _ = signed_file
        pipe = Pipeline.from_registry(["count"], num_estimators=8, seed=0)
        with pytest.raises(InvalidParameterError, match="insert-only"):
            pipe.run(FileSource(path, signed=True), batch_size=128)

    def test_batch_guard_catches_undeclared_signed_batches(self):
        """A generator of (u, v, sign) triples has no source-level signed
        flag; the per-batch guard must still refuse to feed it to an
        insert-only estimator."""
        pipe = Pipeline.from_registry(["count"], num_estimators=8, seed=0)
        events = ((u, v, s) for u, v, s in [(1, 2, 1), (2, 3, -1)])
        with pytest.raises(InvalidParameterError, match="signed batch reached"):
            pipe.run(IterableSource(events), batch_size=16)

    def test_sharded_rejects_signed_source_for_insert_only(self, signed_file):
        path, _, _ = signed_file
        sharded = ShardedPipeline(["count"], workers=2, num_estimators=8, seed=0)
        with pytest.raises(InvalidParameterError, match="insert-only"):
            sharded.run(FileSource(path, signed=True), batch_size=128)

    def test_mixed_pipeline_names_insert_only_offenders(self, signed_file):
        path, _, _ = signed_file
        pipe = Pipeline.from_registry(
            ["count", "triest-fd"], num_estimators=8, seed=0
        )
        with pytest.raises(InvalidParameterError, match=r"\['count'\]"):
            pipe.run(FileSource(path, signed=True), batch_size=128)


# ---------------------------------------------------------------------------
# deletion-capable estimators
# ---------------------------------------------------------------------------

@st.composite
def turnstile_streams(draw):
    """Interleaved inserts/deletes; deletes only ever hit present edges."""
    n = draw(st.integers(min_value=10, max_value=16))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n), st.integers(0, n), st.booleans()
            ).filter(lambda op: op[0] != op[1]),
            min_size=4,
            max_size=150,
        )
    )
    present: set[tuple[int, int]] = set()
    events = []
    for u, v, try_delete in ops:
        edge = (min(u, v), max(u, v))
        if try_delete and edge in present:
            present.discard(edge)
            events.append((edge[0], edge[1], -1))
        elif edge not in present:
            present.add(edge)
            events.append((edge[0], edge[1], 1))
    return events, present


class TestDynamicEstimators:
    @pytest.mark.parametrize("name", DYNAMIC_NAMES)
    @given(data=turnstile_streams())
    @settings(max_examples=25, deadline=None)
    def test_exact_hooks_match_full_recount(self, name, data):
        """With the sampling knob open (memory >= everything, p = 1) both
        estimators are exact: estimate == recount of the final graph."""
        events, present = data
        est = ESTIMATORS.get(name).create(2, 0, **EXACT_OPTIONS[name])
        for i in range(0, len(events), 13):
            est.update_batch(events[i : i + 13])
        assert est.estimate() == float(exact_triangles(present))
        assert est.net_edges() == len(present)

    @pytest.mark.parametrize("name", DYNAMIC_NAMES)
    def test_batch_split_invariance(self, name):
        """Feeding one big batch or many small ones is bit-identical."""
        events, _ = make_events(800, seed=2)
        arr = np.array(events, dtype=np.int64)
        one = ESTIMATORS.get(name).create(6, 4, **DYNAMIC_OPTIONS[name])
        one.update_batch(EdgeBatch.from_edges(arr))
        many = ESTIMATORS.get(name).create(6, 4, **DYNAMIC_OPTIONS[name])
        for batch in EdgeBatch.from_edges(arr).batches(37):
            many.update_batch(batch)
        assert one.estimates() == many.estimates()
        assert repr(sorted(one.state_dict())) == repr(sorted(many.state_dict()))

    def test_triest_fd_stays_within_memory_budget(self):
        events, _ = make_events(2000, seed=6)
        counter = TriestFdCounter(2, memory=64, seed=0)
        counter.update_batch(EdgeBatch.from_edges(np.array(events)))
        for sampler in counter._samplers:
            assert len(sampler._edges) <= 64

    def test_dynamic_sampler_subsamples_vertices(self):
        events, present = make_events(2000, seed=6)
        counter = DynamicSamplerCounter(4, p=0.3, seed=0)
        counter.update_batch(EdgeBatch.from_edges(np.array(events)))
        sizes = [len(s._edges) for s in counter._samplers]
        assert max(sizes) < len(present)  # genuinely subsampled
        assert counter.estimate() > 0

    @pytest.mark.parametrize("name", DYNAMIC_NAMES)
    def test_approximate_regime_is_in_the_ballpark(self, name):
        events, present = make_events(3000, vertices=50, seed=8)
        exact = exact_triangles(present)
        est = ESTIMATORS.get(name).create(64, 3, **DYNAMIC_OPTIONS[name])
        est.update_batch(EdgeBatch.from_edges(np.array(events)))
        assert est.estimate() == pytest.approx(exact, rel=0.35)

    @pytest.mark.parametrize("name", DYNAMIC_NAMES)
    def test_merge_rejects_mismatched_config_or_stream(self, name):
        spec = ESTIMATORS.get(name)
        a = spec.create(2, 0, **DYNAMIC_OPTIONS[name])
        b = spec.create(2, 0, **EXACT_OPTIONS[name])
        with pytest.raises(InvalidParameterError, match="merge"):
            a.merge(b)
        c = spec.create(2, 0, **DYNAMIC_OPTIONS[name])
        c.update_batch([(1, 2)])
        with pytest.raises(InvalidParameterError, match="different streams"):
            a.merge(c)


class _Killed(RuntimeError):
    pass


def _interruptible_signed(events, stop_after):
    def generate():
        for i, event in enumerate(events):
            if i == stop_after:
                raise _Killed()
            yield event
    return IterableSource(generate())


class TestSignedKillResume:
    BATCH = 64

    def _pipeline(self):
        return Pipeline.from_registry(
            DYNAMIC_NAMES, num_estimators=8, seed=17, options=DYNAMIC_OPTIONS
        )

    def test_killed_signed_run_resumes_bit_identically(self, tmp_path):
        events, _ = make_events(1200, seed=13)
        ckpt = tmp_path / "ck"
        interrupted = self._pipeline()
        with pytest.raises(_Killed):
            interrupted.run(
                _interruptible_signed(events, stop_after=7 * self.BATCH + 9),
                batch_size=self.BATCH,
                checkpoint_path=ckpt,
                checkpoint_every=3,
            )
        assert load_checkpoint(ckpt).edges_seen == 6 * self.BATCH

        resumed = self._pipeline().resume(ckpt)
        resumed_report = resumed.run(events, batch_size=self.BATCH)
        uninterrupted = self._pipeline().run(events, batch_size=self.BATCH)

        assert resumed_report.edges == uninterrupted.edges
        for name in DYNAMIC_NAMES:
            assert resumed_report[name].results == uninterrupted[name].results

    def test_resume_mid_batch_carries_signs(self, tmp_path):
        """An end-of-stream checkpoint that cuts inside a batch must
        replay the remainder *with its signs* (a resume that dropped the
        sign column would re-insert deleted edges)."""
        events, present = make_events(500, seed=19)
        cut = 13 * 31 + 7  # deliberately not batch-aligned
        path = tmp_path / "grow.edges"
        write_signed_edge_list(path, events[:cut])
        pipe = Pipeline.from_registry(
            DYNAMIC_NAMES, num_estimators=2, seed=3, options=EXACT_OPTIONS
        )
        pipe.run(
            FileSource(path, signed=True),
            batch_size=31,
            checkpoint_path=tmp_path / "ck",
        )
        with open(path, "a", encoding="utf-8") as handle:
            for u, v, sign in events[cut:]:
                handle.write(f"{u} {v} {sign:+d}\n")
        resumed = Pipeline.from_registry(
            DYNAMIC_NAMES, num_estimators=2, seed=3, options=EXACT_OPTIONS
        ).resume(tmp_path / "ck")
        report = resumed.run(FileSource(path, signed=True), batch_size=31)
        expected = float(exact_triangles(present))
        for name in DYNAMIC_NAMES:
            assert report[name].results["triangles"] == expected


class TestSignedSharded:
    def test_sharded_signed_run_matches_exact_count(self, tmp_path):
        events, present = make_events(1000, seed=23)
        path = tmp_path / "turnstile.edges"
        write_signed_edge_list(path, events)
        sharded = ShardedPipeline(
            DYNAMIC_NAMES,
            workers=2,
            num_estimators=4,
            seed=5,
            options=EXACT_OPTIONS,
        )
        report = sharded.run(FileSource(path, signed=True), batch_size=128)
        expected = float(exact_triangles(present))
        for name in DYNAMIC_NAMES:
            assert report[name].results["triangles"] == expected
            assert report[name].results["net_edges"] == len(present)

    def test_supervised_recovery_over_signed_stream(self, tmp_path):
        """A worker killed mid-signed-stream is respawned and the run
        still ends bit-identical to an unfaulted one (snapshot restore +
        replay must re-deliver the sign column, not just the edges)."""
        from repro.errors import WorkerRestartedWarning
        from repro.streaming import FaultPlan

        events, _ = make_events(900, seed=31)
        path = tmp_path / "turnstile.edges"
        write_signed_edge_list(path, events)

        def run(**kwargs):
            pipe = ShardedPipeline(
                DYNAMIC_NAMES,
                workers=2,
                num_estimators=6,
                seed=11,
                options=DYNAMIC_OPTIONS,
                **kwargs,
            )
            report = pipe.run(FileSource(path, signed=True), batch_size=64)
            return {e.name: e.results for e in report.estimators}

        baseline = run()
        with pytest.warns(WorkerRestartedWarning, match="worker 0"):
            faulted = run(
                max_restarts=2, fault_plan=FaultPlan.parse("kill:w0@b2")
            )
        assert faulted == baseline

    def test_sharded_signed_run_is_reproducible(self, tmp_path):
        events, _ = make_events(800, seed=29)
        path = tmp_path / "turnstile.edges"
        write_signed_edge_list(path, events)
        results = []
        for _ in range(2):
            sharded = ShardedPipeline(
                DYNAMIC_NAMES,
                workers=2,
                num_estimators=6,
                seed=7,
                options=DYNAMIC_OPTIONS,
            )
            report = sharded.run(FileSource(path, signed=True), batch_size=64)
            results.append([r.results for r in report.estimators])
        assert results[0] == results[1]
