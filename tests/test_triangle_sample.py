"""Tests for uniform triangle sampling (Lemma 3.7, Theorem 3.8)."""

from collections import Counter

import pytest

from repro.core.triangle_sample import TriangleSampler
from repro.errors import EmptyStreamError, InsufficientSampleError, InvalidParameterError
from repro.exact import list_triangles
from tests.conftest import assert_fraction_close


class TestBasics:
    def test_empty_stream_raises(self):
        sampler = TriangleSampler(10, seed=0)
        with pytest.raises(EmptyStreamError):
            sampler.sample_one()

    def test_triangle_free_stream_returns_none(self):
        sampler = TriangleSampler(200, seed=1)
        sampler.update_batch([(i, i + 1) for i in range(30)])
        assert sampler.sample_one() is None
        assert sampler.success_fraction() == 0.0

    def test_sample_k_requires_positive(self, triangle_stream):
        sampler = TriangleSampler(10, seed=2)
        sampler.update_batch(list(triangle_stream))
        with pytest.raises(InvalidParameterError):
            sampler.sample(0)

    def test_insufficient_samplers_raise(self):
        sampler = TriangleSampler(1, seed=3)
        sampler.update_batch([(i, i + 1) for i in range(10)])
        with pytest.raises(InsufficientSampleError):
            sampler.sample(5)

    def test_tracked_max_degree(self, triangle_stream):
        sampler = TriangleSampler(10, seed=4)
        sampler.update_batch(list(triangle_stream))
        assert sampler.current_max_degree() == 3  # vertex 2

    def test_fixed_max_degree_used(self, triangle_stream):
        sampler = TriangleSampler(10, max_degree=50, seed=5)
        sampler.update_batch(list(triangle_stream))
        assert sampler.current_max_degree() == 50


class TestUniformity:
    def test_sampled_triangles_are_real(self, small_er_graph):
        edges, _ = small_er_graph
        triangles = set(list_triangles(edges))
        sampler = TriangleSampler(3000, seed=6)
        sampler.update_batch(edges)
        sample = sampler.sample(5)
        assert len(sample) == 5
        for t in sample:
            assert t in triangles

    def test_rejection_makes_output_uniform(self, worked_example_stream):
        """Lemma 3.7: after the c/(2 Delta) rejection, each triangle is
        released with identical probability 1/(2 m Delta)."""
        edges = list(worked_example_stream)
        m = len(edges)
        delta = 6  # vertices 4 and 5 have degree 6
        trials = 40_000
        sampler = TriangleSampler(trials, max_degree=delta, seed=7)
        sampler.update_batch(edges)
        released = sampler._released_triangles()
        counts = Counter(released)
        expected = 1.0 / (2 * m * delta)
        for tri in list_triangles(edges):
            assert_fraction_close(counts[tri], trials, expected)

    def test_success_probability_bound(self, worked_example_stream):
        """Some triangle is released with probability >= tau/(2 m Delta)."""
        edges = list(worked_example_stream)
        m, tau, delta = len(edges), 3, 6
        trials = 40_000
        sampler = TriangleSampler(trials, max_degree=delta, seed=8)
        sampler.update_batch(edges)
        released = len(sampler._released_triangles())
        assert released / trials >= tau / (2 * m * delta) * 0.8

    def test_sample_with_replacement_semantics(self, small_social_graph):
        edges, _ = small_social_graph
        sampler = TriangleSampler(5000, seed=9)
        sampler.update_batch(edges)
        sample = sampler.sample(3)
        assert len(sample) == 3


class TestTheorem38Sizing:
    def test_sized_pool_succeeds(self, small_social_graph):
        """With r per Theorem 3.8, sample(k) succeeds (prob 1 - delta)."""
        from repro.core.accuracy import estimators_needed_sampling
        from repro.graph import StaticGraph

        edges, tau = small_social_graph
        g = StaticGraph(edges, strict=False)
        k, delta_fail = 3, 0.05
        r = estimators_needed_sampling(
            k, delta_fail, m=len(edges), max_degree=g.max_degree(), triangles=tau
        )
        r = min(r, 60_000)  # keep the test fast; still far above need
        sampler = TriangleSampler(r, seed=10)
        sampler.update_batch(edges)
        assert len(sampler.sample(k)) == k
