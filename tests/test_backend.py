"""Kernel backend dispatch: selection rules, contracts, numpy/numba parity.

The backend seam (:mod:`repro.core.backend`) is only allowed to change
*speed*: every kernel's output is bit-identical across backends by
contract. This module pins the selection API (environment variable,
explicit requests, auto fallback), the numpy reference semantics kernel
by kernel, and -- when numba is installed -- randomized parity between
the compiled and reference implementations. The end-to-end halves of
the contract (golden fingerprints, sparse == dense) live in
``tests/test_vectorized_sparse.py``, parametrized over backends.
"""

import numpy as np
import pytest

from repro.core import _backend_numba as nb_module
from repro.core import backend as kb
from repro.errors import InvalidParameterError

requires_numba = pytest.mark.skipif(
    not kb.numba_available(), reason="numba not installed"
)


@pytest.fixture(autouse=True)
def isolate_backend_state():
    """Selection tests mutate process-wide state; put it back."""
    backends = dict(kb._BACKENDS)
    active = kb._ACTIVE
    yield
    kb._BACKENDS.clear()
    kb._BACKENDS.update(backends)
    kb._ACTIVE = active


def assert_bit_identical(expected, got):
    """Arrays (or tuples of arrays) equal in value *and* dtype."""
    if isinstance(expected, tuple):
        assert isinstance(got, tuple) and len(got) == len(expected)
        for e, g in zip(expected, got):
            assert_bit_identical(e, g)
        return
    expected = np.asarray(expected)
    got = np.asarray(got)
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected)


class TestResolution:
    def test_auto_prefers_numba_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        expected = "numba" if kb.numba_available() else "numpy"
        assert kb.resolve_name(None) == expected
        assert kb.resolve_name("auto") == expected

    def test_auto_falls_back_without_numba(self, monkeypatch):
        monkeypatch.setattr(kb, "numba_available", lambda: False)
        assert kb.resolve_name("auto") == "numpy"
        assert kb.available_backends() == ("numpy",)

    def test_env_var_drives_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert kb.resolve_name(None) == "numpy"

    def test_empty_env_var_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "")
        monkeypatch.setattr(kb, "numba_available", lambda: False)
        assert kb.resolve_name(None) == "numpy"

    def test_names_normalize(self):
        assert kb.resolve_name("  NumPy ") == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown backend"):
            kb.resolve_name("cython")

    def test_explicit_numba_without_numba_raises(self, monkeypatch):
        monkeypatch.setattr(kb, "numba_available", lambda: False)
        with pytest.raises(InvalidParameterError, match="not installed"):
            kb.resolve_name("numba")

    def test_env_requested_numba_without_numba_raises(self, monkeypatch):
        """An explicit env request is as loud as an explicit argument."""
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        monkeypatch.setattr(kb, "numba_available", lambda: False)
        with pytest.raises(InvalidParameterError, match="not installed"):
            kb.resolve_name(None)


class TestRegistry:
    def test_get_backend_is_cached(self):
        assert kb.get_backend("numpy") is kb.get_backend("numpy")

    def test_missing_kernels_rejected(self):
        with pytest.raises(InvalidParameterError, match="missing kernels"):
            kb.Backend("partial", {"lookup_sorted": lambda *a: None})

    def test_repr_names_the_backend(self):
        assert repr(kb.get_backend("numpy")) == "Backend('numpy')"

    def test_set_backend_and_use_scope(self):
        numpy_backend = kb.set_backend("numpy")
        assert kb.active() is numpy_backend
        with kb.use("numpy") as scoped:
            assert kb.active() is scoped
        assert kb.active() is numpy_backend

    def test_use_restores_on_error(self):
        before = kb.active()
        with pytest.raises(RuntimeError):
            with kb.use("numpy"):
                raise RuntimeError("boom")
        assert kb.active() is before

    def test_active_resolves_lazily_from_the_environment(self, monkeypatch):
        kb._ACTIVE = None
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert kb.active().name == "numpy"

    def test_auto_degrades_when_numba_build_breaks(self, monkeypatch):
        def broken():
            raise ImportError("simulated broken install")

        monkeypatch.setattr(kb, "numba_available", lambda: True)
        monkeypatch.setattr(nb_module, "build_kernels", broken)
        kb._BACKENDS.pop("numba", None)
        assert kb.get_backend(None).name == "numpy"
        assert kb.get_backend("auto").name == "numpy"

    def test_explicit_numba_build_failure_raises(self, monkeypatch):
        def broken():
            raise ImportError("simulated broken install")

        monkeypatch.setattr(kb, "numba_available", lambda: True)
        monkeypatch.setattr(nb_module, "build_kernels", broken)
        kb._BACKENDS.pop("numba", None)
        with pytest.raises(InvalidParameterError, match="failed to initialize"):
            kb.get_backend("numba")


class TestNumpyKernelContracts:
    """The reference semantics every backend must reproduce."""

    @pytest.fixture()
    def b(self):
        return kb.get_backend("numpy")

    def test_lookup_sorted_hits_misses_offset(self, b):
        ref = np.array([2, 5, 9], dtype=np.int64)
        vals = np.array([10, 20, 30], dtype=np.int64)
        queries = np.array([5, 3, 9, 2, 11], dtype=np.int64)
        assert b.lookup_sorted(queries, ref, vals, 0).tolist() == [20, 0, 30, 10, 0]
        assert b.lookup_sorted(queries, ref, vals, 1).tolist() == [21, 0, 31, 11, 0]

    def test_lookup_sorted_large_query_path_matches_small(self, b):
        """Past the sorted-query threshold the strategy switches; the
        answers must not."""
        rng = np.random.default_rng(0)
        ref = np.unique(rng.integers(0, 5000, 700).astype(np.int64))
        vals = rng.integers(1, 1 << 40, ref.shape[0]).astype(np.int64)
        queries = rng.integers(0, 5000, kb._SORTED_QUERY_MIN + 17).astype(np.int64)
        got = b.lookup_sorted(queries, ref, vals, 3)
        table = dict(zip(ref.tolist(), vals.tolist()))
        assert got.tolist() == [table.get(int(q), -3) + 3 for q in queries]

    def test_expand_ranges_mixed_empties(self, b):
        lo = np.array([3, 7, 7, 0], dtype=np.int64)
        hi = np.array([5, 7, 9, 1], dtype=np.int64)
        positions, qidx = b.expand_ranges(lo, hi)
        assert positions.tolist() == [3, 4, 7, 8, 0]
        assert qidx.tolist() == [0, 0, 2, 2, 3]

    def test_expand_ranges_all_empty(self, b):
        bound = np.array([4, 4], dtype=np.int64)
        positions, qidx = b.expand_ranges(bound, bound)
        assert positions.shape == (0,) and qidx.shape == (0,)

    def test_packed_range_lookup(self, b):
        shift = np.int64(4)
        packed = np.sort(
            np.array([(1 << 4) | 2, (1 << 4) | 5, (3 << 4) | 0], dtype=np.int64)
        )
        queries = np.array([0, 1, 3], dtype=np.int64)
        slots, qidx = b.packed_range_lookup(packed, shift, queries)
        assert slots.tolist() == [2, 5, 0]
        assert qidx.tolist() == [1, 1, 2]

    def test_sorted_range_lookup_duplicates(self, b):
        keys = np.array([1, 1, 2, 5, 5, 5], dtype=np.int64)
        queries = np.array([1, 4, 5], dtype=np.int64)
        positions, qidx = b.sorted_range_lookup(keys, queries)
        assert positions.tolist() == [0, 1, 3, 4, 5]
        assert qidx.tolist() == [0, 0, 2, 2, 2]

    def test_tail_probe(self, b):
        queries = np.array([2, 6, 9], dtype=np.int64)
        tail = np.array([6, 1, 9, 2, 6], dtype=np.int64)
        tail_idx, qidx = b.tail_probe(queries, tail)
        assert tail_idx.tolist() == [0, 2, 3, 4]
        assert qidx.tolist() == [1, 2, 0, 1]

    def test_pack_index_sort_is_a_stable_argsort(self, b):
        values = np.array([5, 1, 5, 0], dtype=np.int64)
        packed = b.pack_index_sort(values, np.int64(2))
        assert (packed >> 2).tolist() == [0, 1, 5, 5]
        assert (packed & 3).tolist() == [3, 1, 0, 2]  # ties keep input order

    def test_pack2_index_sort_orders_hi_then_lo(self, b):
        hi = np.array([2, 1, 2], dtype=np.int64)
        lo = np.array([0, 9, 0], dtype=np.int64)
        packed = b.pack2_index_sort(hi, lo, np.int64(4), np.int64(2))
        assert (packed & 3).tolist() == [1, 0, 2]

    def test_pack_sort_pairs(self, b):
        keys = np.array([7, 3, 7], dtype=np.int64)
        slots = np.array([1, 2, 0], dtype=np.int64)
        packed = b.pack_sort_pairs(keys, slots, np.int64(2))
        assert (packed >> 2).tolist() == [3, 7, 7]
        assert (packed & 3).tolist() == [2, 0, 1]

    def test_pack_edge_keys_canonicalizes(self, b):
        a = np.array([5, 2], dtype=np.int64)
        c = np.array([2, 9], dtype=np.int64)
        assert b.pack_edge_keys(a, c).tolist() == [(2 << 32) | 5, (2 << 32) | 9]

    def test_wedge_geometry(self, b):
        r1u = np.array([0, 3], dtype=np.int64)
        r1v = np.array([1, 4], dtype=np.int64)
        r2u = np.array([1, 5], dtype=np.int64)
        r2v = np.array([2, 3], dtype=np.int64)
        shared, out1, out2, keys = b.wedge_geometry(r1u, r1v, r2u, r2v)
        assert shared.tolist() == [1, 3]
        assert out1.tolist() == [0, 4]
        assert out2.tolist() == [2, 5]
        assert keys.tolist() == [(0 << 32) | 2, (4 << 32) | 5]

    def test_phi_clamps_the_rounding_boundary(self, b):
        total = np.array([1 << 60], dtype=np.int64)
        assert b.phi_from_draws(np.array([1.0]), total).tolist() == [1 << 60]
        assert b.phi_from_draws(np.array([0.0]), total).tolist() == [1]

    def test_step2_totals(self, b):
        a, c_plus, total = b.step2_totals(
            np.array([5], dtype=np.int64),
            np.array([4], dtype=np.int64),
            np.array([2], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([10], dtype=np.int64),
        )
        assert (a.tolist(), c_plus.tolist(), total.tolist()) == ([3], [6], [16])


class TestWarmup:
    def test_numpy_warmup_smokes_every_kernel(self):
        assert kb.warmup(kb.get_backend("numpy")).name == "numpy"

    def test_warmup_defaults_to_active(self):
        kb.set_backend("numpy")
        assert kb.warmup() is kb.active()

    @requires_numba
    def test_numba_cold_start_compiles_every_kernel(self):
        """The JIT cost is paid in warmup, and the compiled kernels then
        serve real-shaped calls."""
        backend = kb.warmup(kb.get_backend("numba"))
        assert backend.name == "numba"
        queries = np.arange(64, dtype=np.int64)
        ref = np.arange(0, 128, 2, dtype=np.int64)
        vals = np.arange(64, dtype=np.int64)
        assert_bit_identical(
            kb.get_backend("numpy").lookup_sorted(queries, ref, vals, 1),
            backend.lookup_sorted(queries, ref, vals, 1),
        )


@requires_numba
class TestNumbaParity:
    """Randomized kernel-by-kernel bit-identity against the reference."""

    SEEDS = [0, 1, 2]

    @pytest.fixture(scope="class")
    def pair(self):
        return kb.get_backend("numpy"), kb.warmup(kb.get_backend("numba"))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lookup_sorted(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        ref = np.unique(rng.integers(0, 10_000, 500).astype(np.int64))
        vals = rng.integers(-(1 << 40), 1 << 40, ref.shape[0]).astype(np.int64)
        # 9000 queries crosses the numpy sorted-query threshold: both
        # strategies must agree with the compiled loop.
        for n in (0, 7, 9000):
            queries = rng.integers(0, 10_000, n).astype(np.int64)
            for offset in (0, 1):
                assert_bit_identical(
                    np_b.lookup_sorted(queries, ref, vals, offset),
                    nb_b.lookup_sorted(queries, ref, vals, offset),
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_expand_ranges(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        lo = np.sort(rng.integers(0, 50, 40)).astype(np.int64)
        hi = lo + rng.integers(0, 5, 40).astype(np.int64)
        assert_bit_identical(np_b.expand_ranges(lo, hi), nb_b.expand_ranges(lo, hi))
        bound = lo.copy()
        assert_bit_identical(
            np_b.expand_ranges(bound, bound), nb_b.expand_ranges(bound, bound)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_packed_range_lookup(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        shift = np.int64(12)
        keys = rng.integers(0, 200, 300).astype(np.int64)
        slots = rng.integers(0, 1 << 12, 300).astype(np.int64)
        packed = np.sort((keys << shift) | slots)
        queries = np.unique(rng.integers(0, 250, 50).astype(np.int64))
        assert_bit_identical(
            np_b.packed_range_lookup(packed, shift, queries),
            nb_b.packed_range_lookup(packed, shift, queries),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sorted_range_lookup(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        sorted_keys = np.sort(rng.integers(0, 100, 400).astype(np.int64))
        queries = np.unique(rng.integers(0, 120, 60).astype(np.int64))
        assert_bit_identical(
            np_b.sorted_range_lookup(sorted_keys, queries),
            nb_b.sorted_range_lookup(sorted_keys, queries),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tail_probe(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        queries = np.unique(rng.integers(0, 300, 80).astype(np.int64))
        for n in (0, 200):
            tail = rng.integers(0, 350, n).astype(np.int64)
            assert_bit_identical(
                np_b.tail_probe(queries, tail), nb_b.tail_probe(queries, tail)
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pack_sorts(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        n = 500
        values = rng.integers(0, 1 << 31, n).astype(np.int64)
        shift = np.int64(10)
        assert_bit_identical(
            np_b.pack_index_sort(values, shift), nb_b.pack_index_sort(values, shift)
        )
        hi = rng.integers(0, 1 << 20, n).astype(np.int64)
        lo = rng.integers(0, 1 << 8, n).astype(np.int64)
        assert_bit_identical(
            np_b.pack2_index_sort(hi, lo, np.int64(8), shift),
            nb_b.pack2_index_sort(hi, lo, np.int64(8), shift),
        )
        keys = rng.integers(0, 1 << 31, n).astype(np.int64)
        slots = rng.integers(0, 1 << 10, n).astype(np.int64)
        assert_bit_identical(
            np_b.pack_sort_pairs(keys, slots, shift),
            nb_b.pack_sort_pairs(keys, slots, shift),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edge_and_wedge_geometry(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        n = 300
        a = rng.integers(0, 1 << 31, n).astype(np.int64)
        c = rng.integers(0, 1 << 31, n).astype(np.int64)
        assert_bit_identical(np_b.pack_edge_keys(a, c), nb_b.pack_edge_keys(a, c))
        shared = rng.integers(0, 1 << 31, n).astype(np.int64)
        out1 = rng.integers(0, 1 << 31, n).astype(np.int64)
        out2 = rng.integers(0, 1 << 31, n).astype(np.int64)
        flip1 = rng.random(n) < 0.5
        flip2 = rng.random(n) < 0.5
        r1u = np.where(flip1, shared, out1)
        r1v = np.where(flip1, out1, shared)
        r2u = np.where(flip2, shared, out2)
        r2v = np.where(flip2, out2, shared)
        assert_bit_identical(
            np_b.wedge_geometry(r1u, r1v, r2u, r2v),
            nb_b.wedge_geometry(r1u, r1v, r2u, r2v),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_phi_and_step2(self, pair, seed):
        np_b, nb_b = pair
        rng = np.random.default_rng(seed)
        totals = np.concatenate(
            [
                rng.integers(1, 1 << 62, 200).astype(np.int64),
                np.array([1, 1, 1 << 60], dtype=np.int64),
            ]
        )
        draws = np.concatenate(
            [rng.random(200), np.array([0.0, np.nextafter(1.0, 0.0), 1.0])]
        )
        assert_bit_identical(
            np_b.phi_from_draws(draws, totals), nb_b.phi_from_draws(draws, totals)
        )
        cols = [
            rng.integers(0, 1 << 30, 150).astype(np.int64) for _ in range(5)
        ]
        assert_bit_identical(np_b.step2_totals(*cols), nb_b.step2_totals(*cols))
