"""Edge-case and failure-injection tests for the estimator engines.

Streaming systems live or die on their handling of degenerate inputs:
single-edge streams, stars with no triangles, huge sparse ids, batch
boundaries landing on wedge closings, and adversarial orders that
maximize the tangle coefficient.
"""

import numpy as np
import pytest

from repro.core.bulk import BulkTriangleCounter
from repro.core.neighborhood_sampling import NeighborhoodSampler
from repro.core.vectorized import VectorizedTriangleCounter
from repro.exact import count_triangles
from tests.conftest import assert_mean_close


class TestDegenerateStreams:
    @pytest.mark.parametrize(
        "engine_cls", [BulkTriangleCounter, VectorizedTriangleCounter]
    )
    def test_single_edge(self, engine_cls):
        counter = engine_cls(8, seed=0)
        counter.update((5, 9))
        assert counter.edges_seen == 1
        assert counter.estimate() == 0.0

    @pytest.mark.parametrize(
        "engine_cls", [BulkTriangleCounter, VectorizedTriangleCounter]
    )
    def test_two_adjacent_edges_never_form_triangle(self, engine_cls):
        counter = engine_cls(64, seed=1)
        counter.update_batch([(0, 1), (1, 2)])
        assert counter.estimate() == 0.0

    @pytest.mark.parametrize(
        "engine_cls", [BulkTriangleCounter, VectorizedTriangleCounter]
    )
    def test_star_stream_counts_zero(self, engine_cls):
        counter = engine_cls(128, seed=2)
        counter.update_batch([(0, i) for i in range(1, 40)])
        assert counter.estimate() == 0.0
        # but the c counters are busy: every edge neighbors every other.
        if isinstance(counter, VectorizedTriangleCounter):
            assert counter.c.max() > 0

    def test_sparse_large_vertex_ids(self):
        ids = [10**8, 2 * 10**8, 2**30, 5, 77]
        edges = [(ids[0], ids[1]), (ids[1], ids[2]), (ids[0], ids[2])]
        counter = VectorizedTriangleCounter(3000, seed=3)
        counter.update_batch(edges)
        assert_mean_close(list(counter.estimates()), 1.0, z=6.0)

    def test_triangle_split_across_three_batches(self):
        """Each edge of the triangle in its own batch: the wedge closing
        must work across batch boundaries."""
        counter = VectorizedTriangleCounter(20_000, seed=4)
        for e in [(0, 1), (1, 2), (0, 2)]:
            counter.update_batch([e])
        assert_mean_close(list(counter.estimates()), 1.0, z=6.0)

    def test_closing_edge_first_in_batch(self):
        """A batch whose first edge closes a wedge held from earlier."""
        counter = BulkTriangleCounter(20_000, seed=5)
        counter.update_batch([(0, 1), (1, 2)])
        counter.update_batch([(0, 2), (3, 4)])
        assert_mean_close(counter.estimates(), 1.0, z=6.0)


class TestAdversarialOrders:
    def test_hub_first_order(self):
        """All hub edges first maximizes c for the hub's triangles: the
        estimate must stay unbiased (only the variance changes)."""
        hub_edges = [(0, i) for i in range(1, 30)]
        closing = [(i, i + 1) for i in range(1, 29)]
        edges = hub_edges + closing
        tau = count_triangles(edges)
        counter = VectorizedTriangleCounter(40_000, seed=6)
        counter.update_batch(edges)
        assert_mean_close(list(counter.estimates()), tau, z=6.0)

    def test_hub_last_order(self):
        hub_edges = [(0, i) for i in range(1, 30)]
        closing = [(i, i + 1) for i in range(1, 29)]
        edges = closing + hub_edges
        tau = count_triangles(edges)
        counter = VectorizedTriangleCounter(40_000, seed=7)
        counter.update_batch(edges)
        assert_mean_close(list(counter.estimates()), tau, z=6.0)

    def test_variance_differs_between_orders_but_mean_does_not(self):
        """The tangle coefficient (hence variance) is order-dependent;
        unbiasedness is not."""
        from repro.exact import tangle_coefficient
        from repro.graph import EdgeStream

        hub_edges = [(0, i) for i in range(1, 30)]
        closing = [(i, i + 1) for i in range(1, 29)]
        g1 = tangle_coefficient(EdgeStream(hub_edges + closing))
        g2 = tangle_coefficient(EdgeStream(closing + hub_edges))
        assert g1 != g2


class TestReferenceSamplerEdgeCases:
    def test_self_loop_rejected(self):
        sampler = NeighborhoodSampler(seed=0)
        from repro.errors import InvalidEdgeError

        with pytest.raises(InvalidEdgeError):
            sampler.update((3, 3))

    def test_estimates_before_any_edges(self):
        sampler = NeighborhoodSampler(seed=0)
        assert sampler.triangle_estimate() == 0.0
        assert sampler.wedge_estimate() == 0.0
        assert not sampler.has_triangle()

    def test_r2_reset_on_r1_change(self):
        """Once r1 changes, the old wedge must be forgotten."""
        sampler = NeighborhoodSampler(seed=0)
        for e in [(0, 1), (1, 2), (0, 2)] * 1:
            sampler.update(e)
        # Whatever the state, internal consistency must hold:
        if sampler.r2 is not None:
            from repro.graph.edge import edges_adjacent

            assert edges_adjacent(sampler.r1, sampler.r2)
        if sampler.t is not None:
            assert sampler.r2 is not None


class TestVectorizedDtypes:
    def test_numpy_array_input(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]], dtype=np.int64)
        counter = VectorizedTriangleCounter(100, seed=8)
        counter.update_batch(edges)
        assert counter.edges_seen == 3

    def test_estimates_are_float64(self):
        counter = VectorizedTriangleCounter(10, seed=9)
        counter.update_batch([(0, 1)])
        assert counter.estimates().dtype == np.float64
        assert counter.wedge_estimates().dtype == np.float64
