"""Tests for state checkpointing, pool merging, and the parallel counter."""

import numpy as np
import pytest

from repro.core.checkpoint import from_state_dict, merge_counters, to_state_dict
from repro.core.parallel import ParallelTriangleCounter, count_triangles_parallel
from repro.core.vectorized import VectorizedTriangleCounter
from repro.errors import InvalidParameterError
from tests.conftest import assert_mean_close


def build_counter(edges, r, seed):
    counter = VectorizedTriangleCounter(r, seed=seed)
    counter.update_batch(edges)
    return counter


class TestCheckpoint:
    def test_round_trip_preserves_estimates(self, small_er_graph):
        edges, _ = small_er_graph
        counter = build_counter(edges, 500, seed=1)
        restored = from_state_dict(to_state_dict(counter), seed=2)
        assert restored.edges_seen == counter.edges_seen
        assert np.array_equal(restored.estimates(), counter.estimates())
        assert np.array_equal(restored.tset, counter.tset)

    def test_restored_counter_keeps_streaming(self, small_er_graph):
        """A restored counter continues correctly: the invariant
        c = |N(r1)| still holds after more edges arrive."""
        from repro.exact import neighborhood_sizes
        from repro.graph import EdgeStream

        edges, _ = small_er_graph
        half = len(edges) // 2
        counter = build_counter(edges[:half], 300, seed=3)
        restored = from_state_dict(to_state_dict(counter), seed=4)
        restored.update_batch(edges[half:])
        true_c = neighborhood_sizes(EdgeStream(edges, validate=False))
        for i in range(restored.num_estimators):
            r1 = (int(restored.r1u[i]), int(restored.r1v[i]))
            assert restored.c[i] == true_c[r1]

    def test_missing_fields_rejected(self):
        with pytest.raises(InvalidParameterError):
            from_state_dict({"edges_seen": 3})

    def test_mismatched_lengths_rejected(self, small_er_graph):
        edges, _ = small_er_graph
        state = to_state_dict(build_counter(edges, 10, seed=0))
        state["c"] = state["c"][:5]
        with pytest.raises(InvalidParameterError):
            from_state_dict(state)


class TestMerge:
    def test_merged_pool_concatenates(self, small_er_graph):
        edges, _ = small_er_graph
        a = build_counter(edges, 300, seed=1)
        b = build_counter(edges, 200, seed=2)
        merged = merge_counters([a, b], seed=9)
        assert merged.num_estimators == 500
        assert merged.edges_seen == len(edges)
        expected = list(a.estimates()) + list(b.estimates())
        assert list(merged.estimates()) == expected

    def test_merged_estimate_is_pooled_mean(self, small_er_graph):
        edges, tau = small_er_graph
        parts = [build_counter(edges, 5_000, seed=s) for s in range(6)]
        merged = merge_counters(parts)
        assert_mean_close(list(merged.estimates()), tau, z=6.0)

    def test_merge_requires_same_stream_position(self, small_er_graph):
        edges, _ = small_er_graph
        a = build_counter(edges, 10, seed=1)
        b = build_counter(edges[:-1], 10, seed=2)
        with pytest.raises(InvalidParameterError):
            merge_counters([a, b])

    def test_merge_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            merge_counters([])

    def test_merged_counter_keeps_streaming(self, small_er_graph):
        edges, _ = small_er_graph
        half = len(edges) // 2
        a = build_counter(edges[:half], 100, seed=1)
        b = build_counter(edges[:half], 100, seed=2)
        merged = merge_counters([a, b], seed=3)
        merged.update_batch(edges[half:])
        assert merged.edges_seen == len(edges)


class TestParallel:
    def test_invalid_configuration(self):
        with pytest.raises(InvalidParameterError):
            ParallelTriangleCounter(0)
        with pytest.raises(InvalidParameterError):
            ParallelTriangleCounter(10, workers=0)

    def test_merged_requires_count_first(self):
        counter = ParallelTriangleCounter(10, workers=1)
        with pytest.raises(InvalidParameterError):
            _ = counter.merged

    def test_single_worker_matches_vectorized_semantics(self, small_er_graph):
        edges, tau = small_er_graph
        estimate = count_triangles_parallel(
            edges, 8_000, workers=1, seed=5, batch_size=128
        )
        assert abs(estimate - tau) / tau < 0.5

    def test_two_workers_accurate(self, small_social_graph):
        edges, tau = small_social_graph
        counter = ParallelTriangleCounter(16_000, workers=2, seed=7)
        estimate = counter.count(edges, batch_size=4_096)
        assert abs(estimate - tau) / tau < 0.25
        assert counter.merged.num_estimators == 16_000

    def test_shard_sizes_cover_pool(self):
        counter = ParallelTriangleCounter(10, workers=3)
        assert sum(counter._shard_sizes()) == 10
        assert max(counter._shard_sizes()) - min(counter._shard_sizes()) <= 1

    def test_same_seed_is_deterministic(self, small_er_graph):
        edges, _ = small_er_graph
        first = count_triangles_parallel(edges, 2_000, workers=2, seed=11,
                                         batch_size=512)
        second = count_triangles_parallel(edges, 2_000, workers=2, seed=11,
                                          batch_size=512)
        assert first == second

    def test_seed_none_draws_fresh_entropy(self, small_er_graph):
        """seed=None must not silently degrade to a fixed seed: two runs
        over the same stream should (with overwhelming probability) make
        different reservoir decisions."""
        edges, _ = small_er_graph

        def reservoir_decisions():
            counter = ParallelTriangleCounter(500, workers=1, seed=None)
            counter.count(edges, batch_size=512)
            return tuple(counter.merged.r1pos.tolist())

        assert reservoir_decisions() != reservoir_decisions()

    def test_worker_error_propagates_instead_of_hanging(self, small_er_graph):
        """A worker-side failure (here: vertex id outside the engine's
        [0, 2^31) domain) must surface in the parent, not deadlock the
        batch queues."""
        edges, _ = small_er_graph
        poisoned = list(edges) + [(5, 1 << 40)]
        counter = ParallelTriangleCounter(100, workers=2, seed=0)
        with pytest.raises(InvalidParameterError, match="vertex ids"):
            counter.count(poisoned, batch_size=64)

    def test_streams_from_a_one_shot_generator(self, small_er_graph):
        """The stream is read once and fed batch-by-batch: a one-shot
        generator (no len, no slicing, not replayable) suffices."""
        edges, tau = small_er_graph
        estimate = count_triangles_parallel(
            iter(edges), 8_000, workers=2, seed=5, batch_size=256
        )
        assert abs(estimate - tau) / tau < 0.5


class _FakeDeadProc:
    """Stands in for a worker that died without posting a result."""

    def __init__(self, exitcode):
        self.exitcode = exitcode

    def is_alive(self):
        return False


class TestSilentWorkerDeath:
    """Regression tests for the _collect_results hang: a worker that
    dies before posting must raise, whatever its exit code."""

    @pytest.mark.timeout(30)
    def test_clean_exit_without_result_raises_instead_of_hanging(self):
        """exitcode 0 + no result used to spin on out_queue.get forever."""
        import multiprocessing

        from repro.core.parallel import _collect_results
        from repro.errors import WorkerCrashedError

        out_queue = multiprocessing.get_context().Queue()
        with pytest.raises(WorkerCrashedError, match="exitcode 0"):
            _collect_results(out_queue, [_FakeDeadProc(exitcode=0)])

    @pytest.mark.timeout(30)
    def test_nonzero_exit_without_result_raises(self):
        import multiprocessing

        from repro.core.parallel import _collect_results
        from repro.errors import WorkerCrashedError

        out_queue = multiprocessing.get_context().Queue()
        with pytest.raises(WorkerCrashedError, match="exitcode -9"):
            _collect_results(out_queue, [_FakeDeadProc(exitcode=-9)])

    @pytest.mark.timeout(30)
    def test_posted_result_wins_over_dead_process(self):
        """A worker that posted and then exited is not a crash: the
        grace polls give its queue write time to surface."""
        import multiprocessing

        from repro.core.parallel import _collect_results

        out_queue = multiprocessing.get_context().Queue()
        out_queue.put((0, ("ok", {})))
        assert _collect_results(out_queue, [_FakeDeadProc(exitcode=0)]) == [
            (0, ("ok", {}))
        ]

    @pytest.mark.timeout(60)
    def test_end_to_end_clean_exit_worker_detected(
        self, small_er_graph, monkeypatch
    ):
        """A full count() whose worker exits cleanly without reporting
        must fail with WorkerCrashedError, not stall."""
        import multiprocessing

        from repro.core import parallel
        from repro.errors import WorkerCrashedError

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("monkeypatched worker body needs fork inheritance")

        def silent_worker(in_queue, out_queue, index, num, seed_seq, *rest):
            while in_queue.get() is not None:
                pass  # drain, then exit 0 without posting

        monkeypatch.setattr(parallel, "_worker_loop", silent_worker)
        edges, _ = small_er_graph
        # Queue transport: the stub worker bypasses TransportFeed and
        # would never release shm ring slots.
        counter = ParallelTriangleCounter(
            100, workers=2, seed=0, transport="queue"
        )
        with pytest.raises(WorkerCrashedError):
            counter.count(edges[:100], batch_size=64)


class TestMergedSeedDerivation:
    """Regression tests for the merged counter reusing the root seed."""

    def test_merged_rng_uses_dedicated_spawn_child(self, small_er_graph):
        edges, _ = small_er_graph
        counter = ParallelTriangleCounter(64, workers=2, seed=5)
        counter.count(edges, batch_size=512)
        children = np.random.SeedSequence(5).spawn(3)
        expected = np.random.default_rng(children[-1])
        assert (
            counter.merged._rng.bit_generator.state
            == expected.bit_generator.state
        )

    def test_merged_rng_not_root_and_not_a_worker_stream(self, small_er_graph):
        """The old code seeded the merged counter with the raw root
        seed: its future draws were the exact sequence the worker
        SeedSequences were spawned from."""
        edges, _ = small_er_graph
        counter = ParallelTriangleCounter(64, workers=2, seed=5)
        counter.count(edges, batch_size=512)
        merged_draws = counter.merged._rng.integers(0, 1 << 62, 8).tolist()
        root_draws = np.random.default_rng(5).integers(0, 1 << 62, 8).tolist()
        assert merged_draws != root_draws
        for child in np.random.SeedSequence(5).spawn(2):
            worker_draws = (
                np.random.default_rng(child).integers(0, 1 << 62, 8).tolist()
            )
            assert merged_draws != worker_draws

    def test_worker_seeds_unchanged_by_the_extra_child(self, small_er_graph):
        """spawn(workers + 1) extends spawn(workers): the first children
        are identical, so fixed-seed results are stable across the fix."""
        first_two = [
            s.generate_state(2).tolist() for s in np.random.SeedSequence(5).spawn(2)
        ]
        first_of_three = [
            s.generate_state(2).tolist() for s in np.random.SeedSequence(5).spawn(3)
        ][:2]
        assert first_two == first_of_three
