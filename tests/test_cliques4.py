"""Tests for the 4-clique samplers (Algorithm 4 / Section 5.1)."""

import pytest

from repro.core.cliques4 import (
    CliqueCounter4,
    FourCliqueSamplerTypeI,
    FourCliqueSamplerTypeII,
)
from repro.errors import InvalidParameterError
from repro.exact import count_four_cliques
from repro.generators import complete_graph, erdos_renyi, planted_clique
from tests.conftest import assert_mean_close


def run_type1(edges, seed):
    s = FourCliqueSamplerTypeI(seed=seed)
    for e in edges:
        s.update(e)
    return s


def run_type2(edges, seed):
    s = FourCliqueSamplerTypeII(seed=seed)
    for e in edges:
        s.update(e)
    return s


class TestTypeISampler:
    def test_no_clique_on_triangle_free_stream(self):
        edges = [(i, i + 1) for i in range(20)]
        for seed in range(20):
            assert run_type1(edges, seed).held_clique() is None
            assert run_type1(edges, seed).estimate() == 0.0

    def test_held_cliques_are_real(self):
        # K6 is dense enough that Type I successes are frequent
        # (per-clique probability ~1/(m c1 c2) ~ 1/1200, 15 cliques).
        edges = complete_graph(6)
        from repro.exact import list_cliques

        real = set(list_cliques(edges, 4))
        found = 0
        for seed in range(2500):
            clique = run_type1(edges, seed).held_clique()
            if clique is not None:
                assert clique in real
                found += 1
        assert found > 0

    def test_counters_track_levels(self):
        edges = complete_graph(5)
        s = run_type1(edges, 3)
        assert s.edges_seen == 10
        assert s.c1 >= 0 and s.c2 >= 0

    def test_k4_single_type1_order(self):
        """A K4 streamed so its first two edges share a vertex is Type I;
        the Type I estimator pool alone must be unbiased for it."""
        # Order: (0,1), (0,2) share vertex 0 -> Type I.
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        samples = [run_type1(edges, seed).estimate() for seed in range(8000)]
        assert_mean_close(samples, 1.0, z=6.0)
        # And Type II holds nothing on this order.
        assert all(run_type2(edges, s).estimate() == 0.0 for s in range(300))


class TestTypeIISampler:
    def test_k4_single_type2_order(self):
        """First two edges disjoint -> Type II; its pool is unbiased."""
        edges = [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)]
        samples = [run_type2(edges, seed).estimate() for seed in range(8000)]
        assert_mean_close(samples, 1.0, z=6.0)
        assert all(run_type1(edges, s).estimate() == 0.0 for s in range(300))

    def test_estimate_value_is_m_squared(self):
        edges = [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)]
        hits = [
            run_type2(edges, seed).estimate()
            for seed in range(3000)
            if run_type2(edges, seed).held_clique() is not None
        ]
        assert hits, "expected some Type II successes"
        assert all(v == float(len(edges)) ** 2 for v in hits if v > 0)

    def test_position_ordering_required(self):
        s = FourCliqueSamplerTypeII(seed=0)
        # Force both reservoirs manually into inverted positions.
        s.e1, s.pos1 = (2, 3), 5
        s.e2, s.pos2 = (0, 1), 2
        assert not s._active()


class TestCliqueCounter4:
    def test_requires_positive_pool(self):
        with pytest.raises(InvalidParameterError):
            CliqueCounter4(0)

    def test_unbiased_on_k5(self):
        """K5 has 5 4-cliques across mixed types under random orders."""
        from repro.graph import EdgeStream

        true = count_four_cliques(complete_graph(5))
        assert true == 5
        estimates = []
        for seed in range(120):
            stream = EdgeStream(complete_graph(5), validate=False).shuffled(seed)
            counter = CliqueCounter4(60, seed=seed)
            counter.update_batch(list(stream))
            estimates.append(counter.estimate())
        assert_mean_close(estimates, true, z=6.0)

    def test_unbiased_on_er_graph(self):
        edges = erdos_renyi(25, 120, seed=5)
        true = count_four_cliques(edges)
        assert true > 0
        estimates = []
        for seed in range(60):
            counter = CliqueCounter4(150, seed=seed)
            counter.update_batch(edges)
            estimates.append(counter.estimate())
        assert_mean_close(estimates, true, z=6.0)

    def test_zero_on_clique_free_graph(self):
        edges = [(i, i + 1) for i in range(30)]
        counter = CliqueCounter4(200, seed=6)
        counter.update_batch(edges)
        assert counter.estimate() == 0.0

    def test_held_cliques_are_valid(self):
        edges = planted_clique(18, 5, 20, seed=7)
        counter = CliqueCounter4(400, seed=8)
        counter.update_batch(edges)
        from repro.exact import list_cliques

        real = set(list_cliques(edges, 4))
        for clique in counter.held_cliques():
            assert clique in real
